#!/usr/bin/env python3
"""Drive a running daemon's sampling profiler over the wire.

Speaks the ``profile`` protocol op against a live Trusted Server:
start/stop a capture at a chosen sampling interval, poll its status,
and fetch the results as either the per-stage self-time table or
Brendan-Gregg collapsed stacks (pipe those straight into
``flamegraph.pl`` or paste into speedscope).

Usage::

    PYTHONPATH=src python tools/serve_daemon.py --port 7411 &
    PYTHONPATH=src python tools/profiler.py --port 7411 start
    PYTHONPATH=src python tools/loadgen.py --host 127.0.0.1 --port 7411
    PYTHONPATH=src python tools/profiler.py --port 7411 stages
    PYTHONPATH=src python tools/profiler.py --port 7411 collapsed \
        > profile.collapsed
    PYTHONPATH=src python tools/profiler.py --port 7411 stop

Exit status 1 on a profiler-state error (e.g. ``stop`` with nothing
running, telemetry disabled), 2 when the daemon cannot be reached.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.profile import (  # noqa: E402
    StageRow,
    render_stage_table,
    report_from_dict,
)
from repro.serve.client import ServeClient, ServeClientError  # noqa: E402


def parse_args(argv: "list[str] | None" = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Control a daemon's sampling profiler"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "action",
        choices=("start", "stop", "status", "stages", "collapsed"),
    )
    parser.add_argument(
        "--interval-ms",
        type=float,
        default=5.0,
        help="sampling interval for 'start' (default: 5 ms)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=200,
        help="max collapsed stacks / trace rows to fetch (default: 200)",
    )
    return parser.parse_args(argv)


async def run(args: argparse.Namespace) -> int:
    client = await ServeClient.connect(
        args.host, args.port, client="profiler"
    )
    try:
        reply = await client.profile(
            action=args.action,
            interval_ms=args.interval_ms,
            limit=args.limit,
        )
    finally:
        await client.close()
    if args.action == "collapsed":
        if reply.body:
            print(reply.body)
        return 0
    if args.action == "stages":
        payload = json.loads(reply.body) if reply.body else {}
        report = report_from_dict(payload)
        print(
            f"profiler {reply.state}: {reply.samples} samples over "
            f"{reply.duration_s:.2f}s "
            f"({report.request_samples} in-request)"
        )
        rows = payload.get("rows", [])
        if rows:
            for line in render_stage_table(
                StageRow(
                    stage=row["stage"],
                    samples=row["samples"],
                    wall_s=row["wall_s"],
                    cpu_s=row["cpu_s"],
                    share_pct=row["share_pct"],
                )
                for row in rows
            ):
                print(line)
        return 0
    print(
        f"profiler {reply.state}: {reply.samples} samples over "
        f"{reply.duration_s:.2f}s"
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = parse_args(argv)
    try:
        return asyncio.run(run(args))
    except ServeClientError as exc:
        print(f"profiler: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"profiler: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
