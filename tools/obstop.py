#!/usr/bin/env python3
"""Polling terminal dashboard for a running Trusted Server daemon.

``obstop`` speaks the same NDJSON protocol as every other client: one
connection, then a ``health`` + ``stats`` + ``metrics`` + ``traces``
round per refresh.  No curses, no third-party TUI — each refresh
prints a fixed-width block (request rate, queue depth, per-stage
p50/p99 recovered from the scraped Prometheus buckets, shed rate, SLO
status, and the slowest recent traces), so the output works equally
well in a pipe, a CI log, or a terminal watch loop.

Usage::

    PYTHONPATH=src python tools/serve_daemon.py --port 7411 &
    PYTHONPATH=src python tools/obstop.py --port 7411 --interval 2
    PYTHONPATH=src python tools/obstop.py --port 7411 --once
    PYTHONPATH=src python tools/obstop.py \
        --target 127.0.0.1:7411 --target 127.0.0.1:7412 --once

Repeatable ``--target host:port`` flags switch to fleet mode: every
round scrapes all workers concurrently and renders one merged view
(:mod:`repro.obs.aggregate` semantics — counters and histogram buckets
summed, gauges per-worker, traces grouped across workers by trace id).

``--once`` doubles as a CI/cron health probe: exit 0 when the server
(or every fleet worker) reports ``status=="ok"`` with SLOs green,
exit 1 otherwise, exit 2 when the target cannot be reached at all.

The per-stage percentiles come from
:func:`repro.obs.export.quantile_from_buckets` over the
``engine_stage_ms`` cumulative bucket series — the same numbers the
server itself would report, recovered purely from the exposition text.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Any, Mapping

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.aggregate import FleetView  # noqa: E402
from repro.obs.export import (  # noqa: E402
    parse_prometheus,
    quantile_from_buckets,
)
from repro.serve.client import ServeClient, ServeClientError  # noqa: E402
from repro.serve.fleet import collect_fleet  # noqa: E402
from repro.serve.http import HttpServeClient  # noqa: E402
from repro.serve.transports import client_ssl_context  # noqa: E402

#: Canonical engine stage order (the pipeline's six stages) — stages
#: appear in this order first, anything else alphabetically after.
STAGE_ORDER = (
    "quiet_gate",
    "monitor_match",
    "generalize",
    "unlink",
    "risk_policy",
    "audit",
)


async def collect(client: Any, trace_limit: int = 8) -> dict:
    """One polling round against a connected :class:`ServeClient`.

    Returns a plain dict (no frame objects), so renderers and tests
    never touch the wire types.  ``metrics`` failures (telemetry
    disabled on the server) degrade to an empty sample set.
    """
    health = await client.health()
    stats = await client.stats()
    try:
        samples = parse_prometheus((await client.metrics()).body)
    except ServeClientError:
        samples = {}
    try:
        traces = json.loads((await client.traces(trace_limit)).body)
    except ServeClientError:
        traces = []
    return {
        "t": time.monotonic(),
        "status": health.status,
        "uptime_s": health.uptime_s,
        "queue_depth": health.queue_depth,
        "sessions": health.sessions,
        "served": health.served,
        "shed": health.shed,
        "slo_ok": health.slo_ok,
        "breaches": health.breaches,
        "accepted": stats.accepted,
        "rejected": stats.rejected,
        "protocol_errors": stats.protocol_errors,
        "samples": samples,
        "traces": traces,
    }


def stage_latencies(
    samples: Mapping[tuple[str, tuple[tuple[str, str], ...]], float],
) -> list[tuple[str, float, float, int]]:
    """Recover ``(stage, p50_ms, p99_ms, count)`` rows from a scrape."""
    buckets: dict[str, dict[float, float]] = {}
    counts: dict[str, int] = {}
    for (name, labels), value in samples.items():
        stage = dict(labels).get("stage")
        if stage is None:
            continue
        if name == "engine_stage_ms_bucket":
            bound = dict(labels).get("le", "+Inf")
            buckets.setdefault(stage, {})[float(bound)] = value
        elif name == "engine_stage_ms_count":
            counts[stage] = int(value)
    known = [s for s in STAGE_ORDER if s in counts]
    extra = sorted(s for s in counts if s not in STAGE_ORDER)
    rows = []
    for stage in known + extra:
        count = counts[stage]
        series = buckets.get(stage, {})
        p50 = quantile_from_buckets(series, count, 0.5)
        p99 = quantile_from_buckets(series, count, 0.99)
        rows.append((stage, p50, p99, count))
    return rows


def _rate(now: dict, prev: dict | None) -> float:
    """Served requests per second since the previous poll."""
    if prev is None:
        uptime = now["uptime_s"]
        return now["served"] / uptime if uptime > 0 else 0.0
    dt = now["t"] - prev["t"]
    if dt <= 0:
        return 0.0
    return max(0.0, (now["served"] - prev["served"]) / dt)


def render_dashboard(
    now: dict, prev: dict | None = None, host: str = "?", port: int = 0
) -> list[str]:
    """Fixed-width text block for one polling round."""
    total = now["served"] + now["shed"]
    shed_pct = 100.0 * now["shed"] / total if total else 0.0
    slo = "ok" if now["slo_ok"] else "BREACH"
    lines = [
        (
            f"repro-ts obstop — {host}:{port}  "
            f"status {now['status']}  up {now['uptime_s']:.1f}s"
        ),
        (
            f"req/s {_rate(now, prev):8.1f}  queue {now['queue_depth']:4d}"
            f"  sessions {now['sessions']:3d}  served {now['served']}"
        ),
        (
            f"shed {now['shed']} ({shed_pct:.1f}%)  "
            f"rejected {now['rejected']}  "
            f"proto_errs {now['protocol_errors']}  "
            f"slo {slo}  breaches {now['breaches']}"
        ),
    ]
    rows = stage_latencies(now["samples"])
    if rows:
        lines.append("stage            p50 ms    p99 ms     count")
        for stage, p50, p99, count in rows:
            lines.append(
                f"  {stage:<14} {p50:8.3f}  {p99:8.3f}  {count:8d}"
            )
    traces = sorted(
        now["traces"],
        key=lambda t: t.get("total_ms") or 0.0,
        reverse=True,
    )[:5]
    if traces:
        lines.append("slowest recent traces:")
        lines.append(
            "  trace_id          op       decision    "
            "queue_ms  total_ms"
        )
        for entry in traces:
            decision = entry.get("decision") or (
                "shed" if entry.get("shed") else "-"
            )
            lines.append(
                f"  {entry.get('trace_id') or '-':<16}  "
                f"{entry.get('op') or '-':<7}  "
                f"{decision:<10}  "
                f"{entry.get('queue_ms') or 0.0:8.2f}  "
                f"{entry.get('total_ms') or 0.0:8.2f}"
            )
    return lines


def render_fleet(view: FleetView) -> list[str]:
    """Fixed-width text block for one fleet polling round."""
    served = sum(
        value
        for (name, _labels), value in view.samples.items()
        if name == "serve_served_total"
    )
    lines = [
        (
            f"repro-ts fleet — {len(view.workers)} workers  "
            f"healthy {view.healthy}  served {served:.0f}"
        )
    ]
    for worker in view.workers:
        health = view.scrapes[worker].health or {}
        slo = "ok" if health.get("slo_ok", True) else "BREACH"
        lines.append(
            f"  {worker:<20} status {health.get('status', '?'):<8} "
            f"queue {health.get('queue_depth', 0):4d}  "
            f"served {health.get('served', 0):6d}  "
            f"shed {health.get('shed', 0):4d}  slo {slo}"
        )
    for target, error in sorted(view.errors.items()):
        lines.append(f"  {target:<20} UNREACHABLE: {error}")
    if view.shards:
        served_by = view.shard_series("serve_served_total")
        shed_by = view.shard_series("serve_shed_total")
        lines.append("per shard        served      shed")
        for shard in view.shards:
            lines.append(
                f"  shard {shard:<8} "
                f"{served_by.get(shard, 0.0):8.0f}  "
                f"{shed_by.get(shard, 0.0):8.0f}"
            )
    rows = stage_latencies(view.samples)
    if rows:
        lines.append("fleet stage      p50 ms    p99 ms     count")
        for stage, p50, p99, count in rows:
            lines.append(
                f"  {stage:<14} {p50:8.3f}  {p99:8.3f}  {count:8d}"
            )
    slow = view.traces[:5]
    if slow:
        lines.append("slowest fleet traces:")
        for trace in slow:
            decision = trace.decision or (
                "shed" if trace.shed else "-"
            )
            lines.append(
                f"  {trace.trace_id:<16}  {trace.op or '-':<7}  "
                f"{decision:<10}  {trace.total_ms:8.2f}ms  "
                f"workers={','.join(trace.workers)}"
            )
    return lines


async def run_fleet(args: argparse.Namespace) -> int:
    """Fleet mode: merged view over every ``--target`` per round."""
    rounds = 1 if args.once else args.count
    i = 0
    healthy = True
    while rounds <= 0 or i < rounds:
        view = await collect_fleet(
            list(args.target),
            trace_limit=args.traces,
            transport=args.transport,
            tls_ca=args.tls_ca,
            token=args.token,
        )
        print("\n".join(render_fleet(view)), flush=True)
        healthy = view.healthy
        i += 1
        if not (rounds <= 0 or i < rounds):
            break
        await asyncio.sleep(args.interval)
        print(flush=True)
    if args.once:
        return 0 if healthy else 1
    return 0


async def run(args: argparse.Namespace) -> int:
    if args.target:
        return await run_fleet(args)
    ssl_context = (
        client_ssl_context(args.tls_ca)
        if args.tls_ca is not None
        else None
    )
    client: Any
    if args.transport == "http":
        client = await HttpServeClient.connect(
            args.host,
            args.port,
            client="obstop",
            ssl=ssl_context,
            token=args.token,
        )
    else:
        client = await ServeClient.connect(
            args.host,
            args.port,
            client="obstop",
            ssl=ssl_context,
            token=args.token,
        )
    healthy = True
    try:
        prev: dict | None = None
        rounds = 1 if args.once else args.count
        i = 0
        while rounds <= 0 or i < rounds:
            now = await collect(client, trace_limit=args.traces)
            block = render_dashboard(
                now, prev, host=args.host, port=args.port
            )
            print("\n".join(block), flush=True)
            healthy = now["status"] == "ok" and now["slo_ok"]
            prev = now
            i += 1
            if not (rounds <= 0 or i < rounds):
                break
            await asyncio.sleep(args.interval)
            print(flush=True)
    finally:
        await client.close()
    if args.once:
        return 0 if healthy else 1
    return 0


def parse_args(argv: "list[str] | None" = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Polling dashboard for the Trusted Server daemon"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument(
        "--target",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help=(
            "fleet mode: scrape this worker each round (repeatable); "
            "replaces --host/--port"
        ),
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default: 2)",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=0,
        help="refreshes before exiting (default: 0 = forever)",
    )
    parser.add_argument(
        "--once", action="store_true", help="one refresh, then exit"
    )
    parser.add_argument(
        "--traces",
        type=int,
        default=8,
        help="recent traces to fetch per refresh (default: 8)",
    )
    parser.add_argument(
        "--transport",
        choices=("tcp", "tls", "http"),
        default="tcp",
        help="how to dial the daemon(s) (default: tcp)",
    )
    parser.add_argument(
        "--tls-ca",
        default=None,
        metavar="PEM",
        help="pin this trust anchor when dialing (implies TLS)",
    )
    parser.add_argument(
        "--token",
        default=None,
        help="bearer token for gated daemons",
    )
    args = parser.parse_args(argv)
    if not args.target and args.port is None:
        parser.error("either --port or at least one --target is required")
    return args


def main(argv: "list[str] | None" = None) -> int:
    try:
        return asyncio.run(run(parse_args(argv)))
    except KeyboardInterrupt:
        return 0
    except (ServeClientError, ConnectionError, OSError) as exc:
        print(f"obstop: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
