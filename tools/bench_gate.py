#!/usr/bin/env python3
"""Gate benchmark runs against committed baseline artifacts.

Compares every ``BENCH_*.json`` in ``--run-dir`` (written by the
benchmark drivers via ``repro.obs.bench.export_bench``) against the
artifact of the same name in ``--baseline-dir``, metric by metric,
within ``--tolerance`` (relative).  Timing data in the artifacts'
``latency`` sections is never gated — only the seeded-deterministic
``metrics``.

Exit status 1 when any metric regressed (moved beyond tolerance) or
disappeared, unless ``--warn-only``.  Artifacts without a baseline, or
whose workload fingerprint / schema version doesn't match the
baseline's, produce warnings, never failures — committing the printed
artifact as the new baseline is the fix for the first, rerunning with
the baseline's workload mode for the second.

Usage (what CI runs)::

    REPRO_BENCH_SMOKE=1 REPRO_BENCH_DIR=benchmarks/artifacts \\
        python -m pytest benchmarks/ -q
    python tools/bench_gate.py \\
        --baseline-dir benchmarks/baselines/smoke \\
        --run-dir benchmarks/artifacts
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.bench import (  # noqa: E402
    DEFAULT_TOLERANCE,
    compare_artifacts,
    load_bench_artifact,
)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "baselines",
        help="directory of committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--run-dir",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "artifacts",
        help="directory of the current run's BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative tolerance per metric (default %(default)s)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0",
    )
    args = parser.parse_args(argv)

    current_paths = sorted(args.run_dir.glob("BENCH_*.json"))
    if not current_paths:
        print(f"bench_gate: no BENCH_*.json under {args.run_dir}")
        return 0 if args.warn_only else 1

    failures = 0
    warnings = 0
    for path in current_paths:
        current = load_bench_artifact(path)
        baseline_path = args.baseline_dir / path.name
        if not baseline_path.exists():
            warnings += 1
            print(
                f"WARN {current.experiment}: no baseline "
                f"({baseline_path} missing) — commit {path.name} to "
                f"start gating it"
            )
            continue
        baseline = load_bench_artifact(baseline_path)
        comparison = compare_artifacts(
            baseline, current, tolerance=args.tolerance
        )
        if comparison.skipped_reason is not None:
            warnings += 1
            print(
                f"WARN {current.experiment}: comparison skipped — "
                f"{comparison.skipped_reason}"
            )
            continue
        regressions = comparison.regressions
        added = [d for d in comparison.deltas if d.status == "added"]
        if regressions:
            failures += 1
            print(
                f"FAIL {current.experiment}: {len(regressions)} of "
                f"{len(comparison.deltas)} metrics regressed "
                f"(tolerance {args.tolerance:.1%})"
            )
            for delta in regressions:
                print(f"  {delta.describe()}")
        else:
            print(
                f"OK   {current.experiment}: "
                f"{len(comparison.deltas)} metrics within "
                f"{args.tolerance:.1%}"
            )
        for delta in added:
            print(f"  note: {delta.describe()}")

    stale = sorted(
        p.name
        for p in args.baseline_dir.glob("BENCH_*.json")
        if not (args.run_dir / p.name).exists()
    )
    for name in stale:
        warnings += 1
        print(f"WARN baseline {name} had no artifact in this run")

    print(
        f"bench_gate: {len(current_paths)} artifacts, "
        f"{failures} failing, {warnings} warnings"
    )
    if failures and not args.warn_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
