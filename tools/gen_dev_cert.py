"""Self-signed dev certificate generator for the TLS transport.

Produces a cert/key pair good enough for the CA-pinning trust model of
:func:`repro.serve.transports.client_ssl_context`: the server presents
the cert, clients pin the very same file as their only trust anchor.
Nothing here is meant for a public PKI — the cert is self-signed, valid
for ``127.0.0.1`` / ``localhost``, and uses an EC P-256 key so
generation is fast enough to run per-CI-job.

Two backends, picked automatically:

* the ``cryptography`` package when importable (the dev image has it);
* the ``openssl`` CLI otherwise (the CI image installs only the
  numeric stack, but ships openssl).

Usage::

    python tools/gen_dev_cert.py --out-dir certs/
    # -> certs/dev-cert.pem  certs/dev-key.pem

or from code: ``generate_dev_cert(out_dir)``.
"""

from __future__ import annotations

import argparse
import datetime
import os
import subprocess
import sys

CERT_NAME = "dev-cert.pem"
KEY_NAME = "dev-key.pem"
_SUBJECT = "repro-serve-dev"
_DAYS = 825


def _generate_with_cryptography(
    cert_path: str, key_path: str
) -> None:
    from cryptography import x509
    from cryptography.hazmat.primitives import hashes, serialization
    from cryptography.hazmat.primitives.asymmetric import ec
    from cryptography.x509.oid import NameOID
    import ipaddress

    key = ec.generate_private_key(ec.SECP256R1())
    name = x509.Name(
        [x509.NameAttribute(NameOID.COMMON_NAME, _SUBJECT)]
    )
    now = datetime.datetime.now(datetime.timezone.utc)
    cert = (
        x509.CertificateBuilder()
        .subject_name(name)
        .issuer_name(name)
        .public_key(key.public_key())
        .serial_number(x509.random_serial_number())
        .not_valid_before(now - datetime.timedelta(minutes=5))
        .not_valid_after(now + datetime.timedelta(days=_DAYS))
        .add_extension(
            x509.SubjectAlternativeName(
                [
                    x509.IPAddress(
                        ipaddress.IPv4Address("127.0.0.1")
                    ),
                    x509.DNSName("localhost"),
                ]
            ),
            critical=False,
        )
        .add_extension(
            x509.BasicConstraints(ca=True, path_length=None),
            critical=True,
        )
        .sign(key, hashes.SHA256())
    )
    with open(key_path, "wb") as handle:
        handle.write(
            key.private_bytes(
                serialization.Encoding.PEM,
                serialization.PrivateFormat.PKCS8,
                serialization.NoEncryption(),
            )
        )
    with open(cert_path, "wb") as handle:
        handle.write(cert.public_bytes(serialization.Encoding.PEM))


def _generate_with_openssl(cert_path: str, key_path: str) -> None:
    subprocess.run(
        [
            "openssl",
            "req",
            "-x509",
            "-newkey",
            "ec",
            "-pkeyopt",
            "ec_paramgen_curve:prime256v1",
            "-keyout",
            key_path,
            "-out",
            cert_path,
            "-days",
            str(_DAYS),
            "-nodes",
            "-subj",
            f"/CN={_SUBJECT}",
            "-addext",
            "subjectAltName=IP:127.0.0.1,DNS:localhost",
            "-addext",
            "basicConstraints=critical,CA:TRUE",
        ],
        check=True,
        capture_output=True,
    )


def generate_dev_cert(out_dir: str) -> tuple[str, str]:
    """Write ``dev-cert.pem`` / ``dev-key.pem``; returns their paths.

    The key file is chmod 0600 — ``ssl`` does not care, but leaving a
    private key world-readable is a habit not worth teaching.
    """
    os.makedirs(out_dir, exist_ok=True)
    cert_path = os.path.join(out_dir, CERT_NAME)
    key_path = os.path.join(out_dir, KEY_NAME)
    try:
        import cryptography  # noqa: F401

        _generate_with_cryptography(cert_path, key_path)
    except ImportError:
        _generate_with_openssl(cert_path, key_path)
    os.chmod(key_path, 0o600)
    return cert_path, key_path


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Generate a self-signed dev TLS cert/key pair."
    )
    parser.add_argument(
        "--out-dir",
        default="certs",
        help="directory for dev-cert.pem / dev-key.pem (default: certs)",
    )
    args = parser.parse_args(argv)
    cert_path, key_path = generate_dev_cert(args.out_dir)
    print(f"cert: {cert_path}")
    print(f"key:  {key_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
