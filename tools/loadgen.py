#!/usr/bin/env python3
"""Open-loop load generator for the Trusted Server serving frontend.

Self-hosts a :class:`repro.serve.server.TrustedServer` over real TCP
sockets (the default), partitions the seeded city workload across
``--clients`` pipelined connections, fires it at ``--rate`` operations
per second (open-loop: send times never wait for replies), then drains
the server and prints the latency/throughput/shed report.

Point it at an already-running daemon (``tools/serve_daemon.py``) with
``--host``/``--port``; the daemon must serve the same seeded workload
for ``--verify`` to be meaningful.

Exit status is non-zero when the run was not clean: any protocol or
internal error, an unclean shutdown, or (with ``--verify``) any
mismatch between the served decision stream and the offline
``Engine.process_batch`` replay.

Usage (what CI's serving-smoke step runs)::

    PYTHONPATH=src python tools/loadgen.py --requests 200 --clients 4
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.gate import GateConfig  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    LoadgenConfig,
    WorkloadConfig,
    run_loadgen,
)
from repro.serve.server import ServeConfig  # noqa: E402


def parse_args(argv: "list[str] | None" = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Open-loop load generator for the Trusted Server"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=200,
        help="service requests to issue (default: 200)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="concurrent client connections (default: 4)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=2000.0,
        help="offered arrival rate, operations/s (default: 2000)",
    )
    parser.add_argument(
        "--transport",
        choices=("tcp", "tls", "http", "loopback"),
        default="tcp",
        help=(
            "tcp (plaintext sockets, default), tls (NDJSON over TLS), "
            "http (POST /v1/frame bodies), or in-process loopback"
        ),
    )
    parser.add_argument(
        "--host",
        default=None,
        help="connect to an external daemon instead of self-hosting",
    )
    parser.add_argument(
        "--port", type=int, default=None, help="external daemon port"
    )
    parser.add_argument(
        "--token",
        default=None,
        help="bearer token sent in the hello (gated daemons)",
    )
    parser.add_argument(
        "--tls-cert",
        default=None,
        help="server certificate for self-hosted TLS runs",
    )
    parser.add_argument(
        "--tls-key",
        default=None,
        help="server private key for self-hosted TLS runs",
    )
    parser.add_argument(
        "--tls-ca",
        default=None,
        help=(
            "trust anchor to pin when dialing (defaults to --tls-cert "
            "for self-signed dev certs)"
        ),
    )
    parser.add_argument(
        "--reconnect",
        type=int,
        default=0,
        help="re-dial dropped sockets up to N times with backoff",
    )
    parser.add_argument(
        "--gate-rate",
        type=float,
        default=None,
        help=(
            "install a connection gate on the self-hosted server with "
            "this per-client ops/s budget (with --token: auth too)"
        ),
    )
    parser.add_argument(
        "--gate-burst",
        type=float,
        default=None,
        help="gate bucket burst capacity (default: one second of rate)",
    )
    parser.add_argument(
        "--gate-max-connections",
        type=int,
        default=None,
        help="gate concurrent-connection cap (self-hosted runs)",
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="workload seed (default: 11)"
    )
    parser.add_argument(
        "--requests-only",
        action="store_true",
        help="send only service requests, no location updates",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="compare served decisions against the offline batch replay",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry shed operations up to N times with backoff",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="negotiate trace propagation and mint client root spans",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the server's sampling profiler across the pass",
    )
    parser.add_argument(
        "--profile-interval-ms",
        type=float,
        default=5.0,
        help="profiler sampling interval in ms (default: 5)",
    )
    parser.add_argument(
        "--index-cell-size",
        type=float,
        default=None,
        help="spatial index cell size for the workload store (degrees)",
    )
    parser.add_argument(
        "--store-backend",
        choices=("python", "numpy"),
        default=None,
        help=(
            "trajectory-store backend (default: $REPRO_STORE_BACKEND "
            "or python); decisions are identical, latency is not"
        ),
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=1024,
        help="server dispatch-queue bound (self-hosted runs)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="per-session inflight cap (self-hosted runs)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the full report as JSON instead of the summary",
    )
    return parser.parse_args(argv)


def main(argv: "list[str] | None" = None) -> int:
    args = parse_args(argv)
    gate = None
    if args.host is None and (
        args.token is not None
        or args.gate_rate is not None
        or args.gate_max_connections is not None
    ):
        # Self-hosted runs exercise the gate they would face in
        # production: the offered token is also the accepted one.
        gate = GateConfig(
            tokens=(args.token,) if args.token is not None else None,
            rate_limit=args.gate_rate,
            burst=args.gate_burst,
            max_connections=args.gate_max_connections,
        )
    config = LoadgenConfig(
        workload=WorkloadConfig(
            seed=args.seed,
            index_cell_size=args.index_cell_size,
            backend=args.store_backend,
        ),
        serve=ServeConfig(
            max_queue_depth=args.max_queue_depth,
            max_inflight=args.max_inflight,
        ),
        requests=args.requests,
        clients=args.clients,
        rate=args.rate,
        transport=args.transport,
        host=args.host,
        port=args.port,
        token=args.token,
        tls_cert=args.tls_cert,
        tls_key=args.tls_key,
        tls_ca=args.tls_ca,
        gate=gate,
        reconnect=args.reconnect,
        include_updates=not args.requests_only,
        verify=args.verify,
        retries=args.retries,
        trace=args.trace,
        profile=args.profile,
        profile_interval_ms=args.profile_interval_ms,
    )
    report = asyncio.run(run_loadgen(config))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for line in report.summary_lines():
            print(line)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
