#!/usr/bin/env python3
"""Run the Trusted Server as a long-running TCP daemon.

Three deployment shapes, smallest first:

* **single** (default) — one :class:`TrustedServer` over one engine,
  exactly the seed behavior::

      PYTHONPATH=src python tools/serve_daemon.py --port 7411

* **sharded, one process** (``--shards M``) — a
  :class:`~repro.serve.shard.ShardRouter` over M shared-nothing shard
  engines in this process; add ``--data-dir`` for per-shard
  write-ahead logs::

      PYTHONPATH=src python tools/serve_daemon.py --shards 4 \
          --data-dir /var/lib/repro

* **multi-worker** (``--workers N --shards M --data-dir DIR``) — a
  :class:`~repro.serve.supervisor.WorkerSupervisor` parent that spawns
  N worker processes (each serving the shards ``i mod N == w`` with
  durable WALs) and respawns any that die, replaying their logs::

      PYTHONPATH=src python tools/serve_daemon.py \
          --workers 2 --shards 4 --data-dir /var/lib/repro

``--worker-index`` is the internal worker entry point the supervisor
uses; workers announce ``{"repro_worker": w, "port": p, "applied":
{shard: seq}}`` as one JSON line on stdout when ready.

Every shape serves the same NDJSON protocol and drains gracefully on
SIGINT/SIGTERM or a client ``drain`` op.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.config import TelemetryConfig  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    WorkloadConfig,
    build_engine,
    build_workload,
)
from repro.serve.server import ServeConfig, TrustedServer  # noqa: E402
from repro.serve.shard import ShardRouter  # noqa: E402
from repro.serve.supervisor import (  # noqa: E402
    WorkerSupervisor,
    announce,
    worker_shards,
)
from repro.serve.transports import TcpTransport  # noqa: E402
from repro.serve.wal import WalConfig  # noqa: E402


def parse_args(argv: "list[str] | None" = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Trusted Server NDJSON daemon"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default: 0 = ephemeral, printed on start)",
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="workload seed (default: 11)"
    )
    parser.add_argument("--max-queue-depth", type=int, default=1024)
    parser.add_argument("--max-inflight", type=int, default=64)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "spawn this many worker processes behind a supervising "
            "router (default: 0 = serve in-process)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "partition users over this many shard engines "
            "(default: 0 = single unsharded engine; with --workers, "
            "defaults to the worker count)"
        ),
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help=(
            "root of per-shard write-ahead logs (shard-<i>/wal.jsonl); "
            "required with --workers, optional with --shards"
        ),
    )
    parser.add_argument(
        "--wal-fsync",
        choices=("always", "batch", "never"),
        default="batch",
        help="WAL durability policy (default: batch)",
    )
    parser.add_argument(
        "--worker-index",
        type=int,
        default=None,
        help=argparse.SUPPRESS,  # internal: supervisor worker entry
    )
    parser.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="RULE",
        help="attach a privacy SLO rule (repeatable; unsharded only)",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=1.0,
        help="head-sampling probability for new traces (default: 1.0)",
    )
    parser.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="append span/event records to this JSONL sink",
    )
    parser.add_argument(
        "--worker",
        default=None,
        help="worker identity stamped onto every span record",
    )
    parser.add_argument(
        "--shard",
        default=None,
        help="shard identity stamped onto every span record",
    )
    parser.add_argument(
        "--index-cell-size",
        type=float,
        default=None,
        help="spatial index cell size for the workload store (degrees)",
    )
    parser.add_argument(
        "--store-backend",
        choices=("python", "numpy"),
        default=None,
        help=(
            "trajectory-store backend (default: $REPRO_STORE_BACKEND "
            "or python); decisions are identical, latency is not"
        ),
    )
    args = parser.parse_args(argv)
    if args.workers and not args.shards:
        args.shards = args.workers
    if args.workers and args.data_dir is None:
        parser.error("--workers requires --data-dir")
    if args.worker_index is not None and (
        not args.workers or not args.shards or args.data_dir is None
    ):
        parser.error(
            "--worker-index requires --workers, --shards and --data-dir"
        )
    return args


async def _wait_for_stop() -> None:
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    await stop.wait()


def _workload_config(args: argparse.Namespace) -> WorkloadConfig:
    return WorkloadConfig(
        seed=args.seed,
        index_cell_size=args.index_cell_size,
        backend=args.store_backend,
    )


def _serve_config(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        max_queue_depth=args.max_queue_depth,
        max_inflight=args.max_inflight,
    )


def _telemetry_config(
    args: argparse.Namespace, worker: "str | None" = None
) -> TelemetryConfig:
    return TelemetryConfig(
        enabled=True,
        jsonl_path=args.trace_jsonl,
        trace_sample_rate=args.trace_sample_rate,
        worker=worker if worker is not None else args.worker,
        shard=args.shard,
    )


async def serve_single(args: argparse.Namespace) -> int:
    """The seed shape: one engine, one sequencer."""
    workload_config = _workload_config(args)
    workload = build_workload(workload_config)
    engine = build_engine(
        workload, workload_config, _telemetry_config(args)
    )
    server = TrustedServer(
        engine, _serve_config(args), slo_rules=args.slo
    )
    transport = TcpTransport(server, args.host, args.port)
    host, port = await transport.start()
    print(f"repro-ts listening on {host}:{port}", flush=True)
    await _wait_for_stop()
    print("repro-ts draining", flush=True)
    reply = await server.drain()
    await transport.stop()
    await server.close()
    print(
        f"repro-ts drained: served={reply.served} shed={reply.shed} "
        f"rejected={reply.rejected}",
        flush=True,
    )
    return 0


async def serve_sharded(
    args: argparse.Namespace, worker_index: "int | None" = None
) -> int:
    """In-process sharded router; doubles as the worker entry point."""
    workload_config = _workload_config(args)
    workload = build_workload(workload_config)
    shard_ids = None
    worker_label = args.worker
    if worker_index is not None:
        shard_ids = worker_shards(
            worker_index, args.workers, args.shards
        )
        worker_label = str(worker_index)
    router = ShardRouter(
        workload,
        workload_config,
        n_shards=args.shards,
        config=_serve_config(args),
        telemetry=_telemetry_config(args, worker=worker_label),
        data_dir=args.data_dir,
        wal_config=WalConfig(fsync=args.wal_fsync),
        shard_ids=shard_ids,
    )
    await router.start()
    transport = TcpTransport(router, args.host, args.port)
    host, port = await transport.start()
    if worker_index is not None:
        print(
            announce(worker_index, port, router.applied_seqs()),
            flush=True,
        )
    else:
        print(f"repro-ts listening on {host}:{port}", flush=True)
    await _wait_for_stop()
    reply = await router.drain()
    await transport.stop()
    await router.close()
    if worker_index is None:
        print(
            f"repro-ts drained: served={reply.served} "
            f"shed={reply.shed} rejected={reply.rejected}",
            flush=True,
        )
    return 0


async def serve_supervised(args: argparse.Namespace) -> int:
    """The multi-worker shape: supervisor parent + N shard workers."""
    worker_args = ["--seed", str(args.seed), "--wal-fsync",
                   args.wal_fsync,
                   "--max-queue-depth", str(args.max_queue_depth),
                   "--max-inflight", str(args.max_inflight)]
    if args.index_cell_size is not None:
        worker_args += ["--index-cell-size", str(args.index_cell_size)]
    if args.store_backend is not None:
        worker_args += ["--store-backend", args.store_backend]
    if args.trace_jsonl is not None:
        worker_args += ["--trace-jsonl", args.trace_jsonl]
    supervisor = WorkerSupervisor(
        args.workers,
        args.shards,
        args.data_dir,
        config=_serve_config(args),
        telemetry=_telemetry_config(args),
        worker_args=worker_args,
        daemon_path=Path(__file__).resolve(),
    )
    await supervisor.start()
    transport = TcpTransport(supervisor, args.host, args.port)
    host, port = await transport.start()
    print(
        f"repro-ts supervisor listening on {host}:{port} "
        f"(workers={args.workers} shards={args.shards})",
        flush=True,
    )
    await _wait_for_stop()
    print("repro-ts draining", flush=True)
    await transport.stop()
    await supervisor.close()
    print("repro-ts drained", flush=True)
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = parse_args(argv)
    if args.worker_index is not None:
        return asyncio.run(serve_sharded(args, args.worker_index))
    if args.workers:
        return asyncio.run(serve_supervised(args))
    if args.shards:
        return asyncio.run(serve_sharded(args))
    return asyncio.run(serve_single(args))


if __name__ == "__main__":
    raise SystemExit(main())
