#!/usr/bin/env python3
"""Run the Trusted Server as a long-running TCP daemon.

Builds the seeded city workload engine (warm store, LBQIDs registered,
sessions pre-opened — the same construction the load generator and the
serving tests use), binds the NDJSON frontend, prints the bound
address, and serves until a client sends ``drain`` or the process gets
SIGINT/SIGTERM, whichever comes first.  Either path performs a graceful
drain: stop admitting, flush the dispatch queue, emit the final
``serve.drained`` audit event.

Usage::

    PYTHONPATH=src python tools/serve_daemon.py --port 7411
    PYTHONPATH=src python tools/loadgen.py --host 127.0.0.1 --port 7411
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.config import TelemetryConfig  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    WorkloadConfig,
    build_engine,
    build_workload,
)
from repro.serve.server import ServeConfig, TrustedServer  # noqa: E402
from repro.serve.transports import TcpTransport  # noqa: E402


def parse_args(argv: "list[str] | None" = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Trusted Server NDJSON daemon"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default: 0 = ephemeral, printed on start)",
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="workload seed (default: 11)"
    )
    parser.add_argument("--max-queue-depth", type=int, default=1024)
    parser.add_argument("--max-inflight", type=int, default=64)
    parser.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="RULE",
        help="attach a privacy SLO rule (repeatable)",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=1.0,
        help="head-sampling probability for new traces (default: 1.0)",
    )
    parser.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="append span/event records to this JSONL sink",
    )
    parser.add_argument(
        "--worker",
        default=None,
        help="worker identity stamped onto every span record",
    )
    parser.add_argument(
        "--shard",
        default=None,
        help="shard identity stamped onto every span record",
    )
    parser.add_argument(
        "--index-cell-size",
        type=float,
        default=None,
        help="spatial index cell size for the workload store (degrees)",
    )
    parser.add_argument(
        "--store-backend",
        choices=("python", "numpy"),
        default=None,
        help=(
            "trajectory-store backend (default: $REPRO_STORE_BACKEND "
            "or python); decisions are identical, latency is not"
        ),
    )
    return parser.parse_args(argv)


async def serve(args: argparse.Namespace) -> int:
    workload_config = WorkloadConfig(
        seed=args.seed,
        index_cell_size=args.index_cell_size,
        backend=args.store_backend,
    )
    workload = build_workload(workload_config)
    engine = build_engine(
        workload,
        workload_config,
        TelemetryConfig(
            enabled=True,
            jsonl_path=args.trace_jsonl,
            trace_sample_rate=args.trace_sample_rate,
            worker=args.worker,
            shard=args.shard,
        ),
    )
    server = TrustedServer(
        engine,
        ServeConfig(
            max_queue_depth=args.max_queue_depth,
            max_inflight=args.max_inflight,
        ),
        slo_rules=args.slo,
    )
    transport = TcpTransport(server, args.host, args.port)
    host, port = await transport.start()
    print(f"repro-ts listening on {host}:{port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    await stop.wait()
    print("repro-ts draining", flush=True)
    reply = await server.drain()
    await transport.stop()
    await server.close()
    print(
        f"repro-ts drained: served={reply.served} shed={reply.shed} "
        f"rejected={reply.rejected}",
        flush=True,
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    return asyncio.run(serve(parse_args(argv)))


if __name__ == "__main__":
    raise SystemExit(main())
