#!/usr/bin/env python3
"""Run the Trusted Server as a long-running TCP daemon.

Three deployment shapes, smallest first:

* **single** (default) — one :class:`TrustedServer` over one engine,
  exactly the seed behavior::

      PYTHONPATH=src python tools/serve_daemon.py --port 7411

* **sharded, one process** (``--shards M``) — a
  :class:`~repro.serve.shard.ShardRouter` over M shared-nothing shard
  engines in this process; add ``--data-dir`` for per-shard
  write-ahead logs::

      PYTHONPATH=src python tools/serve_daemon.py --shards 4 \
          --data-dir /var/lib/repro

* **multi-worker** (``--workers N --shards M --data-dir DIR``) — a
  :class:`~repro.serve.supervisor.WorkerSupervisor` parent that spawns
  N worker processes (each serving the shards ``i mod N == w`` with
  durable WALs) and respawns any that die, replaying their logs::

      PYTHONPATH=src python tools/serve_daemon.py \
          --workers 2 --shards 4 --data-dir /var/lib/repro

``--worker-index`` is the internal worker entry point the supervisor
uses; workers announce ``{"repro_worker": w, "port": p, "applied":
{shard: seq}}`` as one JSON line on stdout when ready.

Every shape serves the same NDJSON protocol and drains gracefully on
SIGINT/SIGTERM or a client ``drain`` op.

Hardening flags apply to every shape and compose freely:
``--tls-cert/--tls-key`` serve TLS (generate a dev pair with
``tools/gen_dev_cert.py``), ``--token``/``--token-file`` require a
bearer token in the hello, ``--gate-rate``/``--gate-burst``/
``--gate-max-connections`` rate-limit admitted clients, and
``--http-port`` adds an HTTP/1.1 frontend (``POST /v1/frame``) sharing
the same TLS context and gate.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.config import TelemetryConfig  # noqa: E402
from repro.serve.gate import (  # noqa: E402
    ConnectionGate,
    GateConfig,
    load_tokens,
)
from repro.serve.http import HttpTransport  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    WorkloadConfig,
    build_engine,
    build_workload,
)
from repro.serve.server import ServeConfig, TrustedServer  # noqa: E402
from repro.serve.shard import ShardRouter  # noqa: E402
from repro.serve.supervisor import (  # noqa: E402
    WorkerSupervisor,
    announce,
    worker_shards,
)
from repro.serve.transports import (  # noqa: E402
    TcpTransport,
    server_ssl_context,
)
from repro.serve.wal import WalConfig  # noqa: E402


def parse_args(argv: "list[str] | None" = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Trusted Server NDJSON daemon"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default: 0 = ephemeral, printed on start)",
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="workload seed (default: 11)"
    )
    parser.add_argument("--max-queue-depth", type=int, default=1024)
    parser.add_argument("--max-inflight", type=int, default=64)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "spawn this many worker processes behind a supervising "
            "router (default: 0 = serve in-process)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "partition users over this many shard engines "
            "(default: 0 = single unsharded engine; with --workers, "
            "defaults to the worker count)"
        ),
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help=(
            "root of per-shard write-ahead logs (shard-<i>/wal.jsonl); "
            "required with --workers, optional with --shards"
        ),
    )
    parser.add_argument(
        "--wal-fsync",
        choices=("always", "batch", "never"),
        default="batch",
        help="WAL durability policy (default: batch)",
    )
    parser.add_argument(
        "--worker-index",
        type=int,
        default=None,
        help=argparse.SUPPRESS,  # internal: supervisor worker entry
    )
    parser.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="RULE",
        help="attach a privacy SLO rule (repeatable; unsharded only)",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=1.0,
        help="head-sampling probability for new traces (default: 1.0)",
    )
    parser.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="append span/event records to this JSONL sink",
    )
    parser.add_argument(
        "--worker",
        default=None,
        help="worker identity stamped onto every span record",
    )
    parser.add_argument(
        "--shard",
        default=None,
        help="shard identity stamped onto every span record",
    )
    parser.add_argument(
        "--tls-cert",
        default=None,
        metavar="PEM",
        help="serve TLS with this certificate (requires --tls-key)",
    )
    parser.add_argument(
        "--tls-key",
        default=None,
        metavar="PEM",
        help="private key matching --tls-cert",
    )
    parser.add_argument(
        "--token",
        action="append",
        default=None,
        metavar="TOKEN",
        help=(
            "accept this bearer token (repeatable); with any --token/"
            "--token-file, unauthenticated hellos earn bad_token"
        ),
    )
    parser.add_argument(
        "--token-file",
        default=None,
        metavar="PATH",
        help="accept the tokens in this file (one per line, # comments)",
    )
    parser.add_argument(
        "--gate-rate",
        type=float,
        default=None,
        help="per-client token-bucket rate limit, ops/s",
    )
    parser.add_argument(
        "--gate-burst",
        type=float,
        default=None,
        help="gate bucket burst capacity (default: one second of rate)",
    )
    parser.add_argument(
        "--gate-max-connections",
        type=int,
        default=None,
        help="cap on concurrent gated connections",
    )
    parser.add_argument(
        "--http-port",
        type=int,
        default=None,
        help=(
            "also serve HTTP/1.1 (POST /v1/frame) on this port "
            "(0 = ephemeral); shares the TLS context and gate"
        ),
    )
    parser.add_argument(
        "--index-cell-size",
        type=float,
        default=None,
        help="spatial index cell size for the workload store (degrees)",
    )
    parser.add_argument(
        "--store-backend",
        choices=("python", "numpy"),
        default=None,
        help=(
            "trajectory-store backend (default: $REPRO_STORE_BACKEND "
            "or python); decisions are identical, latency is not"
        ),
    )
    args = parser.parse_args(argv)
    if args.workers and not args.shards:
        args.shards = args.workers
    if args.workers and args.data_dir is None:
        parser.error("--workers requires --data-dir")
    if (args.tls_cert is None) != (args.tls_key is None):
        parser.error("--tls-cert and --tls-key go together")
    if args.worker_index is not None and (
        not args.workers or not args.shards or args.data_dir is None
    ):
        parser.error(
            "--worker-index requires --workers, --shards and --data-dir"
        )
    return args


async def _wait_for_stop() -> None:
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    await stop.wait()


def _workload_config(args: argparse.Namespace) -> WorkloadConfig:
    return WorkloadConfig(
        seed=args.seed,
        index_cell_size=args.index_cell_size,
        backend=args.store_backend,
    )


def _serve_config(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        max_queue_depth=args.max_queue_depth,
        max_inflight=args.max_inflight,
    )


def _telemetry_config(
    args: argparse.Namespace, worker: "str | None" = None
) -> TelemetryConfig:
    return TelemetryConfig(
        enabled=True,
        jsonl_path=args.trace_jsonl,
        trace_sample_rate=args.trace_sample_rate,
        worker=worker if worker is not None else args.worker,
        shard=args.shard,
    )


def _build_gate(args: argparse.Namespace, telemetry) -> (
    "ConnectionGate | None"
):
    """The daemon's admission gate; None when every knob is off."""
    tokens = load_tokens(args.token, args.token_file)
    if (
        tokens is None
        and args.gate_rate is None
        and args.gate_max_connections is None
    ):
        return None
    return ConnectionGate(
        GateConfig(
            tokens=tokens,
            rate_limit=args.gate_rate,
            burst=args.gate_burst,
            max_connections=args.gate_max_connections,
        ),
        telemetry=telemetry,
    )


async def _start_frontends(args: argparse.Namespace, server) -> (
    "list[TcpTransport | HttpTransport]"
):
    """Start the public frontends of one backend (any daemon shape).

    Always the NDJSON TCP listener; an HTTP listener too when
    ``--http-port`` was given.  Both share one TLS context and one
    gate, so policy is identical no matter how a client dials in.
    """
    gate = _build_gate(args, server.telemetry)
    ssl_ctx = (
        server_ssl_context(args.tls_cert, args.tls_key)
        if args.tls_cert is not None
        else None
    )
    transports: "list[TcpTransport | HttpTransport]" = [
        TcpTransport(
            server, args.host, args.port, ssl_context=ssl_ctx, gate=gate
        )
    ]
    if args.http_port is not None:
        transports.append(
            HttpTransport(
                server,
                args.host,
                args.http_port,
                ssl_context=ssl_ctx,
                gate=gate,
            )
        )
    for transport in transports:
        await transport.start()
    return transports


def _frontend_banner(
    args: argparse.Namespace,
    transports: "list[TcpTransport | HttpTransport]",
    label: str = "",
) -> str:
    tcp = transports[0]
    scheme = "tls" if args.tls_cert is not None else "tcp"
    parts = [f"repro-ts{label} listening on {tcp.host}:{tcp.port}"]
    if scheme == "tls":
        parts.append("(tls)")
    if args.token or args.token_file:
        parts.append("(auth)")
    for extra in transports[1:]:
        parts.append(f"http on {extra.host}:{extra.port}")
    return " ".join(parts)


async def serve_single(args: argparse.Namespace) -> int:
    """The seed shape: one engine, one sequencer."""
    workload_config = _workload_config(args)
    workload = build_workload(workload_config)
    engine = build_engine(
        workload, workload_config, _telemetry_config(args)
    )
    server = TrustedServer(
        engine, _serve_config(args), slo_rules=args.slo
    )
    transports = await _start_frontends(args, server)
    print(_frontend_banner(args, transports), flush=True)
    await _wait_for_stop()
    print("repro-ts draining", flush=True)
    reply = await server.drain()
    for transport in transports:
        await transport.stop()
    await server.close()
    print(
        f"repro-ts drained: served={reply.served} shed={reply.shed} "
        f"rejected={reply.rejected}",
        flush=True,
    )
    return 0


async def serve_sharded(
    args: argparse.Namespace, worker_index: "int | None" = None
) -> int:
    """In-process sharded router; doubles as the worker entry point."""
    workload_config = _workload_config(args)
    workload = build_workload(workload_config)
    shard_ids = None
    worker_label = args.worker
    if worker_index is not None:
        shard_ids = worker_shards(
            worker_index, args.workers, args.shards
        )
        worker_label = str(worker_index)
    router = ShardRouter(
        workload,
        workload_config,
        n_shards=args.shards,
        config=_serve_config(args),
        telemetry=_telemetry_config(args, worker=worker_label),
        data_dir=args.data_dir,
        wal_config=WalConfig(fsync=args.wal_fsync),
        shard_ids=shard_ids,
    )
    await router.start()
    transports = await _start_frontends(args, router)
    if worker_index is not None:
        print(
            announce(
                worker_index,
                transports[0].port,
                router.applied_seqs(),
            ),
            flush=True,
        )
    else:
        print(_frontend_banner(args, transports), flush=True)
    await _wait_for_stop()
    reply = await router.drain()
    for transport in transports:
        await transport.stop()
    await router.close()
    if worker_index is None:
        print(
            f"repro-ts drained: served={reply.served} "
            f"shed={reply.shed} rejected={reply.rejected}",
            flush=True,
        )
    return 0


async def serve_supervised(args: argparse.Namespace) -> int:
    """The multi-worker shape: supervisor parent + N shard workers."""
    worker_args = ["--seed", str(args.seed), "--wal-fsync",
                   args.wal_fsync,
                   "--max-queue-depth", str(args.max_queue_depth),
                   "--max-inflight", str(args.max_inflight)]
    if args.index_cell_size is not None:
        worker_args += ["--index-cell-size", str(args.index_cell_size)]
    if args.store_backend is not None:
        worker_args += ["--store-backend", args.store_backend]
    if args.trace_jsonl is not None:
        worker_args += ["--trace-jsonl", args.trace_jsonl]
    supervisor = WorkerSupervisor(
        args.workers,
        args.shards,
        args.data_dir,
        config=_serve_config(args),
        telemetry=_telemetry_config(args),
        worker_args=worker_args,
        daemon_path=Path(__file__).resolve(),
    )
    await supervisor.start()
    transports = await _start_frontends(args, supervisor)
    print(
        _frontend_banner(args, transports, label=" supervisor")
        + f" (workers={args.workers} shards={args.shards})",
        flush=True,
    )
    await _wait_for_stop()
    print("repro-ts draining", flush=True)
    for transport in transports:
        await transport.stop()
    await supervisor.close()
    print("repro-ts drained", flush=True)
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = parse_args(argv)
    if args.worker_index is not None:
        return asyncio.run(serve_sharded(args, args.worker_index))
    if args.workers:
        return asyncio.run(serve_supervised(args))
    if args.shards:
        return asyncio.run(serve_sharded(args))
    return asyncio.run(serve_single(args))


if __name__ == "__main__":
    raise SystemExit(main())
