"""Setuptools shim.

The offline environment ships a setuptools too old for PEP 660 editable
installs (no ``wheel`` module); with this file present, ``pip install -e .``
falls back to the legacy ``setup.py develop`` path, which works offline.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
