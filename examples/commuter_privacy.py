#!/usr/bin/env python
"""A city-scale run of the anonymous LBS service model (Figure 1).

Generates a synthetic city (commuters on a street grid plus background
wanderers), replays two weeks of location updates and service requests
through the Trusted Server, and reports:

* the decision mix (plain forwards / generalizations / unlinkings /
  suppressions);
* quality of service (context sizes, disruption);
* achieved anonymity — both per request and the paper's per-trace
  Historical k-anonymity — against the ground-truth PHL store;
* the Theorem 1 check over the whole audit trail;
* the pipeline telemetry (obs layer) recorded during the run.

Run:  python examples/commuter_privacy.py
"""

import statistics

from repro.experiments.harness import telemetry_tables
from repro.experiments.workloads import run_protected, small_city
from repro.obs import TelemetryConfig
from repro.metrics.anonymity import (
    anonymity_summary,
    historical_k_per_user,
)
from repro.metrics.qos import qos_summary
from repro.metrics.theorem import verify_theorem1

K = 5


def main() -> None:
    city = small_city(seed=11)
    config = city.config
    print(
        f"city: {config.n_commuters} commuters + "
        f"{config.n_wanderers} wanderers on a "
        f"{config.nx_blocks}x{config.ny_blocks} grid, "
        f"{config.days} days, {city.store.total_points} location samples"
    )

    report = run_protected(
        city, k=K, telemetry=TelemetryConfig(enabled=True)
    )
    print(
        f"\nsimulated {report.requests_issued} requests and "
        f"{report.location_updates} bare location updates"
    )
    counts = {d.value: c for d, c in report.decision_counts().items() if c}
    print(f"decisions: {counts}")

    qos = qos_summary(report.events)
    print(
        f"\nquality of service over generalized requests:\n"
        f"  mean context: {qos.mean_width_m:.0f} m wide, "
        f"{qos.mean_duration_s:.0f} s long "
        f"(p95 width {qos.p95_width_m:.0f} m)\n"
        f"  suppression rate: {qos.suppression_rate:.1%}, "
        f"unlink rate: {qos.unlink_rate:.1%}"
    )

    histories = report.store.histories
    anonymity = anonymity_summary(report.events, histories, k=K)
    print(
        f"\nper-request anonymity sets (potential senders):\n"
        f"  mean {anonymity.mean_set_size:.1f} users, "
        f"min {anonymity.min_set_size}, "
        f"{anonymity.entropy_bits:.2f} bits, "
        f"{anonymity.fraction_below_k:.1%} below k"
    )

    achieved = historical_k_per_user(histories=histories,
                                     events=report.events, hk_only=True)
    if achieved:
        print(
            f"\nhistorical anonymity of certified traces: "
            f"min {min(achieved.values())}, "
            f"median {statistics.median(achieved.values()):.0f} "
            f"(required k = {K})"
        )

    lbqids = {c.user_id: [c.lbqid()] for c in city.commuters}
    theorem = verify_theorem1(report.events, histories, lbqids, k=K)
    print(
        f"\nTheorem 1 check: {theorem.groups_checked} (user, pseudonym, "
        f"LBQID) groups, {theorem.groups_matching_lbqid} fully matched, "
        f"{len(theorem.violations)} violations -> "
        f"{'HOLDS' if theorem.holds else 'VIOLATED'}"
    )

    for table in telemetry_tables(report.metrics_snapshot(), title="obs"):
        table.print()


if __name__ == "__main__":
    main()
