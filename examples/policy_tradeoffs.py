#!/usr/bin/env python
"""The Section 6.2 trade-off triangle, swept over user policies.

"The trade-off between quality of service (how strict tolerance
constraints should be), degree of anonymity (choice of k), and frequency
of unlinking (number of possible interruptions of the service)."

Sweeps the three qualitative privacy levels of Section 3 (low / medium /
high) and, separately, a range of service tolerance constraints, printing
the resulting service quality and protection numbers.

Run:  python examples/policy_tradeoffs.py
"""

from repro.core.generalization import ToleranceConstraint
from repro.core.policy import PolicyTable, PrivacyLevel, PrivacyProfile
from repro.core.unlinking import AlwaysUnlink
from repro.experiments.harness import Table
from repro.experiments.workloads import small_city
from repro.granularity.timeline import MINUTE
from repro.metrics.anonymity import historical_k_per_user
from repro.metrics.qos import qos_summary
from repro.ts.simulation import LBSSimulation


def run_with(policy, city):
    simulation = LBSSimulation(
        city, policy=policy, unlinker=AlwaysUnlink(), seed=23
    )
    return simulation.run()


def main() -> None:
    city = small_city(seed=11)

    # --- sweep 1: the qualitative privacy levels -----------------------
    table = Table(
        "privacy level sweep (tolerance fixed at 1.5 km / 30 min)",
        ["level", "k", "mean width m", "unlink rate", "suppressed",
         "median achieved k"],
    )
    tolerance = ToleranceConstraint.square(1500.0, 30 * MINUTE)
    for level in PrivacyLevel:
        profile = PrivacyProfile.from_level(level)
        policy = PolicyTable(
            default_profile=profile, default_tolerance=tolerance
        )
        report = run_with(policy, city)
        qos = qos_summary(report.events)
        achieved = historical_k_per_user(
            report.events, report.store.histories, hk_only=True
        )
        med = (
            sorted(achieved.values())[len(achieved) // 2]
            if achieved
            else 0
        )
        table.add_row(
            [
                level.value,
                profile.k,
                qos.mean_width_m,
                qos.unlink_rate,
                qos.suppression_rate,
                med,
            ]
        )
    table.print()

    # --- sweep 2: service tolerance constraints ------------------------
    table = Table(
        "tolerance sweep (k fixed at 5)",
        ["max width m", "max minutes", "mean width m", "unlink rate",
         "generalized ok"],
    )
    for side, minutes in (
        (500.0, 10),
        (1000.0, 20),
        (1500.0, 30),
        (3000.0, 60),
    ):
        tolerance = ToleranceConstraint.square(side, minutes * MINUTE)
        policy = PolicyTable(
            default_profile=PrivacyProfile(k=5),
            default_tolerance=tolerance,
        )
        report = run_with(policy, city)
        qos = qos_summary(report.events)
        generalized = sum(
            1 for e in report.events if e.hk_anonymity
        )
        attempted = sum(
            1 for e in report.events if e.lbqid_name is not None
        )
        table.add_row(
            [
                side,
                minutes,
                qos.mean_width_m,
                qos.unlink_rate,
                f"{generalized}/{attempted}",
            ]
        )
    table.print()

    print(
        "reading: stricter privacy (higher k) and tighter tolerances both "
        "push the strategy toward unlinking — the service-interruption "
        "cost the paper warns about."
    )


if __name__ == "__main__":
    main()
