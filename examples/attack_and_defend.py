#!/usr/bin/env python
"""The paper's motivating attack, and what each defense does to it.

Three service configurations face the same adversary — the phone-book
home-identification attack of Section 1 (group requests by pseudonym,
anchor each group at a dwelling, look the address up):

1. **no protection** — exact coordinates, stable pseudonym;
2. **interval cloaking [11]** — per-request k-anonymous boxes, stable
   pseudonym (the baseline the paper argues is insufficient);
3. **this paper** — LBQID monitoring (commute + declared home area),
   Algorithm 1 generalization, and mix-zone unlinking.

Reported per configuration: how many users the attacker names at least
once (rate) and how often its claims are right (precision).  k-anonymity
predicts precision ~ 1/k for the full framework.

Run:  python examples/attack_and_defend.py
"""

import statistics

from repro.attack.reidentification import HomeIdentificationAttack
from repro.baselines.interval_cloak import IntervalCloak
from repro.core.historical_k import historical_anonymity_set
from repro.core.requests import Request
from repro.metrics.anonymity import historical_k_per_user
from repro.core.unlinking import AlwaysUnlink
from repro.experiments.workloads import make_policy, small_city
from repro.ts.simulation import LBSSimulation

K = 4


def attack(log, true_owner, homes, population):
    attacker = HomeIdentificationAttack(
        homes, anchor_grid=200.0, claim_radius=300.0
    )
    result = attacker.run(log, true_owner=true_owner)
    return result.rate(population), result.precision


def median_trace_k(ts_requests, histories):
    """Definition 8 over each user's whole request trace: 1 + how many
    *other* users stay LT-consistent with every context — the paper's
    measure of what a trace reveals, independent of any one attack."""
    by_user = {}
    for request in ts_requests:
        by_user.setdefault(request.user_id, []).append(request.context)
    values = [
        1 + len(historical_anonymity_set(contexts, histories,
                                         exclude_user=user_id))
        for user_id, contexts in by_user.items()
    ]
    return statistics.median(values) if values else 0


def raw_request_log(city, cloaker=None):
    """Requests at every LBQID-element-matching sample, optionally
    cloaked per-request, under stable per-user pseudonyms.

    Returns TS-side requests; callers project to SP views for attacks.
    """
    requests = []
    msgid = 0
    for commuter in city.commuters:
        lbqid = commuter.lbqid()
        for point in city.store.history(commuter.user_id):
            if lbqid.element_matching(point) is None:
                continue
            box = None
            if cloaker is not None:
                box = cloaker.cloak(commuter.user_id, point)
                if box is None:
                    continue
            msgid += 1
            request = Request.issue(
                msgid, commuter.user_id, f"u{commuter.user_id}", point
            )
            if box is not None:
                request = request.with_context(box)
            requests.append(request)
    return requests


def main() -> None:
    city = small_city(seed=11)
    homes = city.home_locations()
    histories = city.store.histories
    population = len(city.commuters)
    stable_owner = {f"u{c.user_id}": c.user_id for c in city.commuters}

    print(f"{population} commuters; attacker = phone-book home lookup\n")
    print(
        f"{'configuration':<28} {'identified':>10} {'precision':>10} "
        f"{'trace k':>8}"
    )
    print("-" * 60)

    raw = raw_request_log(city)
    rate, precision = attack(
        [r.sp_view() for r in raw], stable_owner, homes, population
    )
    print(
        f"{'no protection':<28} {rate:>10.1%} {precision:>10.1%} "
        f"{median_trace_k(raw, histories):>8.0f}"
    )

    cloaker = IntervalCloak(city.store, city.bounds, k=K, window=1800.0)
    cloaked = raw_request_log(city, cloaker)
    rate, precision = attack(
        [r.sp_view() for r in cloaked], stable_owner, homes, population
    )
    print(
        f"{'interval cloaking [11], k=4':<28} {rate:>10.1%} "
        f"{precision:>10.1%} "
        f"{median_trace_k(cloaked, histories):>8.0f}"
    )

    simulation = LBSSimulation(
        city,
        policy=make_policy(k=K),
        unlinker=AlwaysUnlink(),
        register_home_lbqids=True,
        seed=23,
    )
    report = simulation.run()
    owner = {
        e.request.pseudonym: e.request.user_id for e in report.events
    }
    forwarded = [e.request for e in report.events if e.forwarded]
    rate, precision = attack(
        [r.sp_view() for r in forwarded], owner, homes, population
    )
    achieved = historical_k_per_user(
        report.events, report.store.histories, hk_only=True
    )
    paper_trace_k = (
        statistics.median(achieved.values()) if achieved else 0
    )
    print(
        f"{'this paper, k=4':<28} {rate:>10.1%} {precision:>10.1%} "
        f"{paper_trace_k:>8.0f}"
    )

    print(
        "\nreading: the 'trace k' column is Definition 8 over each "
        "user's whole request trace — per-request cloaking leaves it at "
        "1 (each box holds k users, but only one user fits them ALL), "
        "while the paper's strategy keeps the same k-1 companions "
        f"across the trace; attacker precision is bounded near "
        f"1/k = {1 / K:.0%}."
    )


if __name__ == "__main__":
    main()
