#!/usr/bin/env python
"""Deriving LBQIDs from movement history (Section 4's open problem).

The paper requires LBQIDs as *input* but notes that deriving them "will
have to be based on statistical analysis of the data about users
movement history", that common patterns are useless as identifiers, and
that the Trusted Server "is probably a good candidate to offer tools for
LBQID definition".  This example is that tool in action:

1. mine each commuter's anchor places (home/work) and assemble the
   candidate commute pattern with windows and recurrence fitted to the
   observed behaviour;
2. validate each candidate against its owner's own history;
3. score distinctiveness against the whole city — patterns matched by
   many users are discarded;
4. hand the surviving quasi-identifiers straight to the anonymizer.

Run:  python examples/lbqid_mining.py
"""

import statistics

from repro.core.matching import request_set_matches
from repro.experiments.harness import Table
from repro.experiments.workloads import small_city
from repro.mining import mine_commute_lbqid, score_candidates


def main() -> None:
    city = small_city(seed=11)
    store = city.store
    population = len(store)

    candidates = []
    self_matching = 0
    for commuter in city.commuters:
        history = store.history(commuter.user_id)
        mined = mine_commute_lbqid(history)
        if mined is None:
            continue
        candidates.append(mined)
        if request_set_matches(mined.lbqid, history.points):
            self_matching += 1

    print(
        f"mined {len(candidates)} candidate commute patterns from "
        f"{len(city.commuters)} commuters "
        f"({self_matching} match their owner's own history)"
    )

    kept = score_candidates(candidates, store)
    matches = [score.matching_users for _c, score in kept]
    print(
        f"distinctiveness filter kept {len(kept)} / {len(candidates)} "
        f"candidates (median {statistics.median(matches):.0f} matching "
        f"user(s) out of {population})"
    )

    table = Table(
        "sample of mined quasi-identifiers",
        ["owner", "recurrence", "round trips seen", "users matching"],
    )
    for mined, score in kept[:8]:
        table.add_row(
            [
                mined.lbqid.name,
                str(mined.lbqid.recurrence),
                mined.observations,
                score.matching_users,
            ]
        )
    table.print()

    ground_truth_hit = 0
    for mined, _score in kept:
        owner = int(mined.lbqid.name.rsplit("u", 1)[1])
        commuter = city.commuters[owner]
        if mined.home.area.expanded(100).contains(commuter.home_point):
            ground_truth_hit += 1
    print(
        f"{ground_truth_hit}/{len(kept)} mined home anchors agree with "
        "the generator's ground truth — the TS can propose these "
        "LBQIDs to users (or an adversary could mine them from a leak, "
        "which is exactly why they must be protected)."
    )


if __name__ == "__main__":
    main()
