#!/usr/bin/env python
"""Mix-zones as the Unlinking primitive (Section 6.3).

Two studies on the same synthetic city:

1. **Static zone, adversarial game** — users cross a downtown mix-zone;
   the attacker optimally re-associates exit events with entry events by
   travel-time plausibility.  The attacker's accuracy is the achieved
   linkability Θ̂: it collapses only when several users cross *together*.
2. **On-demand zones** — the paper's proposal: at a request point, look
   for k nearby users with diverging headings.  We measure how often the
   TS can actually form one across the day, which is exactly the
   "unlinking availability" knob that decides between a pseudonym change
   and a suppressed request in the main strategy.

Run:  python examples/mixzone_study.py
"""

from repro.experiments.harness import Table
from repro.experiments.workloads import small_city
from repro.geometry.region import Rect
from repro.granularity.timeline import HOUR
from repro.mixzone.on_demand import OnDemandMixZone
from repro.mixzone.zones import MixZone, zone_attack_accuracy


def main() -> None:
    city = small_city(seed=11)
    histories = [
        city.store.history(user_id) for user_id in city.all_user_ids
    ]

    # --- study 1: a static downtown mix-zone ---------------------------
    center = city.bounds.center
    table = Table(
        "static mix-zone: attacker re-association vs zone size",
        ["zone side m", "crossings", "attacker accuracy",
         "effective anonymity"],
    )
    for side in (200.0, 400.0, 800.0):
        zone = MixZone(
            Rect.from_center(center, side, side)
        )
        result = zone_attack_accuracy(
            zone, histories, batch_window=HOUR / 4
        )
        table.add_row(
            [side, result.crossings, result.accuracy,
             result.effective_anonymity]
        )
    table.print()

    # --- study 2: on-demand formation ----------------------------------
    table = Table(
        "on-demand mix-zones: formation success at commute anchors",
        ["k", "radius m", "attempts", "formed", "mean theta"],
    )
    anchor_points = [
        point
        for commuter in city.commuters[:10]
        for point in list(city.store.history(commuter.user_id))[::29]
    ]
    for k in (2, 3, 5):
        for radius in (200.0, 400.0):
            zone = OnDemandMixZone(
                city.store, k=k, radius=radius, staleness=1200.0
            )
            outcomes = [
                zone.attempt_unlink(99_999, point)
                for point in anchor_points
            ]
            formed = [o for o in outcomes if o.success]
            mean_theta = (
                sum(o.theta for o in formed) / len(formed)
                if formed
                else float("nan")
            )
            table.add_row(
                [k, radius, len(outcomes), len(formed), mean_theta]
            )
    table.print()

    print(
        "reading: a zone only mixes when crossings coincide in time; "
        "on-demand formation succeeds where people actually cluster — "
        "the availability that bounds how often the TS can rotate "
        "pseudonyms instead of suppressing service."
    )


if __name__ == "__main__":
    main()
