#!/usr/bin/env python
"""Quickstart: the paper's framework on a hand-built scenario.

Walks through the whole vocabulary in ~80 lines:

1. define the Example 2 LBQID (home -> office -> office -> home,
   recurring 3 weekdays x 2 weeks);
2. feed the Trusted Server other users' location updates (their PHLs);
3. issue commute requests for two weeks and watch the TS generalize the
   ones that advance the quasi-identifier;
4. check Historical k-anonymity of what the service provider saw;
5. print the telemetry the instrumented pipeline recorded (decision
   counters, anonymity-set and latency histograms).

Telemetry is off by default (`TelemetryConfig(enabled=False)` costs one
branch per event); this example turns it on.  To also export every span
and the final metrics snapshot as JSONL, pass a path:
``TelemetryConfig(enabled=True, jsonl_path="quickstart-telemetry.jsonl")``.

Run:  python examples/quickstart.py
"""

from repro import (
    AlwaysUnlink,
    PolicyTable,
    PrivacyProfile,
    Rect,
    STPoint,
    TelemetryConfig,
    ToleranceConstraint,
    TrajectoryStore,
    TrustedAnonymizer,
    commute_lbqid,
    satisfies_historical_k,
    time_at,
)

HOME = Rect(0, 0, 100, 100)
OFFICE = Rect(900, 900, 1000, 1000)
ALICE = 1
NEIGHBOURS = (2, 3, 4, 5)

K = 3  # Alice wants to hide among at least 3 people


def main() -> None:
    # The TS: a trajectory store, a policy (k=3, boxes of at most
    # 5 km / 2 h), and an unlinking provider for when generalization
    # fails (here: Theorem 1's always-succeeding one).
    policy = PolicyTable(
        default_profile=PrivacyProfile(k=K),
        default_tolerance=ToleranceConstraint.square(5_000.0, 7_200.0),
    )
    telemetry = TelemetryConfig(enabled=True).build()
    ts = TrustedAnonymizer(
        TrajectoryStore(telemetry=telemetry),
        policy=policy,
        unlinker=AlwaysUnlink(),
        telemetry=telemetry,
    )

    # Alice's quasi-identifier: the paper's Example 2 commute pattern.
    lbqid = commute_lbqid(HOME, OFFICE, name="alice-commute")
    ts.register_lbqid(ALICE, lbqid)
    print(lbqid)

    # Two weeks of life.  Alice's neighbours commute on a similar
    # schedule; their location updates populate the PHLs that form
    # Alice's anonymity set.
    for week in range(2):
        for day in range(3):  # Mon-Wed
            for offset, user in enumerate(NEIGHBOURS):
                j = 3.0 * offset
                ts.report_location(
                    user, STPoint(40 + j, 40, time_at(week=week, day=day,
                                                      hour=7.4))
                )
                ts.report_location(
                    user, STPoint(950 + j, 950, time_at(week=week, day=day,
                                                        hour=8.4))
                )
                ts.report_location(
                    user, STPoint(950 + j, 950, time_at(week=week, day=day,
                                                        hour=17.1))
                )
                ts.report_location(
                    user, STPoint(40 + j, 40, time_at(week=week, day=day,
                                                      hour=18.1))
                )
            # Alice's four service requests of the day hit the four
            # LBQID elements in order.
            for hour, (x, y) in (
                (7.5, (50, 50)),
                (8.5, (950, 950)),
                (17.2, (950, 950)),
                (18.2, (50, 50)),
            ):
                event = ts.request(
                    ALICE,
                    STPoint(x, y, time_at(week=week, day=day, hour=hour)),
                    service="navigation",
                )
                context = event.request.context
                print(
                    f"week {week} day {day} {hour:5.1f}h  "
                    f"{event.decision.value:12s}  area "
                    f"{context.rect.width:6.1f} x "
                    f"{context.rect.height:6.1f} m, "
                    f"interval {context.interval.duration:7.1f} s"
                    + ("  << pattern complete" if event.lbqid_matched
                       else "")
                )

    # What did the SP learn?  Group Alice's forwarded requests and check
    # Definition 8 against the ground-truth store.
    forwarded = [
        e.request for e in ts.events
        if e.forwarded and e.request.user_id == ALICE
        and e.lbqid_name is not None
    ]
    ok = satisfies_historical_k(forwarded, ts.store.histories, k=K)
    print(f"\n{len(forwarded)} generalized requests forwarded to the SP")
    print(f"historical {K}-anonymity of Alice's trace: {ok}")
    counts = {d.value: c for d, c in ts.decision_counts().items() if c}
    print(f"decisions: {counts}")

    # The same tallies — plus set-size, box-geometry, and latency
    # histograms — as recorded live by the instrumentation layer.
    print()
    print(telemetry.summary())


if __name__ == "__main__":
    main()
