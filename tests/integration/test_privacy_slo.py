"""End-to-end: the streaming PrivacyMonitor agrees with post-hoc audits.

The monitor sees only the anonymizer's ``ts.decision`` event stream; the
post-hoc metrics in :mod:`repro.metrics` read the full audit trail and
the TS store.  Run both over one simulation and they must tell the same
story — with the audit window opened wider than the simulated fortnight
so the "window" estimates cover the entire run.
"""

import pytest

from repro.core.anonymizer import Decision
from repro.core.unlinking import AlwaysUnlink
from repro.experiments.workloads import make_policy, small_city
from repro.metrics.anonymity import anonymity_summary, historical_k_per_user
from repro.metrics.qos import qos_summary
from repro.obs.config import TelemetryConfig
from repro.ts.simulation import LBSSimulation

K = 4
#: Wider than the simulated period, so windowed estimates span the run.
FULL_RUN = 1e9


@pytest.fixture(scope="module")
def city():
    return small_city(seed=11)


@pytest.fixture(scope="module")
def report(city):
    simulation = LBSSimulation(
        city,
        policy=make_policy(k=K),
        unlinker=AlwaysUnlink(),
        telemetry=TelemetryConfig(enabled=True, ring_buffer=256),
        slo_rules=[
            "k_attainment >= 0.95 over 2h",
            "unlink_rate <= 0.5/min over 1h",
        ],
        slo_window_s=FULL_RUN,
        seed=23,
    )
    return simulation.run()


@pytest.fixture(scope="module")
def monitor(report):
    assert report.privacy_monitor is not None
    return report.privacy_monitor


class TestMonitorMatchesPostHocAudit:
    def test_historical_k_identical_to_post_hoc(self, report, monitor):
        """The headline property: the online candidate-filtering
        estimate equals Definition 8 evaluated on the full store."""
        post_hoc = historical_k_per_user(
            report.events, report.store.histories
        )
        assert post_hoc
        assert monitor.historical_k_per_user() == post_hoc

    def test_k_attainment_consistent_with_post_hoc_minimum(
        self, report, monitor
    ):
        post_hoc = historical_k_per_user(
            report.events, report.store.histories
        )
        if min(post_hoc.values()) >= K:
            assert monitor.k_attainment() == 1.0
        else:
            assert monitor.k_attainment() < 1.0

    def test_decision_tallies_match_audit_trail(self, report, monitor):
        counts = report.decision_counts()
        for decision in Decision:
            assert (
                monitor.decision_totals[decision.value]
                == counts[decision]
            )
        assert monitor.events_seen == len(report.events)
        assert monitor.unlink_total == sum(
            1 for e in report.events if e.pseudonym_rotated
        )

    def test_qos_means_match_qos_summary(self, report, monitor):
        qos = qos_summary(report.events)
        assert monitor.mean_area_m2() == pytest.approx(
            qos.mean_area_m2, rel=1e-9
        )
        assert monitor.mean_duration_s() == pytest.approx(
            qos.mean_duration_s, rel=1e-9
        )

    def test_decision_rates_match_qos_summary(self, report, monitor):
        qos = qos_summary(report.events)
        assert monitor.suppression_rate() == pytest.approx(
            qos.suppression_rate, rel=1e-9
        )
        assert monitor.at_risk_rate() == pytest.approx(
            qos.at_risk_rate, rel=1e-9
        )

    def test_monitor_saw_every_generalized_request(self, report, monitor):
        summary = anonymity_summary(
            report.events, report.store.histories, k=K
        )
        # Groups tracked online cover exactly the population the
        # post-hoc anonymity audit reads from the trail.
        assert summary.requests == sum(
            len(g.contexts) for g in monitor._groups.values()
        )


class TestSloSurfacing:
    def test_report_summary_includes_slo_block(self, report):
        text = report.summary()
        assert "privacy SLOs" in text
        assert "k_attainment" in text

    def test_final_gauges_reflect_end_of_run_state(self, report, monitor):
        snapshot = report.metrics_snapshot()
        assert snapshot.gauge_value(
            "slo.k_attainment"
        ) == pytest.approx(monitor.k_attainment())
        assert snapshot.gauge_value(
            "slo.unlink_rate"
        ) == pytest.approx(monitor.unlink_rate())

    def test_statuses_cover_every_rule(self, monitor):
        statuses = monitor.evaluate()
        by_rule = {s.rule.metric for s in monitor.status.values()}
        assert by_rule == {"k_attainment", "unlink_rate"}
        assert statuses == []  # no state changes on a repeat evaluate


class TestTelemetryGating:
    def test_slo_rules_require_enabled_telemetry(self, city):
        with pytest.raises(ValueError, match="telemetry"):
            LBSSimulation(
                city,
                policy=make_policy(k=K),
                slo_rules=["k_attainment >= 0.95"],
            )

    def test_disabled_telemetry_runs_without_monitor(self, city):
        report = LBSSimulation(
            city,
            policy=make_policy(k=K),
            unlinker=AlwaysUnlink(),
            seed=23,
        ).run()
        assert report.privacy_monitor is None
        assert "privacy SLOs" not in report.summary()
