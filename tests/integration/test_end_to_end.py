"""End-to-end integration tests over the full pipeline.

These are the executable forms of the paper's headline claims, run on
the shared test city:

* Theorem 1 holds under the strategy with AlwaysUnlink;
* certified traces achieve the configured k against ground truth;
* the paper's defense blunts the re-identification attack that succeeds
  against no-protection and per-request cloaking.
"""

import pytest

from repro.attack.reidentification import HomeIdentificationAttack
from repro.baselines.interval_cloak import IntervalCloak
from repro.core.anonymizer import Decision
from repro.core.requests import Request
from repro.core.unlinking import AlwaysUnlink, NeverUnlink
from repro.experiments.workloads import (
    DEFAULT_TOLERANCE,
    make_policy,
    small_city,
)
from repro.metrics.anonymity import historical_k_per_user
from repro.metrics.theorem import verify_theorem1
from repro.ts.simulation import LBSSimulation

K = 4


@pytest.fixture(scope="module")
def city():
    return small_city(seed=11)


@pytest.fixture(scope="module")
def protected_report(city):
    simulation = LBSSimulation(
        city,
        policy=make_policy(k=K),
        unlinker=AlwaysUnlink(),
        seed=23,
    )
    return simulation.run()


@pytest.fixture(scope="module")
def lbqids(city):
    return {c.user_id: [c.lbqid()] for c in city.commuters}


class TestTheorem1EndToEnd:
    def test_holds_with_always_unlink(self, protected_report, lbqids):
        report = verify_theorem1(
            protected_report.events,
            protected_report.store.histories,
            lbqids,
            k=K,
        )
        assert report.groups_checked > 0
        assert report.holds

    def test_holds_even_without_unlinking(self, city, lbqids):
        """With suppression instead of unlinking, unsafe requests never
        reach the SP, so the theorem's conclusion still holds."""
        simulation = LBSSimulation(
            city,
            policy=make_policy(k=K),
            unlinker=NeverUnlink(),
            seed=23,
        )
        report = simulation.run()
        theorem = verify_theorem1(
            report.events, report.store.histories, lbqids, k=K
        )
        assert theorem.holds

    def test_checker_detects_violations_when_protection_is_bypassed(
        self, city, lbqids
    ):
        """Negative control: the Theorem 1 verifier is not vacuous.

        Forwarding at-risk requests (the user overriding the notification,
        RiskAction.FORWARD) with no unlinking sends under-generalized
        contexts to the SP under stable pseudonyms; the matched groups
        must then fail Definition 8 and the checker must say so."""
        from repro.core.generalization import ToleranceConstraint
        from repro.core.policy import (
            PolicyTable,
            PrivacyProfile,
            RiskAction,
        )

        policy = PolicyTable(
            default_profile=PrivacyProfile(
                k=K, on_risk=RiskAction.FORWARD
            ),
            default_tolerance=ToleranceConstraint.square(800.0, 1200.0),
        )
        report = LBSSimulation(
            city, policy=policy, unlinker=NeverUnlink(), seed=23
        ).run()
        theorem = verify_theorem1(
            report.events, report.store.histories, lbqids, k=K
        )
        assert theorem.groups_matching_lbqid > 0
        assert not theorem.holds

    def test_certified_traces_reach_k(self, protected_report):
        achieved = historical_k_per_user(
            protected_report.events,
            protected_report.store.histories,
            hk_only=True,
        )
        assert achieved
        assert min(achieved.values()) >= K


class TestServiceDelivery:
    def test_provider_reachable_end_to_end(self, protected_report):
        provider = protected_report.providers["poi"]
        assert provider.request_count > 0
        forwarded = [e for e in protected_report.events if e.forwarded]
        assert provider.request_count == len(forwarded)

    def test_forwarded_contexts_respect_tolerance(self, protected_report):
        for event in protected_report.events:
            if event.forwarded and event.lbqid_name is not None:
                assert DEFAULT_TOLERANCE.satisfied_by(
                    event.request.context
                )

    def test_mixture_of_decisions(self, protected_report):
        counts = protected_report.decision_counts()
        assert counts[Decision.FORWARDED] > 0
        assert counts[Decision.GENERALIZED] > 0


class TestAttackDefenseContrast:
    """The Section 1 attack works on raw streams, not on protected ones."""

    def make_unprotected_log(self, city):
        """Exact-location requests at the paper's strategy's positions."""
        requests = []
        msgid = 0
        for commuter in city.commuters:
            lbqid = commuter.lbqid()
            pseudonym = f"u{commuter.user_id}"
            for point in city.store.history(commuter.user_id):
                if lbqid.element_matching(point) is None:
                    continue
                msgid += 1
                requests.append(
                    Request.issue(
                        msgid, commuter.user_id, pseudonym, point
                    )
                )
        return requests

    def test_attack_succeeds_without_protection(self, city):
        requests = self.make_unprotected_log(city)
        attack = HomeIdentificationAttack(city.home_locations())
        result = attack.run(
            [r.sp_view() for r in requests],
            true_owner={
                f"u{c.user_id}": c.user_id for c in city.commuters
            },
        )
        assert result.rate(len(city.commuters)) > 0.8

    def test_protected_stream_bounds_attacker_confidence(self, city):
        """With home areas declared as LBQIDs, the attacker's per-claim
        precision collapses toward the 1/k anonymity bound."""
        simulation = LBSSimulation(
            city,
            policy=make_policy(k=K),
            unlinker=AlwaysUnlink(),
            register_home_lbqids=True,
            seed=23,
        )
        report = simulation.run()
        owner = {
            e.request.pseudonym: e.request.user_id for e in report.events
        }
        log = [
            e.request.sp_view() for e in report.events if e.forwarded
        ]
        attack = HomeIdentificationAttack(
            city.home_locations(), anchor_grid=200.0, claim_radius=300.0
        )
        result = attack.run(log, true_owner=owner)
        assert result.claims  # the attacker still tries...
        assert result.precision < 0.5  # ...but cannot be confident

    def test_interval_cloak_still_linkable(self, city):
        """Per-request cloaking [11] hides single positions but the
        stable pseudonym keeps the trace attackable — the paper's core
        argument for Historical k-anonymity."""
        cloak = IntervalCloak(
            city.store, city.bounds, k=K, window=1800.0
        )
        requests = []
        msgid = 0
        for commuter in city.commuters[:10]:
            lbqid = commuter.lbqid()
            pseudonym = f"u{commuter.user_id}"
            for point in city.store.history(commuter.user_id):
                if lbqid.element_matching(point) is None:
                    continue
                box = cloak.cloak(commuter.user_id, point)
                if box is None:
                    continue
                msgid += 1
                requests.append(
                    Request.issue(
                        msgid, commuter.user_id, pseudonym, point
                    ).with_context(box)
                )
        attack = HomeIdentificationAttack(
            city.home_locations(), claim_radius=400.0, anchor_grid=200.0
        )
        result = attack.run(
            [r.sp_view() for r in requests],
            true_owner={
                f"u{c.user_id}": c.user_id for c in city.commuters
            },
        )
        assert result.rate(10) > 0.2
