"""Rule parsing, window estimates, and alerting of the SLO monitor."""

import math

import pytest

from repro.obs.config import TelemetryConfig
from repro.obs.sinks import RingBufferSink
from repro.obs.slo import (
    HOME_HOURS,
    PrivacyMonitor,
    SloRule,
    _in_home_hours,
    parse_slo,
)

HOUR = 3600.0


def decision_event(
    t,
    user_id=1,
    pseudonym="p1",
    decision="forwarded",
    forwarded=True,
    lbqid=None,
    rotated=False,
    required_k=2,
    context=None,
):
    return {
        "type": "ts.decision",
        "t": t,
        "user_id": user_id,
        "pseudonym": pseudonym,
        "service": "poi",
        "decision": decision,
        "forwarded": forwarded,
        "lbqid": lbqid,
        "hk": None,
        "step": None,
        "required_k": required_k,
        "rotated": rotated,
        "context": context,
    }


def box(x=0.0, y=0.0, side=100.0, t=0.0, dt=60.0):
    return (x, y, x + side, y + side, t, t + dt)


class TestParseSlo:
    def test_basic_rule(self):
        rule = parse_slo("k_attainment >= 0.95 over 2h")
        assert rule == SloRule("k_attainment", ">=", 0.95, 2 * HOUR)
        assert rule.name == "k_attainment >= 0.95 over 7200s"

    def test_rate_units_normalize_to_per_minute(self):
        per_min = parse_slo("unlink_rate <= 0.2/min")
        per_hour = parse_slo("unlink_rate <= 12/h")
        per_sec = parse_slo("unlink_rate <= 0.0033333333333333335/s")
        assert per_min.threshold == pytest.approx(0.2)
        assert per_hour.threshold == pytest.approx(0.2)
        assert per_sec.threshold == pytest.approx(0.2)

    @pytest.mark.parametrize(
        "text,window_s",
        [
            ("suppression_rate < 0.1 over 90s", 90.0),
            ("suppression_rate < 0.1 over 5min", 300.0),
            ("suppression_rate < 0.1 over 1d", 86400.0),
            ("suppression_rate < 0.1", None),
        ],
    )
    def test_window_units(self, text, window_s):
        assert parse_slo(text).window_s == window_s

    @pytest.mark.parametrize(
        "bad",
        ["", "k_attainment", ">= 0.95", "k ~= 1", "k >= 1 over -2h",
         "k >= 1 over"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)

    def test_nan_never_satisfies(self):
        rule = parse_slo("mean_area_m2 <= 1e9")
        assert not rule.check(float("nan"))
        assert rule.check(1e6)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            SloRule("k_attainment", "!=", 1.0)


class TestWindowEstimates:
    def test_unlink_rate_is_per_minute_and_windowed(self):
        monitor = PrivacyMonitor(window_s=600.0)
        for i in range(10):
            monitor.emit(decision_event(t=60.0 * i, rotated=True))
        # 10 rotations in a 600 s window = 1/minute.
        assert monitor.unlink_rate() == pytest.approx(1.0)
        # A much later quiet event slides the old rotations out.
        monitor.emit(decision_event(t=10_000.0))
        assert monitor.unlink_rate() == 0.0
        assert monitor.unlink_total == 10

    def test_qos_means_track_forwarded_lbqid_contexts(self):
        monitor = PrivacyMonitor(window_s=HOUR)
        monitor.emit(
            decision_event(t=0.0, lbqid="c", context=box(side=100.0))
        )
        monitor.emit(
            decision_event(t=10.0, lbqid="c", context=box(side=300.0))
        )
        # Non-LBQID forwards don't count toward generalization QoS.
        monitor.emit(decision_event(t=20.0, context=box(side=900.0)))
        assert monitor.mean_area_m2() == pytest.approx(
            (100.0**2 + 300.0**2) / 2
        )
        assert monitor.mean_duration_s() == pytest.approx(60.0)

    def test_qos_empty_window_is_nan(self):
        monitor = PrivacyMonitor()
        assert math.isnan(monitor.mean_area_m2())
        assert math.isnan(monitor.mean_duration_s())

    def test_suppression_and_at_risk_rates(self):
        monitor = PrivacyMonitor(window_s=HOUR)
        monitor.emit(decision_event(t=0.0))
        monitor.emit(
            decision_event(t=1.0, decision="suppressed", forwarded=False)
        )
        monitor.emit(
            decision_event(t=2.0, decision="at_risk_forwarded")
        )
        monitor.emit(decision_event(t=3.0))
        assert monitor.suppression_rate() == pytest.approx(0.25)
        assert monitor.at_risk_rate() == pytest.approx(0.5)

    def test_k_attainment_vacuous_without_groups(self):
        monitor = PrivacyMonitor(store=object.__new__(object))
        assert monitor.k_attainment() == 1.0

    def test_estimates_without_store_reports_nan_attainment(self):
        monitor = PrivacyMonitor()
        monitor.emit(decision_event(t=0.0))
        assert math.isnan(monitor.estimates()["k_attainment"])


class _FakeHistory:
    """Duck-typed PHL: consistency decided by a fixed answer set."""

    def __init__(self, consistent):
        self.consistent = consistent

    def lt_consistent_with(self, contexts):
        return self.consistent


class _FakeStore:
    def __init__(self, answers):
        self.histories = {
            uid: _FakeHistory(ok) for uid, ok in answers.items()
        }
        self.version = 0


class TestHistoricalK:
    def test_achieved_k_counts_consistent_others(self):
        store = _FakeStore({1: True, 2: True, 3: False, 4: True})
        monitor = PrivacyMonitor(store=store, window_s=HOUR)
        monitor.emit(
            decision_event(
                t=0.0, user_id=1, lbqid="c", required_k=3,
                context=box(),
            )
        )
        # User 1 itself plus users 2 and 4 (3 is inconsistent).
        assert monitor.historical_k_per_user() == {1: 3}
        assert monitor.k_attainment() == 1.0

    def test_incremental_filter_matches_full_recompute(self):
        store = _FakeStore({1: True, 2: True, 3: True})
        monitor = PrivacyMonitor(store=store, window_s=HOUR)
        key = (1, "p1", "c")
        monitor.emit(
            decision_event(t=0.0, user_id=1, lbqid="c", context=box())
        )
        assert monitor.achieved_k(key) == 3
        # Store unchanged: the next context filters the cached
        # candidates instead of rescanning; user 3 now fails.
        store.histories[3].consistent = False
        monitor.emit(
            decision_event(t=1.0, user_id=1, lbqid="c", context=box())
        )
        assert monitor.achieved_k(key) == 2

    def test_store_growth_forces_recompute(self):
        store = _FakeStore({1: True, 2: False})
        monitor = PrivacyMonitor(store=store, window_s=HOUR)
        key = (1, "p1", "c")
        monitor.emit(
            decision_event(t=0.0, user_id=1, lbqid="c", context=box())
        )
        assert monitor.achieved_k(key) == 1
        # User 2's PHL grows and becomes consistent; the version bump
        # must invalidate the cached (empty) candidate set.
        store.histories[2].consistent = True
        store.version += 1
        assert monitor.achieved_k(key) == 2

    def test_attainment_against_required_k(self):
        store = _FakeStore({1: True, 2: True, 3: False})
        monitor = PrivacyMonitor(store=store, window_s=HOUR)
        monitor.emit(
            decision_event(
                t=0.0, user_id=1, pseudonym="a", lbqid="c",
                required_k=2, context=box(),
            )
        )
        monitor.emit(
            decision_event(
                t=1.0, user_id=2, pseudonym="b", lbqid="c",
                required_k=5, context=box(),
            )
        )
        # Group a achieves 2 (meets 2); group b achieves 2 (missing 5).
        assert monitor.k_attainment() == pytest.approx(0.5)


class TestRiskProxy:
    def test_home_hours_windows(self):
        for lo, hi in HOME_HOURS:
            assert _in_home_hours(lo * HOUR)
            assert _in_home_hours(hi * HOUR - 1.0)
        assert not _in_home_hours(12 * HOUR)
        # Wraps across days.
        assert _in_home_hours(24 * HOUR + 6 * HOUR)

    def test_repeat_home_anchor_is_claimable(self):
        monitor = PrivacyMonitor(min_home_requests=2)
        home_t = 6 * HOUR  # inside (5.0, 8.5)
        monitor.emit(
            decision_event(t=home_t, pseudonym="px", context=box(t=home_t))
        )
        assert monitor.risk_claim_rate() == 0.0
        monitor.emit(
            decision_event(
                t=home_t + 60, pseudonym="px", context=box(t=home_t + 60)
            )
        )
        assert monitor.claimable_pseudonyms() == {"px"}
        assert monitor.risk_claim_rate() == 1.0

    def test_noon_requests_never_claim(self):
        monitor = PrivacyMonitor(min_home_requests=1)
        noon = 12 * HOUR
        monitor.emit(
            decision_event(t=noon, pseudonym="px", context=box(t=noon))
        )
        assert monitor.risk_claim_rate() == 0.0

    def test_homes_oracle_filters_claims(self):
        class Home:
            def __init__(self, x, y):
                self.x, self.y = x, y

        monitor = PrivacyMonitor(
            homes={1: Home(5000.0, 5000.0)},
            min_home_requests=1,
            claim_radius=150.0,
        )
        home_t = 6 * HOUR
        # Anchor cell centroid at (50, 50) — 7 km from the only home.
        monitor.emit(
            decision_event(t=home_t, pseudonym="px", context=box(t=home_t))
        )
        assert monitor.claimable_pseudonyms() == set()
        # A pseudonym anchored at the home is claimable.
        monitor.emit(
            decision_event(
                t=home_t + 60,
                pseudonym="py",
                context=box(x=4950.0, y=4950.0, t=home_t + 60),
            )
        )
        assert monitor.claimable_pseudonyms() == {"py"}


class TestEvaluationAndAlerts:
    def _monitor_with_telemetry(self, rules, **kwargs):
        telemetry = TelemetryConfig(enabled=True, ring_buffer=256).build()
        monitor = PrivacyMonitor(rules=rules, **kwargs).attach(telemetry)
        return monitor, telemetry

    def test_rollover_evaluates_and_alerts_through_fanout(self):
        monitor, telemetry = self._monitor_with_telemetry(
            ["unlink_rate <= 0.5/min"], window_s=600.0
        )
        ring = telemetry.sinks[0]
        assert isinstance(ring, RingBufferSink)
        # First window: heavy churn -> breach on roll-over.
        for i in range(10):
            monitor.emit(decision_event(t=60.0 * i, rotated=True))
        monitor.emit(decision_event(t=601.0))
        breaches = [
            e for e in ring.events if e.get("type") == "slo_alert"
        ]
        assert [a["state"] for a in breaches] == ["breach"]
        assert breaches[0]["rule"] == "unlink_rate <= 0.5"
        # Quiet second window: recovery alert.
        monitor.emit(decision_event(t=1300.0))
        states = [
            e["state"]
            for e in ring.events
            if e.get("type") == "slo_alert"
        ]
        assert states == ["breach", "recovered"]
        # The monitor never feeds alerts back into itself.
        assert monitor.events_seen == 12

    def test_evaluation_publishes_gauges_and_counters(self):
        monitor, telemetry = self._monitor_with_telemetry(
            ["unlink_rate <= 0.5/min"], window_s=600.0
        )
        for i in range(10):
            monitor.emit(decision_event(t=60.0 * i, rotated=True))
        monitor.evaluate()
        snapshot = telemetry.snapshot()
        assert snapshot.gauge_value("slo.unlink_rate") == pytest.approx(
            1.0
        )
        assert snapshot.counter_value("slo.alerts", state="breach") == 1

    def test_status_tracks_breach_counts(self):
        monitor = PrivacyMonitor(
            rules=["suppression_rate <= 0.1"], window_s=600.0
        )
        monitor.emit(
            decision_event(t=0.0, decision="suppressed", forwarded=False)
        )
        monitor.evaluate(now=0.0)
        monitor.evaluate(now=1.0)
        status = monitor.status["suppression_rate <= 0.1"]
        assert status.evaluations == 2
        assert status.breaches == 2
        assert not status.ok
        # Only the transition raised an alert.
        assert len(monitor.alerts) == 1

    def test_unknown_metric_raises_at_evaluation(self):
        monitor = PrivacyMonitor(rules=["no_such_metric >= 1"])
        with pytest.raises(ValueError, match="unknown SLO metric"):
            monitor.evaluate(now=0.0)

    def test_summary_lines_render_status(self):
        monitor = PrivacyMonitor(
            rules=["suppression_rate <= 0.1"], window_s=600.0
        )
        monitor.emit(
            decision_event(t=0.0, decision="suppressed", forwarded=False)
        )
        monitor.evaluate(now=0.0)
        text = "\n".join(monitor.summary_lines())
        assert "== privacy SLOs ==" in text
        assert "BREACH" in text
        assert "alerts: 1" in text

    def test_rule_window_overrides_default(self):
        monitor = PrivacyMonitor(
            rules=[SloRule("unlink_rate", "<=", 0.5, window_s=7200.0)],
            window_s=600.0,
        )
        assert monitor._max_window == 7200.0

    def test_rejects_nonpositive_windows(self):
        with pytest.raises(ValueError):
            PrivacyMonitor(window_s=0.0)
        with pytest.raises(ValueError):
            PrivacyMonitor(eval_every_s=-1.0)


class TestBreachExemplars:
    def test_breach_alert_carries_recent_trace_ids(self):
        monitor = PrivacyMonitor(
            rules=["suppression_rate <= 0.1"], window_s=600.0
        )
        for i in range(7):
            event = decision_event(
                t=float(i), decision="suppressed", forwarded=False
            )
            event["trace_id"] = f"{i:016x}"
            monitor.emit(event)
        alerts = monitor.evaluate(now=7.0)
        (alert,) = alerts
        assert alert.state == "breach"
        # Most recent first, distinct, capped at 5.
        assert alert.exemplar_trace_ids == tuple(
            f"{i:016x}" for i in range(6, 1, -1)
        )
        assert "exemplar_trace_ids" in alert.to_event()
        assert alert.to_event()["exemplar_trace_ids"] == list(
            alert.exemplar_trace_ids
        )

    def test_recovery_alert_has_no_exemplars(self):
        monitor = PrivacyMonitor(
            rules=["unlink_rate <= 0.5/min"], window_s=600.0
        )
        for i in range(10):
            event = decision_event(t=60.0 * i, rotated=True)
            event["trace_id"] = f"{i:016x}"
            monitor.emit(event)
        (breach,) = monitor.evaluate(now=600.0)
        assert breach.state == "breach"
        assert breach.exemplar_trace_ids
        (recovery,) = monitor.evaluate(now=2600.0)
        assert recovery.state == "recovered"
        assert recovery.exemplar_trace_ids == ()

    def test_untraced_decisions_yield_empty_exemplars(self):
        monitor = PrivacyMonitor(
            rules=["suppression_rate <= 0.1"], window_s=600.0
        )
        monitor.emit(
            decision_event(t=0.0, decision="suppressed", forwarded=False)
        )
        (alert,) = monitor.evaluate(now=0.0)
        assert alert.state == "breach"
        assert alert.exemplar_trace_ids == ()

    def test_exemplars_respect_the_rule_window(self):
        monitor = PrivacyMonitor(
            rules=["suppression_rate <= 0.1"], window_s=600.0
        )
        old = decision_event(
            t=0.0, decision="suppressed", forwarded=False
        )
        old["trace_id"] = "a" * 16
        monitor.emit(old)
        fresh = decision_event(
            t=500.0, decision="suppressed", forwarded=False
        )
        fresh["trace_id"] = "b" * 16
        monitor.emit(fresh)
        (alert,) = monitor.evaluate(now=700.0)
        # t=0 fell out of the 600s window ending at 700.
        assert alert.exemplar_trace_ids == ("b" * 16,)
