"""Property tests for histogram percentiles and snapshot round-trips.

Two invariants the rest of the observability layer leans on:

* ``Histogram.percentile`` is monotone in ``q`` and always lands inside
  the exact observed ``[min, max]`` — even for samples in the overflow
  bucket, where there is no upper bound to interpolate against.
* ``MetricsSnapshot`` survives ``to_dict``/``from_dict`` (and a JSON
  text round-trip), which is what JSONL export and ``BENCH_*.json``
  artifacts rely on.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)

# Tight bounds so generated samples regularly land in the overflow
# bucket (anything > 10.0) as well as below the first edge.
BOUNDS = (1.0, 2.0, 5.0, 10.0)

finite_values = st.floats(
    min_value=-50.0,
    max_value=1000.0,
    allow_nan=False,
    allow_infinity=False,
)
quantiles = st.floats(min_value=0.0, max_value=1.0)

label_names = st.sampled_from(["decision", "query", "user"])
label_values = st.sampled_from(["forwarded", "dropped", "grid", "7"])
labels = st.dictionaries(label_names, label_values, max_size=2)
metric_names = st.sampled_from(
    ["ts.requests", "slo.k_attainment", "store.query_ms"]
)


def histogram_of(values):
    histogram = Histogram("h", bounds=BOUNDS)
    for value in values:
        histogram.record(value)
    return histogram


class TestPercentileProperties:
    @given(
        values=st.lists(finite_values, min_size=1, max_size=50),
        qs=st.lists(quantiles, min_size=2, max_size=10),
    )
    def test_monotone_in_q(self, values, qs):
        histogram = histogram_of(values)
        estimates = [histogram.percentile(q) for q in sorted(qs)]
        for lower, upper in zip(estimates, estimates[1:]):
            assert lower <= upper

    @given(
        values=st.lists(finite_values, min_size=1, max_size=50),
        q=quantiles,
    )
    def test_bounded_by_observed_min_max(self, values, q):
        histogram = histogram_of(values)
        estimate = histogram.percentile(q)
        assert min(values) <= estimate <= max(values)

    @given(
        values=st.lists(
            st.floats(min_value=10.5, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
        q=quantiles,
    )
    def test_overflow_bucket_still_bounded(self, values, q):
        # Every sample lies beyond the last bucket edge, so the
        # interpolation has no upper bound to work with — the clamp to
        # the exact observed extremes must carry the property alone.
        histogram = histogram_of(values)
        assert histogram.counts[-1] == len(values)
        estimate = histogram.percentile(q)
        assert min(values) <= estimate <= max(values)

    @given(values=st.lists(finite_values, min_size=1, max_size=50))
    def test_extreme_quantiles_hit_extremes(self, values):
        histogram = histogram_of(values)
        assert histogram.percentile(0.0) == min(values)
        assert histogram.percentile(1.0) == max(values)


class TestSnapshotRoundTrip:
    @settings(max_examples=50)
    @given(
        counters=st.lists(
            st.tuples(
                metric_names,
                labels,
                st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            ),
            max_size=5,
        ),
        gauges=st.lists(
            st.tuples(metric_names, labels, finite_values),
            max_size=5,
        ),
        observations=st.lists(
            st.tuples(
                metric_names,
                labels,
                st.lists(finite_values, min_size=1, max_size=10),
            ),
            max_size=3,
        ),
    )
    def test_to_dict_from_dict_identity(
        self, counters, gauges, observations
    ):
        # Repeated (name, labels) entries just accumulate in the
        # get-or-create registry — no dedup needed.
        registry = MetricsRegistry(default_buckets=BOUNDS)
        for name, label_set, value in counters:
            registry.counter(name, **label_set).inc(value)
        for name, label_set, value in gauges:
            registry.gauge(name, **label_set).set(value)
        for name, label_set, values in observations:
            histogram = registry.histogram(name, **label_set)
            for value in values:
                histogram.record(value)
        snapshot = registry.snapshot()

        restored = MetricsSnapshot.from_dict(snapshot.to_dict())
        assert restored == snapshot

        # …and the dict form survives an actual JSON text round-trip,
        # which is the contract the JSONL sink depends on.
        rehydrated = MetricsSnapshot.from_dict(
            json.loads(json.dumps(snapshot.to_dict()))
        )
        assert rehydrated == snapshot
