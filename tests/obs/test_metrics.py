"""Counters, gauges, histograms, and snapshot round-trips."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestCounters:
    def test_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        assert registry.snapshot().counter_value("hits") == 3

    def test_label_keying_separates_series(self):
        registry = MetricsRegistry()
        registry.counter("decisions", decision="forwarded").inc(5)
        registry.counter("decisions", decision="generalized").inc(2)
        snapshot = registry.snapshot()
        assert snapshot.counter_value("decisions", decision="forwarded") == 5
        assert (
            snapshot.counter_value("decisions", decision="generalized") == 2
        )
        assert snapshot.counter_value("decisions", decision="quiet") == 0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("q", a="1", b="2").inc()
        registry.counter("q", b="2", a="1").inc()
        assert registry.snapshot().counter_value("q", a="1", b="2") == 2

    def test_label_values_stringified(self):
        registry = MetricsRegistry()
        registry.counter("q", user=7).inc()
        assert registry.snapshot().counter_value("q", user="7") == 1

    def test_counters_named_groups_by_labels(self):
        registry = MetricsRegistry()
        registry.counter("d", decision="a").inc(1)
        registry.counter("d", decision="b").inc(2)
        registry.counter("other").inc(9)
        named = registry.snapshot().counters_named("d")
        assert named == {
            (("decision", "a"),): 1,
            (("decision", "b"),): 2,
        }

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("users").set(10)
        registry.gauge("users").set(4)
        assert registry.snapshot().gauge_value("users") == 4


class TestHistogramPercentiles:
    def test_empty_is_nan(self):
        h = Histogram("h")
        assert math.isnan(h.percentile(0.5))
        summary = h.summary()
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_uniform_distribution(self):
        """Interpolated percentiles track a uniform 1..1000 closely."""
        h = Histogram("h")
        for value in range(1, 1001):
            h.record(float(value))
        assert h.count == 1000
        assert h.summary().total == pytest.approx(500500.0)
        for q in (0.50, 0.95, 0.99):
            expected = q * 1000
            assert h.percentile(q) == pytest.approx(expected, rel=0.05)

    def test_constant_distribution(self):
        h = Histogram("h")
        for _ in range(100):
            h.record(42.0)
        # All mass in one bucket; clamping to min/max pins the result.
        assert h.percentile(0.5) == 42.0
        assert h.percentile(0.99) == 42.0
        assert h.summary().minimum == 42.0
        assert h.summary().maximum == 42.0

    def test_two_point_distribution(self):
        h = Histogram("h")
        for _ in range(90):
            h.record(1.0)
        for _ in range(10):
            h.record(1000.0)
        assert h.percentile(0.5) == 1.0
        assert h.percentile(0.99) == pytest.approx(1000.0, rel=0.5)
        assert h.summary().maximum == 1000.0

    def test_custom_buckets(self):
        h = Histogram("h", bounds=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 2.5, 10.0):
            h.record(value)
        assert h.count == 4
        assert h.counts == [1, 1, 1, 1]  # incl. overflow
        assert h.summary().maximum == 10.0

    def test_percentile_bounds_validated(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestSnapshotSerialization:
    def test_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="x").inc(3)
        registry.gauge("g").set(1.5)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("h", unit="ms").record(value)
        snapshot = registry.snapshot()
        restored = MetricsSnapshot.from_dict(snapshot.to_dict())
        assert restored.counters == snapshot.counters
        assert restored.gauges == snapshot.gauges
        assert restored.histograms == snapshot.histograms

    def test_snapshot_is_frozen_in_time(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        snapshot = registry.snapshot()
        registry.counter("c").inc(10)
        assert snapshot.counter_value("c") == 1
