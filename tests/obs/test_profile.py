"""Sampling profiler: capture, attribution, reports, telemetry wiring."""

import time

import pytest

from repro.obs.config import NULL_TELEMETRY, TelemetryConfig
from repro.obs.profile import (
    IDLE_LABEL,
    OTHER_LABEL,
    ActivitySlot,
    CollapsedStack,
    ProfileReport,
    SamplingProfiler,
    render_stage_table,
    report_from_dict,
)


def _spin(seconds: float) -> float:
    """Busy-loop so the sampler has CPU-bound stacks to catch."""
    deadline = time.perf_counter() + seconds
    acc = 0.0
    while time.perf_counter() < deadline:
        acc += sum(i * i for i in range(100))
    return acc


class TestSamplingProfiler:
    def test_captures_busy_stacks(self):
        profiler = SamplingProfiler(interval_s=0.001).start()
        _spin(0.15)
        report = profiler.stop()
        assert report.samples > 10
        assert report.duration_s > 0.1
        assert report.stacks
        # The busy helper shows up in the sampled frames, root-first
        # (so the leaf is the innermost call).
        flat = {
            frame for stack in report.stacks for frame in stack.frames
        }
        assert any("_spin" in frame for frame in flat)

    def test_slot_attributes_stages_and_traces(self):
        slot = ActivitySlot()
        profiler = SamplingProfiler(slot=slot, interval_s=0.001).start()
        _spin(0.05)  # idle: slot untouched
        slot.in_request = True
        slot.trace_id = "trace-1"
        slot.stage = "generalize"
        _spin(0.08)
        slot.stage = None
        _spin(0.04)  # in-request but between stages -> "(other)"
        slot.clear()
        report = profiler.stop()
        labels = {stack.stage for stack in report.stacks}
        assert "generalize" in labels
        assert IDLE_LABEL in labels
        assert 0 < report.request_samples < report.samples
        assert any(t.trace_id == "trace-1" for t in report.traces)

    def test_stage_shares_sum_to_100(self):
        slot = ActivitySlot()
        profiler = SamplingProfiler(slot=slot, interval_s=0.001).start()
        slot.in_request = True
        for stage in ("monitor_match", "generalize", None):
            slot.stage = stage
            _spin(0.04)
        slot.clear()
        report = profiler.stop()
        rows = report.stage_table()
        shares = [
            row.share_pct for row in rows if row.share_pct is not None
        ]
        assert shares
        assert sum(shares) == pytest.approx(100.0)
        # The idle row (if any) carries no share and comes last.
        if rows[-1].stage == IDLE_LABEL:
            assert rows[-1].share_pct is None

    def test_double_start_rejected_stop_idempotent(self):
        profiler = SamplingProfiler(interval_s=0.001).start()
        with pytest.raises(RuntimeError, match="already started"):
            profiler.start()
        first = profiler.stop()
        second = profiler.stop()
        assert second.samples == first.samples
        assert not profiler.running

    def test_switch_interval_clamped_then_restored(self):
        import sys

        before = sys.getswitchinterval()
        profiler = SamplingProfiler(interval_s=0.001).start()
        assert sys.getswitchinterval() < before
        profiler.stop()
        assert sys.getswitchinterval() == before

    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="interval_s"):
            SamplingProfiler(interval_s=0.0)
        with pytest.raises(ValueError, match="max_depth"):
            SamplingProfiler(max_depth=0)


def _synthetic_report() -> ProfileReport:
    return ProfileReport(
        interval_s=0.005,
        duration_s=1.0,
        samples=10,
        stacks=(
            CollapsedStack(
                frames=("main.run", "engine.handle"),
                stage="generalize",
                samples=6,
                wall_s=0.6,
                cpu_s=0.5,
            ),
            CollapsedStack(
                frames=("main.run", "engine.audit"),
                stage=OTHER_LABEL,
                samples=2,
                wall_s=0.2,
                cpu_s=0.1,
            ),
            CollapsedStack(
                frames=("main.wait",),
                stage=IDLE_LABEL,
                samples=2,
                wall_s=0.2,
                cpu_s=0.0,
            ),
        ),
        traces=(),
    )


class TestProfileReport:
    def test_collapsed_lines_format_and_order(self):
        report = _synthetic_report()
        lines = report.collapsed_lines()
        # Hottest first; stage-attributed stacks end in a synthetic
        # stage frame, idle stacks do not.
        assert lines[0] == "main.run;engine.handle;stage:generalize 6"
        assert f"main.run;engine.audit;stage:{OTHER_LABEL} 2" in lines
        assert "main.wait 2" in lines
        assert report.collapsed() == "\n".join(lines)

    def test_collapsed_weights_and_limit(self):
        report = _synthetic_report()
        wall = report.collapsed_lines(weight="wall")
        assert wall[0].endswith(" 600000")  # 0.6 s in microseconds
        cpu = report.collapsed_lines(weight="cpu", limit=1)
        assert len(cpu) == 1
        # A zero-weight stack (idle cpu_s=0) is dropped entirely.
        assert all("main.wait" not in line for line in (
            report.collapsed_lines(weight="cpu")
        ))
        with pytest.raises(ValueError, match="weight"):
            report.collapsed_lines(weight="bogus")

    def test_request_samples_excludes_idle(self):
        assert _synthetic_report().request_samples == 8

    def test_stage_table_shares_exact(self):
        rows = _synthetic_report().stage_table()
        assert [row.stage for row in rows] == [
            "generalize",
            OTHER_LABEL,
            IDLE_LABEL,
        ]
        assert rows[0].share_pct == pytest.approx(75.0)
        assert rows[1].share_pct == pytest.approx(25.0)
        assert rows[2].share_pct is None
        rendered = render_stage_table(rows)
        assert any("generalize" in line for line in rendered)
        assert any("75.0%" in line for line in rendered)

    def test_dict_round_trip(self):
        report = _synthetic_report()
        payload = report.to_dict()
        restored = report_from_dict(payload)
        assert restored.stacks == report.stacks
        assert restored.samples == report.samples
        assert restored.interval_s == report.interval_s
        assert restored.request_samples == report.request_samples
        assert payload["rows"][0]["stage"] == "generalize"


class TestTelemetryIntegration:
    def test_start_stop_profiler(self):
        telemetry = TelemetryConfig(enabled=True).build()
        profiler = telemetry.start_profiler(interval_s=0.001)
        assert telemetry.profiling
        assert profiler.slot is telemetry.activity
        with pytest.raises(RuntimeError, match="already running"):
            telemetry.start_profiler()
        _spin(0.03)
        report = telemetry.stop_profiler()
        assert not telemetry.profiling
        assert report is not None and report.samples > 0
        # A fresh capture works after the previous one stopped.
        telemetry.start_profiler(interval_s=0.001)
        assert telemetry.stop_profiler() is not None
        telemetry.close()

    def test_stop_without_start_is_none(self):
        telemetry = TelemetryConfig(enabled=True).build()
        assert telemetry.stop_profiler() is None
        telemetry.close()

    def test_null_telemetry_rejects_profiling(self):
        with pytest.raises(ValueError, match="disabled"):
            NULL_TELEMETRY.start_profiler()
        assert not NULL_TELEMETRY.profiling
