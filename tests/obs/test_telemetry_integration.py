"""The instrumented pipeline: metrics must mirror the audit trail."""

import os

import pytest

from repro.core.anonymizer import Decision, TrustedAnonymizer
from repro.core.generalization import ToleranceConstraint
from repro.core.lbqid import commute_lbqid
from repro.core.policy import PolicyTable, PrivacyProfile, RiskAction
from repro.core.unlinking import NeverUnlink
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.granularity.timeline import time_at
from repro.mod.store import TrajectoryStore
from repro.obs import NULL_TELEMETRY, TelemetryConfig

HOME = Rect(0, 0, 100, 100)
OFFICE = Rect(900, 900, 1000, 1000)
USER = 1
NEIGHBOURS = (2, 3, 4, 5, 6)

LOOSE = ToleranceConstraint.square(5_000.0, 7_200.0)
TIGHT = ToleranceConstraint.square(10.0, 10.0)


def run_scenario(telemetry=None, tolerance=LOOSE):
    """Two weeks of commute traffic through an instrumented TS.

    The tight-tolerance variant also exercises the failure branches
    (suppression under ``NeverUnlink``).
    """
    policy = PolicyTable(
        default_profile=PrivacyProfile(k=3, on_risk=RiskAction.SUPPRESS),
        default_tolerance=tolerance,
    )
    ts = TrustedAnonymizer(
        TrajectoryStore(telemetry=telemetry),
        policy=policy,
        unlinker=NeverUnlink(),
        telemetry=telemetry,
    )
    ts.register_lbqid(USER, commute_lbqid(HOME, OFFICE, name="commute"))
    for week in range(2):
        for day in range(3):
            for offset, neighbour in enumerate(NEIGHBOURS):
                jitter = 2.0 * offset
                for hour, (x, y) in (
                    (7.4, (40, 40)),
                    (8.4, (950, 950)),
                    (17.1, (950, 950)),
                    (18.1, (40, 40)),
                ):
                    ts.report_location(
                        neighbour,
                        STPoint(
                            x + jitter, y,
                            time_at(week=week, day=day, hour=hour),
                        ),
                    )
            for hour, (x, y) in (
                (7.5, (50, 50)),
                (8.5, (950, 950)),
                (17.2, (950, 950)),
                (18.2, (50, 50)),
            ):
                ts.request(
                    USER,
                    STPoint(x, y, time_at(week=week, day=day, hour=hour)),
                    service="poi",
                )
            # An off-pattern request that is plainly forwarded.
            ts.request(
                USER,
                STPoint(500, 200, time_at(week=week, day=day, hour=12.0)),
            )
    return ts


class TestDecisionCountersMatchAuditTrail:
    @pytest.mark.parametrize("tolerance", [LOOSE, TIGHT])
    def test_counters_equal_audit_tallies(self, tolerance):
        telemetry = TelemetryConfig(enabled=True).build()
        ts = run_scenario(telemetry=telemetry, tolerance=tolerance)
        snapshot = telemetry.snapshot()
        audit = ts.decision_counts()
        for decision in Decision:
            assert snapshot.counter_value(
                "ts.decisions", decision=decision.value
            ) == audit[decision], decision
        assert snapshot.counter_value("ts.requests") == len(ts.events)

    def test_failure_branches_reached(self):
        """The tight scenario actually exercises suppression."""
        ts = run_scenario(
            telemetry=TelemetryConfig(enabled=True).build(),
            tolerance=TIGHT,
        )
        assert ts.decision_counts()[Decision.SUPPRESSED] > 0


class TestPipelineMetrics:
    @pytest.fixture(scope="class")
    def run(self):
        telemetry = TelemetryConfig(enabled=True, ring_buffer=4096).build()
        ts = run_scenario(telemetry=telemetry)
        return ts, telemetry.snapshot(), telemetry

    def test_generalization_histograms_cover_every_algorithm1_run(
        self, run
    ):
        ts, snapshot, _telemetry = run
        generalizations = sum(
            1 for e in ts.events if e.generalization is not None
        )
        for name in (
            "ts.anonymity_set_size",
            "ts.box_area_m2",
            "ts.box_duration_s",
        ):
            assert snapshot.histogram_summary(name).count == generalizations

    def test_latency_histogram_counts_every_request(self, run):
        ts, snapshot, _telemetry = run
        summary = snapshot.histogram_summary("ts.request_latency_ms")
        assert summary.count == len(ts.events)
        assert summary.minimum >= 0

    def test_monitor_counters(self, run):
        ts, snapshot, _telemetry = run
        matched = sum(1 for e in ts.events if e.lbqid_name is not None)
        assert snapshot.counter_value("monitor.match_events") == matched
        assert snapshot.counter_value("monitor.lbqids_matched") >= 1

    def test_store_queries_recorded(self, run):
        _ts, snapshot, _telemetry = run
        # Every store.queries sample carries a uniform ``method``
        # label; which value depends on the session's backend.
        method = (
            "numpy"
            if os.environ.get("REPRO_STORE_BACKEND") == "numpy"
            else "brute"
        )
        assert (
            snapshot.counter_value(
                "store.queries", query="nearest_users", method=method
            )
            > 0
        )
        assert (
            snapshot.counter_value(
                "store.queries", query="closest_point", method=method
            )
            > 0
        )

    def test_request_spans_in_ring_buffer(self, run):
        ts, _snapshot, telemetry = run
        spans = telemetry.ring().spans()
        request_spans = [s for s in spans if s["name"] == "ts.request"]
        assert len(request_spans) == len(ts.events)
        decisions = {s["attributes"]["decision"] for s in request_spans}
        assert "generalized" in decisions


class TestDisabledFastPath:
    def test_disabled_records_nothing_and_behaves_identically(self):
        enabled = TelemetryConfig(enabled=True).build()
        ts_on = run_scenario(telemetry=enabled)
        ts_off = run_scenario(telemetry=None)
        assert ts_on.decision_counts() == ts_off.decision_counts()
        assert [e.decision for e in ts_on.events] == [
            e.decision for e in ts_off.events
        ]

    def test_default_is_the_shared_null_singleton(self):
        ts = TrustedAnonymizer(TrajectoryStore())
        assert ts.telemetry is NULL_TELEMETRY
        assert not ts.telemetry.enabled
        snapshot = NULL_TELEMETRY.snapshot()
        assert not snapshot.counters
        assert not snapshot.histograms

    def test_disabled_config_builds_null(self):
        assert TelemetryConfig().build() is NULL_TELEMETRY
        assert TelemetryConfig(enabled=False, console=True).build() is (
            NULL_TELEMETRY
        )
