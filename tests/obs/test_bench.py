"""Artifact round-trip, comparator verdicts, and gate exit codes."""

import json
import sys
from pathlib import Path

import pytest

from repro.obs.bench import (
    BenchArtifact,
    compare_artifacts,
    export_bench,
    latency_summaries,
    load_bench_artifact,
    values_match,
)
from repro.obs.config import TelemetryConfig

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

import bench_gate  # noqa: E402


def artifact(metrics=None, workload=None, experiment="e1", **kwargs):
    return BenchArtifact(
        experiment=experiment,
        metrics=metrics or {"requests/value": 100.0},
        workload=workload or {"mode": "full", "seed": 7},
        **kwargs,
    )


class TestArtifactRoundTrip:
    def test_write_and_load(self, tmp_path):
        original = artifact(
            metrics={"a": 1.5, "b": 0.0},
            latency={"sim_ms": {"mean": 12.5, "p95": 20.0}},
            git_sha="abc123",
        )
        path = original.write(tmp_path)
        assert path.name == "BENCH_e1.json"
        loaded = load_bench_artifact(path)
        assert loaded == original

    def test_serialized_form_is_strict_sorted_json(self, tmp_path):
        path = artifact().write(tmp_path)
        text = path.read_text()
        data = json.loads(text)
        assert list(data) == sorted(data)
        assert data["schema_version"] == 1

    def test_export_bench_noop_without_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        assert export_bench("e1", {"a": 1.0}) is None

    def test_export_bench_env_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        path = export_bench("e2", {"a": 1.0})
        assert path == tmp_path / "BENCH_e2.json"

    def test_export_drops_nan_and_inf(self, tmp_path):
        path = export_bench(
            "e3",
            {"ok": 1.0, "bad": float("nan"), "worse": float("inf")},
            directory=tmp_path,
        )
        assert load_bench_artifact(path).metrics == {"ok": 1.0}

    def test_latency_summaries_only_timing_histograms(self):
        telemetry = TelemetryConfig(enabled=True).build()
        telemetry.observe("store.query_ms", 2.0, method="grid")
        telemetry.observe("ts.anonymity_set_size", 5.0)
        summaries = latency_summaries(telemetry.snapshot())
        assert list(summaries) == ["store.query_ms{method=grid}"]
        assert summaries["store.query_ms{method=grid}"]["count"] == 1.0


class TestComparator:
    def test_within_tolerance_ok(self):
        base = artifact(metrics={"a": 100.0})
        cur = artifact(metrics={"a": 100.5})
        comparison = compare_artifacts(base, cur, tolerance=0.01)
        assert comparison.ok
        assert [d.status for d in comparison.deltas] == ["ok"]

    def test_regression_detected(self):
        base = artifact(metrics={"a": 100.0})
        cur = artifact(metrics={"a": 110.0})
        comparison = compare_artifacts(base, cur, tolerance=0.05)
        assert not comparison.ok
        [delta] = comparison.regressions
        assert delta.status == "regressed"
        assert delta.rel_change == pytest.approx(0.10)
        assert "a" in delta.describe()

    def test_missing_metric_fails_added_warns(self):
        base = artifact(metrics={"gone": 1.0, "same": 2.0})
        cur = artifact(metrics={"same": 2.0, "new": 3.0})
        comparison = compare_artifacts(base, cur)
        by_status = {d.metric: d.status for d in comparison.deltas}
        assert by_status == {
            "gone": "missing", "same": "ok", "new": "added",
        }
        assert not comparison.ok  # missing fails …
        base2 = artifact(metrics={"same": 2.0})
        assert compare_artifacts(base2, cur).ok  # … added alone doesn't

    def test_workload_mismatch_skips(self):
        base = artifact(workload={"mode": "full"})
        cur = artifact(workload={"mode": "smoke"})
        comparison = compare_artifacts(base, cur)
        assert comparison.ok
        assert "fingerprint mismatch" in comparison.skipped_reason

    def test_schema_mismatch_skips(self):
        base = artifact(schema_version=1)
        cur = artifact(schema_version=2)
        comparison = compare_artifacts(base, cur)
        assert comparison.ok
        assert "schema mismatch" in comparison.skipped_reason

    def test_values_match_near_zero_is_absolute(self):
        assert values_match(0.0, 0.0, tolerance=0.01)
        assert values_match(0.0, 0.005, tolerance=0.01)
        assert not values_match(0.0, 0.5, tolerance=0.01)
        # Relative elsewhere: 1% of 1000 is 10.
        assert values_match(1000.0, 1009.0, tolerance=0.01)
        assert not values_match(1000.0, 1011.0, tolerance=0.01)


class TestGateCli:
    def _dirs(self, tmp_path, baseline, current):
        baseline_dir = tmp_path / "baselines"
        run_dir = tmp_path / "artifacts"
        if baseline is not None:
            baseline.write(baseline_dir)
        if current is not None:
            current.write(run_dir)
        else:
            run_dir.mkdir()
        return [
            "--baseline-dir", str(baseline_dir),
            "--run-dir", str(run_dir),
        ]

    def test_passing_run_exits_zero(self, tmp_path, capsys):
        args = self._dirs(tmp_path, artifact(), artifact())
        assert bench_gate.main(args) == 0
        assert "OK   e1" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        args = self._dirs(
            tmp_path,
            artifact(metrics={"a": 100.0}),
            artifact(metrics={"a": 200.0}),
        )
        assert bench_gate.main(args) == 1
        assert "FAIL e1" in capsys.readouterr().out

    def test_warn_only_exits_zero(self, tmp_path):
        args = self._dirs(
            tmp_path,
            artifact(metrics={"a": 100.0}),
            artifact(metrics={"a": 200.0}),
        )
        assert bench_gate.main(args + ["--warn-only"]) == 0

    def test_missing_baseline_warns_but_passes(self, tmp_path, capsys):
        args = self._dirs(tmp_path, None, artifact())
        assert bench_gate.main(args) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_workload_mismatch_warns_but_passes(self, tmp_path, capsys):
        args = self._dirs(
            tmp_path,
            artifact(workload={"mode": "full"}),
            artifact(workload={"mode": "smoke"}),
        )
        assert bench_gate.main(args) == 0
        assert "skipped" in capsys.readouterr().out

    def test_empty_run_dir_fails_unless_warn_only(self, tmp_path):
        args = self._dirs(tmp_path, artifact(), None)
        assert bench_gate.main(args) == 1
        assert bench_gate.main(args + ["--warn-only"]) == 0

    def test_stale_baseline_warns(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        run_dir = tmp_path / "artifacts"
        artifact(experiment="e1").write(baseline_dir)
        artifact(experiment="e9").write(baseline_dir)
        artifact(experiment="e1").write(run_dir)
        code = bench_gate.main(
            ["--baseline-dir", str(baseline_dir),
             "--run-dir", str(run_dir)]
        )
        assert code == 0
        assert "BENCH_e9.json had no artifact" in capsys.readouterr().out

    def test_tolerance_flag(self, tmp_path):
        args = self._dirs(
            tmp_path,
            artifact(metrics={"a": 100.0}),
            artifact(metrics={"a": 104.0}),
        )
        assert bench_gate.main(args + ["--tolerance", "0.05"]) == 0
        assert bench_gate.main(args + ["--tolerance", "0.01"]) == 1
