"""Prometheus exposition: render, exemplars, parse, quantiles."""

import math

import pytest

from repro.obs.export import (
    parse_exposition,
    parse_prometheus,
    quantile_from_buckets,
    render_prometheus,
    sanitize_name,
)
from repro.obs.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.served", kind="request").inc(7)
    registry.counter("serve.served", kind="update").inc(3)
    registry.gauge("serve.queue_depth").set(5)
    hist = registry.histogram("serve.request_ms", bounds=(1.0, 2.0, 5.0))
    for value in (0.5, 1.5, 1.7, 4.0, 9.0):
        hist.record(value)
    return registry


def test_sanitize_name_maps_dots_and_bad_chars():
    assert sanitize_name("serve.request_ms") == "serve_request_ms"
    assert sanitize_name("a-b c") == "a_b_c"
    # A leading digit is not a valid metric-name start.
    assert sanitize_name("9lives").startswith("_")


def test_render_and_parse_round_trip():
    text = render_prometheus(populated_registry())
    samples = parse_prometheus(text)
    assert samples[
        ("serve_served_total", (("kind", "request"),))
    ] == 7.0
    assert samples[("serve_served_total", (("kind", "update"),))] == 3.0
    assert samples[("serve_queue_depth", ())] == 5.0
    # Cumulative buckets close with +Inf and agree with _count.
    assert samples[("serve_request_ms_bucket", (("le", "+Inf"),))] == 5.0
    assert samples[("serve_request_ms_count", ())] == 5.0
    assert samples[("serve_request_ms_sum", ())] == pytest.approx(16.7)


def test_bucket_series_is_cumulative():
    text = render_prometheus(populated_registry())
    samples = parse_prometheus(text)
    buckets = {
        float(dict(labels)["le"]): value
        for (name, labels), value in samples.items()
        if name == "serve_request_ms_bucket"
    }
    ordered = [buckets[b] for b in sorted(buckets)]
    assert ordered == sorted(ordered)
    assert ordered[-1] == 5.0


def test_exemplar_rides_the_bucket_line_and_still_parses():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_ms", bounds=(1.0, 10.0))
    hist.record(0.4, trace_id="aaaaaaaaaaaaaaaa")
    hist.record(7.0, trace_id="bbbbbbbbbbbbbbbb")
    hist.record(9.0, trace_id="cccccccccccccccc")  # worst in bucket
    text = render_prometheus(registry)
    assert '# {trace_id="cccccccccccccccc"} 9.0' in text
    assert "bbbbbbbbbbbbbbbb" not in text  # superseded by the worst
    samples = parse_prometheus(text)  # exemplars must not break parsing
    assert samples[("lat_ms_bucket", (("le", "+Inf"),))] == 3.0


def test_parse_exposition_keeps_exemplars():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_ms", bounds=(1.0, 10.0))
    hist.record(0.4, trace_id="aaaaaaaaaaaaaaaa")
    hist.record(9.0, trace_id="cccccccccccccccc")
    samples, exemplars = parse_exposition(render_prometheus(registry))
    # Samples agree with the exemplar-dropping parser …
    assert samples == parse_prometheus(render_prometheus(registry))
    # … and every exemplar-carrying bucket line keeps (value, trace).
    assert exemplars[("lat_ms_bucket", (("le", "1.0"),))] == (
        0.4,
        "aaaaaaaaaaaaaaaa",
    )
    assert exemplars[("lat_ms_bucket", (("le", "10.0"),))] == (
        9.0,
        "cccccccccccccccc",
    )


def test_parse_exposition_rejects_bad_exemplar_value():
    with pytest.raises(ValueError, match="exemplar"):
        parse_exposition(
            'm_bucket{le="+Inf"} 1 # {trace_id="t"} nope\n'
        )


def test_snapshot_degrades_to_summary_form():
    registry = populated_registry()
    text = render_prometheus(registry.snapshot())
    assert "# TYPE serve_request_ms summary" in text
    samples = parse_prometheus(text)
    assert ("serve_request_ms", (("quantile", "0.5"),)) in samples
    assert ("serve_request_ms", (("quantile", "0.99"),)) in samples
    assert samples[("serve_request_ms_count", ())] == 5.0


def test_parse_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_prometheus("this is not a sample\n")
    with pytest.raises(ValueError):
        parse_prometheus("metric_name not_a_number\n")
    # Comments and blanks are fine.
    assert parse_prometheus("# HELP x y\n\n") == {}


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("c", path='a"b\\c').inc()
    text = render_prometheus(registry)
    assert '\\"' in text and "\\\\" in text
    samples = parse_prometheus(text)  # escapes must not break parsing
    assert len(samples) == 1 and list(samples.values()) == [1.0]


def test_quantile_from_buckets_interpolates():
    buckets = {1.0: 5.0, 2.0: 10.0, float("inf"): 10.0}
    assert quantile_from_buckets(buckets, 10, 0.5) == pytest.approx(1.0)
    assert quantile_from_buckets(buckets, 10, 0.99) == pytest.approx(
        1.98
    )
    assert math.isnan(quantile_from_buckets(buckets, 0, 0.5))


def test_quantile_from_buckets_edge_cases():
    # Empty series / zero count: undefined, reported as NaN.
    assert math.isnan(quantile_from_buckets({}, 0, 0.5))
    assert math.isnan(quantile_from_buckets({1.0: 4.0}, 0, 0.5))
    # All mass in the overflow bucket: the best the scrape can say is
    # the last finite bound.
    overflow = {1.0: 0.0, 5.0: 0.0, float("inf"): 10.0}
    assert quantile_from_buckets(overflow, 10, 0.5) == 5.0
    assert quantile_from_buckets(overflow, 10, 0.99) == 5.0
    # Single finite bucket holding everything interpolates from 0.
    single = {2.0: 10.0, float("inf"): 10.0}
    assert quantile_from_buckets(single, 10, 0.5) == pytest.approx(1.0)
    # q=0 pins to the distribution floor, q=1 to the top bound.
    buckets = {1.0: 5.0, 2.0: 10.0, float("inf"): 10.0}
    assert quantile_from_buckets(buckets, 10, 0.0) == 0.0
    assert quantile_from_buckets(buckets, 10, 1.0) == pytest.approx(2.0)


def test_quantile_from_buckets_matches_registry_percentile():
    registry = MetricsRegistry()
    hist = registry.histogram("h", bounds=(1.0, 2.0, 5.0, 10.0))
    for value in (0.2, 0.9, 1.1, 1.5, 3.0, 4.0, 6.0, 7.0, 8.0, 9.5):
        hist.record(value)
    samples = parse_prometheus(render_prometheus(registry))
    buckets = {
        float(dict(labels)["le"]): value
        for (name, labels), value in samples.items()
        if name == "h_bucket"
    }
    count = samples[("h_count", ())]
    for q in (0.5, 0.95):
        scraped = quantile_from_buckets(buckets, count, q)
        native = hist.percentile(q)
        # Same bucket, same linear interpolation — within one bucket
        # width of each other (the native version clamps to min/max).
        assert abs(scraped - native) <= 5.0
