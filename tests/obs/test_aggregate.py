"""Fleet aggregation: merge semantics, trace assembly, the collector."""

import asyncio
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.aggregate import (
    FleetView,
    MetricsCollector,
    WorkerScrape,
    assemble_traces,
    merge_exemplars,
    merge_rule,
    merge_samples,
)
from repro.obs.export import parse_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry

HIST_BOUNDS = (1.0, 2.0, 5.0, 10.0)


class TestMergeRule:
    def test_classification(self):
        assert merge_rule("serve_served_total", ()) == "sum"
        assert merge_rule("lat_ms_sum", ()) == "sum"
        assert merge_rule("lat_ms_count", ()) == "sum"
        assert (
            merge_rule("lat_ms_bucket", (("le", "1.0"),)) == "bucket"
        )
        assert merge_rule("serve_queue_depth", ()) == "worker"
        # Summary quantiles cannot be combined across workers.
        assert (
            merge_rule("lat_ms", (("quantile", "0.5"),)) == "worker"
        )
        # A _bucket name without an le label is not a bucket series.
        assert merge_rule("odd_bucket", ()) == "worker"


class TestMergeSamples:
    def test_counters_sum_across_workers(self):
        key = ("serve_served_total", (("kind", "request"),))
        merged = merge_samples({"a": {key: 7.0}, "b": {key: 3.0}})
        assert merged[key] == 10.0

    def test_gauges_keep_per_worker_identity(self):
        key = ("serve_queue_depth", ())
        merged = merge_samples({"a": {key: 5.0}, "b": {key: 7.0}})
        assert merged[
            ("serve_queue_depth", (("worker", "a"),))
        ] == 5.0
        assert merged[
            ("serve_queue_depth", (("worker", "b"),))
        ] == 7.0
        assert key not in merged

    def test_worker_label_name_is_configurable(self):
        key = ("g", ())
        merged = merge_samples(
            {"a": {key: 1.0}}, worker_label="shard"
        )
        assert merged[("g", (("shard", "a"),))] == 1.0

    def test_elided_buckets_merge_as_step_functions(self):
        # Worker a elided the 5.0 bound (its cumulative count did not
        # change there); worker b elided 1.0.  A naive key-wise sum
        # would report 3.0 at le=5.0 — the step-function read says 5.0.
        a = {
            ("h_bucket", (("le", "1.0"),)): 2.0,
            ("h_bucket", (("le", "+Inf"),)): 2.0,
        }
        b = {
            ("h_bucket", (("le", "5.0"),)): 3.0,
            ("h_bucket", (("le", "+Inf"),)): 4.0,
        }
        merged = merge_samples({"a": a, "b": b})
        assert merged[("h_bucket", (("le", "1.0"),))] == 2.0
        assert merged[("h_bucket", (("le", "5.0"),))] == 5.0
        assert merged[("h_bucket", (("le", "+Inf"),))] == 6.0


def _registry(counter_incs, hist_values) -> MetricsRegistry:
    registry = MetricsRegistry()
    for kind, n in counter_incs:
        registry.counter("serve.served", kind=kind).inc(n)
    if hist_values:
        hist = registry.histogram(
            "serve.request_ms", bounds=HIST_BOUNDS
        )
        for value in hist_values:
            hist.record(value)
    return registry


counter_incs = st.lists(
    st.tuples(
        st.sampled_from(["request", "update", "health"]),
        st.integers(min_value=1, max_value=50),
    ),
    max_size=6,
)
hist_values = st.lists(
    st.floats(min_value=0.01, max_value=20.0),
    max_size=15,
)


class TestMergeEqualsCombinedWorkload:
    @settings(max_examples=60, deadline=None)
    @given(counter_incs, hist_values, counter_incs, hist_values)
    def test_two_scrapes_merge_to_the_combined_registry(
        self, incs_a, values_a, incs_b, values_b
    ):
        """merge(scrape(A), scrape(B)) == scrape(A ++ B).

        The summed series of two workers' expositions must be exactly
        what one registry serving both workloads would expose —
        including the bucket series, where per-worker elision makes
        the naive key-wise sum wrong.
        """
        merged = merge_samples(
            {
                "w0": parse_prometheus(
                    render_prometheus(_registry(incs_a, values_a))
                ),
                "w1": parse_prometheus(
                    render_prometheus(_registry(incs_b, values_b))
                ),
            }
        )
        combined = parse_prometheus(
            render_prometheus(
                _registry(incs_a + incs_b, values_a + values_b)
            )
        )
        for (name, labels), value in combined.items():
            rule = merge_rule(name, labels)
            if rule == "worker":
                continue
            key = (name, tuple(sorted(labels)))
            assert key in merged, key
            if name.endswith("_sum"):
                assert math.isclose(
                    merged[key], value, rel_tol=1e-9, abs_tol=1e-9
                )
            else:  # counters, bucket counts, _count: exact
                assert merged[key] == value, key
        # No summed/bucket key appears in the merge that the combined
        # registry does not expose.
        for (name, labels) in merged:
            if merge_rule(name, labels) == "worker":
                continue
            assert (name, labels) in combined


class TestMergeExemplars:
    def test_keeps_fleet_worst_per_bucket(self):
        key = ("lat_ms_bucket", (("le", "+Inf"),))
        merged = merge_exemplars(
            {
                "a": {key: (4.0, "aaaa")},
                "b": {key: (9.0, "bbbb")},
            }
        )
        assert merged[key] == (9.0, "bbbb")

    def test_value_tie_breaks_to_lexically_first_trace(self):
        key = ("lat_ms_bucket", (("le", "+Inf"),))
        forward = merge_exemplars(
            {"a": {key: (5.0, "zzzz")}, "b": {key: (5.0, "aaaa")}}
        )
        backward = merge_exemplars(
            {"a": {key: (5.0, "aaaa")}, "b": {key: (5.0, "zzzz")}}
        )
        assert forward[key] == backward[key] == (5.0, "aaaa")


class TestAssembleTraces:
    def test_cross_worker_grouping(self):
        fleet = assemble_traces(
            {
                "a": [
                    {
                        "trace_id": "t1",
                        "op": "request",
                        "total_ms": 4.0,
                        "queue_ms": 1.0,
                    },
                    {"trace_id": "t2", "total_ms": 9.0, "shed": True},
                ],
                "b": [
                    {
                        "trace_id": "t1",
                        "decision": "forwarded",
                        "total_ms": 6.0,
                        "queue_ms": 0.5,
                    },
                ],
            }
        )
        assert [t.trace_id for t in fleet] == ["t2", "t1"]  # slowest 1st
        t1 = fleet[1]
        assert t1.workers == ("a", "b")
        assert t1.op == "request"
        assert t1.decision == "forwarded"
        assert t1.total_ms == 6.0  # worst observation wins
        assert t1.queue_ms == 1.0
        assert not t1.shed
        assert fleet[0].shed
        assert {e["worker"] for e in t1.entries} == {"a", "b"}

    def test_entries_without_trace_ids_are_dropped(self):
        assert assemble_traces({"a": [{"op": "request"}]}) == []


def _scrape_fn(data):
    async def scrape(target):
        result = data[target]
        if isinstance(result, Exception):
            raise result
        return result

    return scrape


def _worker(name, samples=None, health=None, traces=None):
    return WorkerScrape(
        worker=name,
        samples=samples or {},
        health=health,
        traces=traces or [],
    )


class TestMetricsCollector:
    def test_rejects_empty_targets(self):
        with pytest.raises(ValueError, match="target"):
            MetricsCollector(_scrape_fn({}), [])

    def test_merges_reachable_and_records_failures(self):
        served = ("serve_served_total", ())
        collector = MetricsCollector(
            _scrape_fn(
                {
                    "h:1": _worker(
                        "w0",
                        samples={served: 7.0},
                        health={"status": "ok", "slo_ok": True},
                        traces=[{"trace_id": "t1", "total_ms": 3.0}],
                    ),
                    "h:2": _worker(
                        "w1",
                        samples={served: 5.0},
                        health={"status": "ok", "slo_ok": True},
                        traces=[{"trace_id": "t1", "total_ms": 8.0}],
                    ),
                    "h:3": ConnectionError("refused"),
                }
            ),
            ["h:1", "h:2", "h:3"],
        )
        view = asyncio.run(collector.collect())
        assert view.workers == ("w0", "w1")
        assert view.samples[served] == 12.0
        assert "h:3" in view.errors
        assert "refused" in view.errors["h:3"]
        assert not view.healthy  # an unreachable worker is unhealthy
        [trace] = view.traces
        assert trace.workers == ("w0", "w1")
        assert trace.total_ms == 8.0

    def test_duplicate_worker_names_are_disambiguated(self):
        collector = MetricsCollector(
            _scrape_fn(
                {"h:1": _worker("w0"), "h:2": _worker("w0")}
            ),
            ["h:1", "h:2"],
        )
        view = asyncio.run(collector.collect())
        assert set(view.scrapes) == {"w0", "w0#h:2"}

    def test_healthy_requires_ok_status_and_green_slos(self):
        def view_with(health):
            scrape = _worker("w0", health=health)
            return FleetView(
                workers=("w0",),
                scrapes={"w0": scrape},
                errors={},
                samples={},
                exemplars={},
                traces=[],
            )

        assert view_with({"status": "ok", "slo_ok": True}).healthy
        assert not view_with({"status": "ok", "slo_ok": False}).healthy
        assert not view_with({"status": "draining"}).healthy
        # Health not fetched at all: reachability alone decides.
        assert view_with(None).healthy


class TestShardDimension:
    def view_with(self, samples):
        return FleetView(
            workers=("w0",),
            scrapes={"w0": _worker("w0", samples=samples)},
            errors={},
            samples=samples,
            exemplars={},
            traces=[],
        )

    def test_shards_enumerated_numerically(self):
        view = self.view_with(
            {
                ("serve_served_total", (("shard", "10"),)): 1.0,
                ("serve_served_total", (("shard", "2"),)): 2.0,
                ("serve_shed_total", (("shard", "0"),)): 3.0,
                ("other_total", ()): 4.0,  # unlabelled: no shard
            }
        )
        assert view.shards == ("0", "2", "10")

    def test_shard_series_sums_over_other_labels(self):
        view = self.view_with(
            {
                (
                    "serve_served_total",
                    (("op", "request"), ("shard", "0")),
                ): 5.0,
                (
                    "serve_served_total",
                    (("op", "update"), ("shard", "0")),
                ): 7.0,
                ("serve_served_total", (("shard", "1"),)): 11.0,
                ("serve_served_total", ()): 99.0,  # unsharded: ignored
            }
        )
        assert view.shard_series("serve_served_total") == {
            "0": 12.0,
            "1": 11.0,
        }

    def test_unsharded_fleet_has_no_shards(self):
        view = self.view_with({("serve_served_total", ()): 3.0})
        assert view.shards == ()
        assert view.shard_series("serve_served_total") == {}
