"""Span nesting, timing monotonicity, and the decorator API."""

from repro.obs.sinks import RingBufferSink
from repro.obs.tracing import SpanRecord, Tracer


def test_span_records_duration_and_attributes():
    sink = RingBufferSink()
    tracer = Tracer(sinks=[sink])
    with tracer.span("work", user=1) as span:
        span.annotate(decision="forwarded")
    assert tracer.finished == 1
    assert tracer.depth == 0
    record = span.record
    assert record.name == "work"
    assert record.duration >= 0
    assert record.attributes == {"user": 1, "decision": "forwarded"}
    assert sink.spans()[0]["name"] == "work"


def test_nesting_tracks_parent_and_depth():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        assert tracer.depth == 1
        with tracer.span("inner") as inner:
            assert tracer.depth == 2
    assert outer.record.depth == 0
    assert outer.record.parent is None
    assert inner.record.depth == 1
    assert inner.record.parent == "outer"


def test_timing_monotonicity_of_nested_spans():
    """A child span lies within its parent's window, on one clock."""
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            total = sum(range(1000))
            assert total == 499500
    o, i = outer.record, inner.record
    assert o.start <= i.start <= i.end <= o.end
    assert i.duration >= 0
    assert o.duration >= i.duration


def test_fake_clock_durations_exact():
    ticks = iter(range(100))
    tracer = Tracer(clock=lambda: float(next(ticks)))
    with tracer.span("a") as a:  # start=0
        with tracer.span("b") as b:  # start=1, end=2
            pass
    # a ends at 3.
    assert b.record.start == 1.0 and b.record.end == 2.0
    assert a.record.start == 0.0 and a.record.end == 3.0
    assert a.record.duration == 3.0


def test_exception_closes_span_and_tags_error():
    tracer = Tracer()
    try:
        with tracer.span("risky") as span:
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert tracer.depth == 0
    assert span.record is not None
    assert span.record.attributes["error"] == "RuntimeError"


def test_decorator_traces_each_call():
    sink = RingBufferSink()
    tracer = Tracer(sinks=[sink])

    @tracer.wrap("compute", kind="test")
    def compute(x):
        return x * 2

    assert compute(21) == 42
    assert compute(1) == 2
    names = [event["name"] for event in sink.spans()]
    assert names == ["compute", "compute"]
    assert sink.spans()[0]["attributes"] == {"kind": "test"}


def test_record_round_trip():
    tracer = Tracer()
    with tracer.span("work", user=3) as span:
        pass
    restored = SpanRecord.from_dict(span.record.to_dict())
    assert restored == span.record
