"""Span nesting, timing monotonicity, and the decorator API."""

from repro.obs.sinks import RingBufferSink
from repro.obs.tracing import SpanRecord, Tracer


def test_span_records_duration_and_attributes():
    sink = RingBufferSink()
    tracer = Tracer(sinks=[sink])
    with tracer.span("work", user=1) as span:
        span.annotate(decision="forwarded")
    assert tracer.finished == 1
    assert tracer.depth == 0
    record = span.record
    assert record.name == "work"
    assert record.duration >= 0
    assert record.attributes == {"user": 1, "decision": "forwarded"}
    assert sink.spans()[0]["name"] == "work"


def test_nesting_tracks_parent_and_depth():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        assert tracer.depth == 1
        with tracer.span("inner") as inner:
            assert tracer.depth == 2
    assert outer.record.depth == 0
    assert outer.record.parent is None
    assert inner.record.depth == 1
    assert inner.record.parent == "outer"


def test_timing_monotonicity_of_nested_spans():
    """A child span lies within its parent's window, on one clock."""
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            total = sum(range(1000))
            assert total == 499500
    o, i = outer.record, inner.record
    assert o.start <= i.start <= i.end <= o.end
    assert i.duration >= 0
    assert o.duration >= i.duration


def test_fake_clock_durations_exact():
    ticks = iter(range(100))
    tracer = Tracer(clock=lambda: float(next(ticks)))
    with tracer.span("a") as a:  # start=0
        with tracer.span("b") as b:  # start=1, end=2
            pass
    # a ends at 3.
    assert b.record.start == 1.0 and b.record.end == 2.0
    assert a.record.start == 0.0 and a.record.end == 3.0
    assert a.record.duration == 3.0


def test_exception_closes_span_and_tags_error():
    tracer = Tracer()
    try:
        with tracer.span("risky") as span:
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert tracer.depth == 0
    assert span.record is not None
    assert span.record.attributes["error"] == "RuntimeError"


def test_decorator_traces_each_call():
    sink = RingBufferSink()
    tracer = Tracer(sinks=[sink])

    @tracer.wrap("compute", kind="test")
    def compute(x):
        return x * 2

    assert compute(21) == 42
    assert compute(1) == 2
    names = [event["name"] for event in sink.spans()]
    assert names == ["compute", "compute"]
    assert sink.spans()[0]["attributes"] == {"kind": "test"}


def test_record_round_trip():
    tracer = Tracer()
    with tracer.span("work", user=3) as span:
        pass
    restored = SpanRecord.from_dict(span.record.to_dict())
    assert restored == span.record


# ---------------------------------------------------------------------
# distributed trace context
# ---------------------------------------------------------------------

import asyncio  # noqa: E402

import pytest  # noqa: E402

from repro.obs.tracing import TraceContext  # noqa: E402


def test_trace_context_wire_round_trip():
    ctx = TraceContext(trace_id="0123456789abcdef", span_id="fedcba9876543210")
    wire = ctx.to_wire()
    assert wire == "0123456789abcdef-fedcba9876543210"
    assert TraceContext.from_wire(wire) == ctx


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "0123456789abcdef",
        "0123456789abcdef-",
        "0123456789ABCDEF-fedcba9876543210",  # uppercase
        "0123456789abcdef-fedcba987654321",  # 15 chars
        "xx23456789abcdef-fedcba9876543210",
        "0123456789abcdef-fedcba9876543210-ff",
    ],
)
def test_trace_context_rejects_malformed_wire(bad):
    with pytest.raises(ValueError):
        TraceContext.from_wire(bad)


def test_span_ids_link_parent_to_child():
    tracer = Tracer(seed=7)
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            pass
    assert outer.record.trace_id == inner.record.trace_id
    assert inner.record.parent_id == outer.record.span_id
    assert outer.record.parent_id is None
    assert outer.record.span_id != inner.record.span_id


def test_remote_parent_grafts_and_marks_remote():
    tracer = Tracer(seed=7)
    ctx = TraceContext(trace_id="ab" * 8, span_id="cd" * 8)
    with tracer.span("serve.admission", parent=ctx) as span:
        assert span.remote is True
        assert tracer.active_trace() is not None
        assert tracer.active_trace().trace_id == ctx.trace_id
        with tracer.span("child") as child:
            assert child.remote is True
    assert span.record.trace_id == ctx.trace_id
    assert span.record.parent_id == ctx.span_id
    assert child.record.parent_id == span.record.span_id
    assert tracer.active_trace() is None


def test_active_trace_is_none_for_local_spans():
    tracer = Tracer()
    with tracer.span("local"):
        assert tracer.active_trace() is None


def test_detached_span_is_not_current():
    tracer = Tracer(seed=1)
    span = tracer.start_span("queue_wait")
    assert tracer.current() is None
    with tracer.span("other") as other:
        pass
    span.end()
    # Detached root: its own fresh trace, not parented under "other".
    assert span.record.parent_id is None
    assert span.record.trace_id != other.record.trace_id


def test_context_propagates_across_tasks():
    tracer = Tracer(seed=3)
    records = {}

    async def child_task(name):
        with tracer.span(name) as span:
            await asyncio.sleep(0)
        records[name] = span.record

    async def run():
        with tracer.span("root") as root:
            # Tasks created inside the span inherit it as parent.
            await asyncio.gather(child_task("a"), child_task("b"))
        records["root"] = root.record

    asyncio.run(run())
    assert records["a"].parent_id == records["root"].span_id
    assert records["b"].parent_id == records["root"].span_id
    assert (
        records["a"].trace_id
        == records["b"].trace_id
        == records["root"].trace_id
    )
    # Sibling tasks never see each other as parents.
    assert records["a"].span_id != records["b"].span_id


def test_head_sampling_rates():
    assert Tracer(sample_rate=1.0).sample() is True
    assert Tracer(sample_rate=0.0).sample() is False
    tracer = Tracer(sample_rate=0.5, seed=42)
    rolls = [tracer.sample() for _ in range(400)]
    assert 100 < sum(rolls) < 300
    # Seeded: the roll sequence is reproducible.
    again = Tracer(sample_rate=0.5, seed=42)
    assert [again.sample() for _ in range(400)] == rolls
    with pytest.raises(ValueError):
        Tracer(sample_rate=1.5)


def test_common_attributes_stamp_every_record():
    sink = RingBufferSink()
    tracer = Tracer(
        sinks=[sink], common_attributes={"worker": "w0", "shard": "2"}
    )
    with tracer.span("x", op="request"):
        pass
    (event,) = sink.spans()
    assert event["attributes"]["worker"] == "w0"
    assert event["attributes"]["shard"] == "2"
    assert event["attributes"]["op"] == "request"
