"""Ring buffer, JSONL round-trip, console logging routing."""

import logging

from repro.obs.config import TelemetryConfig
from repro.obs.metrics import MetricsSnapshot
from repro.obs.sinks import (
    ConsoleSink,
    JsonlSink,
    RingBufferSink,
    read_jsonl,
)


class TestRingBuffer:
    def test_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        for i in range(10):
            sink.emit({"type": "span", "name": f"s{i}"})
        assert len(sink) == 3
        assert [e["name"] for e in sink.spans()] == ["s7", "s8", "s9"]

    def test_copies_events(self):
        sink = RingBufferSink()
        event = {"type": "span", "name": "a"}
        sink.emit(event)
        event["name"] = "mutated"
        assert sink.spans()[0]["name"] == "a"


class TestJsonl:
    def test_round_trip_spans_and_snapshot(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        telemetry = TelemetryConfig(
            enabled=True, jsonl_path=str(path)
        ).build()
        with telemetry.span("outer", user=1):
            with telemetry.span("inner"):
                pass
        telemetry.count("ts.decisions", decision="forwarded")
        telemetry.observe("latency_ms", 1.25)
        telemetry.close()

        events = list(read_jsonl(path))
        spans = [e for e in events if e["type"] == "span"]
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert spans[0]["parent"] == "outer"
        assert spans[1]["attributes"] == {"user": 1}

        snapshots = [e for e in events if e["type"] == "metrics_snapshot"]
        assert len(snapshots) == 1
        restored = MetricsSnapshot.from_dict(snapshots[0])
        assert (
            restored.counter_value("ts.decisions", decision="forwarded")
            == 1
        )
        summary = restored.histogram_summary("latency_ms")
        assert summary.count == 1
        assert summary.maximum == 1.25

    def test_append_only(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _round in range(2):
            sink = JsonlSink(path)
            sink.emit({"type": "span", "name": "x"})
            sink.close()
        assert len(list(read_jsonl(path))) == 2


class TestConsole:
    def test_routes_through_repro_logger(self, caplog):
        sink = ConsoleSink()
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            sink.emit(
                {
                    "type": "span",
                    "name": "ts.request",
                    "depth": 0,
                    "duration_ms": 1.5,
                    "attributes": {"decision": "forwarded"},
                }
            )
            sink.emit({"type": "metrics_snapshot", "counters": []})
        messages = [r.getMessage() for r in caplog.records]
        assert any("ts.request" in m for m in messages)
        assert any("metrics snapshot" in m for m in messages)
        assert all(r.name == "repro.obs" for r in caplog.records)

    def test_library_is_silent_by_default(self):
        """The package installs a NullHandler on the "repro" root."""
        logger = logging.getLogger("repro")
        assert any(
            isinstance(h, logging.NullHandler) for h in logger.handlers
        )
