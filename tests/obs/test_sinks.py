"""Ring buffer, JSONL round-trip, console logging routing."""

import logging

import pytest

from repro.obs.config import TelemetryConfig
from repro.obs.metrics import MetricsSnapshot
from repro.obs.sinks import (
    JSONL_READ_STATS,
    ConsoleSink,
    JsonlSink,
    RingBufferSink,
    read_jsonl,
    read_jsonl_rotated,
    rotated_paths,
)


class TestRingBuffer:
    def test_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        for i in range(10):
            sink.emit({"type": "span", "name": f"s{i}"})
        assert len(sink) == 3
        assert [e["name"] for e in sink.spans()] == ["s7", "s8", "s9"]

    def test_copies_events(self):
        sink = RingBufferSink()
        event = {"type": "span", "name": "a"}
        sink.emit(event)
        event["name"] = "mutated"
        assert sink.spans()[0]["name"] == "a"


class TestJsonl:
    def test_round_trip_spans_and_snapshot(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        telemetry = TelemetryConfig(
            enabled=True, jsonl_path=str(path)
        ).build()
        with telemetry.span("outer", user=1):
            with telemetry.span("inner"):
                pass
        telemetry.count("ts.decisions", decision="forwarded")
        telemetry.observe("latency_ms", 1.25)
        telemetry.close()

        events = list(read_jsonl(path))
        spans = [e for e in events if e["type"] == "span"]
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert spans[0]["parent"] == "outer"
        assert spans[1]["attributes"] == {"user": 1}

        snapshots = [e for e in events if e["type"] == "metrics_snapshot"]
        assert len(snapshots) == 1
        restored = MetricsSnapshot.from_dict(snapshots[0])
        assert (
            restored.counter_value("ts.decisions", decision="forwarded")
            == 1
        )
        summary = restored.histogram_summary("latency_ms")
        assert summary.count == 1
        assert summary.maximum == 1.25

    def test_append_only(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _round in range(2):
            sink = JsonlSink(path)
            sink.emit({"type": "span", "name": "x"})
            sink.close()
        assert len(list(read_jsonl(path))) == 2

    def test_flush_every_bounds_buffered_data(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=2)
        sink.emit({"type": "span", "name": "a"})
        # One event may still sit in the stdio buffer …
        assert len(list(read_jsonl(path))) <= 1
        sink.emit({"type": "span", "name": "b"})
        # … but the second write crossed the flush threshold.
        assert len(list(read_jsonl(path))) == 2
        sink.emit({"type": "span", "name": "c"})
        sink.emit({"type": "span", "name": "d"})
        assert len(list(read_jsonl(path))) == 4
        sink.close()

    def test_flush_every_zero_defers_to_explicit_flush(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=0)
        # Small events stay in the stdio buffer until flushed.
        sink.emit({"type": "span", "name": "a"})
        assert list(read_jsonl(path)) == []
        sink.flush()
        assert len(list(read_jsonl(path))) == 1
        sink.close()

    def test_rejects_negative_flush_every(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            JsonlSink(tmp_path / "t.jsonl", flush_every=-1)

    def test_config_passes_flush_every_through(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry = TelemetryConfig(
            enabled=True, jsonl_path=str(path), jsonl_flush_every=1
        ).build()
        telemetry.event("ping", n=1)
        assert [e["type"] for e in read_jsonl(path)] == ["ping"]
        telemetry.close()


class TestRotation:
    def test_rotates_at_max_bytes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, max_bytes=200)
        for i in range(50):
            sink.emit({"type": "span", "i": i})
        sink.close()
        segments = rotated_paths(path)
        assert len(segments) > 2
        assert segments[-1] == path
        # Rotated segments carry increasing numeric suffixes in write
        # order and each respects the size bound.
        for segment in segments[:-1]:
            assert int(segment.suffix[1:]) >= 1
            assert segment.stat().st_size >= 200
        assert sink.rotations == len(segments) - 1

    def test_read_rotated_preserves_order_and_count(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, max_bytes=150)
        n = 40
        for i in range(n):
            sink.emit({"i": i})
        sink.close()
        events = list(read_jsonl_rotated(path))
        assert [e["i"] for e in events] == list(range(n))

    def test_reopen_continues_suffix_sequence(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _round in range(2):
            sink = JsonlSink(path, max_bytes=100)
            for i in range(10):
                sink.emit({"i": i})
            sink.close()
        suffixes = [
            int(p.suffix[1:]) for p in rotated_paths(path)[:-1]
        ]
        assert suffixes == sorted(suffixes)
        assert len(set(suffixes)) == len(suffixes)
        assert [e["i"] for e in read_jsonl_rotated(path)] == (
            list(range(10)) * 2
        )

    def test_truncated_live_file_tolerated_across_rotation(
        self, tmp_path
    ):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, max_bytes=120)
        for i in range(20):
            sink.emit({"i": i})
        sink.close()
        # Simulate a writer dying mid-line on the live file only.
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"i": 99')
        events = list(read_jsonl_rotated(path))
        assert [e["i"] for e in events] == list(range(20))

    def test_zero_max_bytes_never_rotates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        for i in range(100):
            sink.emit({"i": i})
        sink.close()
        assert rotated_paths(path) == [path]
        assert sink.rotations == 0

    def test_rejects_negative_max_bytes(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            JsonlSink(tmp_path / "t.jsonl", max_bytes=-1)


class TestReadJsonlCorruption:
    def _write(self, path, lines):
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def test_truncated_final_line_skipped_with_warning(
        self, tmp_path, caplog
    ):
        path = tmp_path / "t.jsonl"
        self._write(path, ['{"type":"span"}', '{"type":"sp'])
        before = JSONL_READ_STATS.skipped
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            events = list(read_jsonl(path))
        assert events == [{"type": "span"}]
        assert JSONL_READ_STATS.skipped == before + 1
        assert any(
            "truncated final JSONL line" in r.getMessage()
            for r in caplog.records
        )

    def test_corrupt_interior_line_always_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(
            path, ['{"type":"span"}', "garbage", '{"type":"span"}']
        )
        with pytest.raises(ValueError, match="corrupt JSONL line"):
            list(read_jsonl(path))

    def test_strict_raises_on_truncated_final_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, ['{"type":"span"}', '{"bad'])
        with pytest.raises(ValueError):
            list(read_jsonl(path, strict=True))

    def test_clean_file_does_not_touch_stats(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, ['{"a":1}', "", '{"b":2}'])
        before = JSONL_READ_STATS.skipped
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": 2}]
        assert JSONL_READ_STATS.skipped == before


class TestTornTailSeal:
    """A crashed writer's torn tail must stay segment-final forever.

    The failure mode these pin: reopening a crash-truncated live file
    in append mode used to concatenate the next record onto the torn
    line, turning a tolerated segment-final truncation into an
    interior corrupt line that poisoned the whole stream.  WAL
    recovery (repro.serve.wal) depends on these guarantees.
    """

    def test_reopen_seals_torn_live_file_into_segment(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"i": 0})
        sink.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"i": 1')  # crash mid-emit, no newline
        reopened = JsonlSink(path)
        reopened.emit({"i": 2})
        reopened.close()
        # The torn file became its own rotated segment...
        assert (tmp_path / "t.jsonl.1").exists()
        assert reopened.rotations == 1
        # ...so the torn record is segment-final and every complete
        # record on either side of it survives a chained read.
        events = list(read_jsonl_rotated(path))
        assert [e["i"] for e in events] == [0, 2]

    def test_reopen_after_clean_close_does_not_rotate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"i": 0})
        sink.close()
        reopened = JsonlSink(path)
        reopened.emit({"i": 1})
        reopened.close()
        assert rotated_paths(path) == [path]
        assert [e["i"] for e in read_jsonl(path)] == [0, 1]

    def test_torn_seal_continues_existing_suffix_sequence(
        self, tmp_path
    ):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, max_bytes=40)
        for i in range(6):
            sink.emit({"i": i})
        sink.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"i": 99')
        reopened = JsonlSink(path, max_bytes=40)
        reopened.emit({"i": 100})
        reopened.close()
        suffixes = [
            int(p.suffix[1:]) for p in rotated_paths(path)[:-1]
        ]
        assert suffixes == sorted(suffixes)
        assert len(set(suffixes)) == len(suffixes)
        events = [e["i"] for e in read_jsonl_rotated(path)]
        assert events == [0, 1, 2, 3, 4, 5, 100]

    def test_truncated_record_in_rotated_segment_tolerated(
        self, tmp_path
    ):
        # Any segment — not just the live file — may end torn (a
        # sealed pre-crash live file does); reads must tolerate it.
        path = tmp_path / "t.jsonl"
        (tmp_path / "t.jsonl.1").write_text(
            '{"i": 0}\n{"i": 1', encoding="utf-8"
        )
        path.write_text('{"i": 2}\n', encoding="utf-8")
        assert [e["i"] for e in read_jsonl_rotated(path)] == [0, 2]

    def test_torn_tail_followed_by_blank_lines_tolerated(
        self, tmp_path
    ):
        path = tmp_path / "t.jsonl"
        path.write_text('{"i": 0}\n{"i": 1\n\n \n', encoding="utf-8")
        assert [e["i"] for e in read_jsonl(path)] == [0]

    def test_empty_live_file_not_sealed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.touch()
        sink = JsonlSink(path)
        sink.emit({"i": 0})
        sink.close()
        assert rotated_paths(path) == [path]


class TestConsole:
    def test_routes_through_repro_logger(self, caplog):
        sink = ConsoleSink()
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            sink.emit(
                {
                    "type": "span",
                    "name": "ts.request",
                    "depth": 0,
                    "duration_ms": 1.5,
                    "attributes": {"decision": "forwarded"},
                }
            )
            sink.emit({"type": "metrics_snapshot", "counters": []})
        messages = [r.getMessage() for r in caplog.records]
        assert any("ts.request" in m for m in messages)
        assert any("metrics snapshot" in m for m in messages)
        assert all(r.name == "repro.obs" for r in caplog.records)

    def test_slo_alerts_log_as_warnings(self, caplog):
        sink = ConsoleSink()
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            sink.emit(
                {
                    "type": "slo_alert",
                    "rule": "k_attainment >= 0.95",
                    "state": "breach",
                    "value": 0.8,
                    "threshold": 0.95,
                    "t": 3600.0,
                }
            )
        [record] = caplog.records
        assert record.levelno == logging.WARNING
        assert "k_attainment >= 0.95" in record.getMessage()

    def test_library_is_silent_by_default(self):
        """The package installs a NullHandler on the "repro" root."""
        logger = logging.getLogger("repro")
        assert any(
            isinstance(h, logging.NullHandler) for h in logger.handlers
        )
