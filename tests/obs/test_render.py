"""Fixed-width snapshot rendering: gauges and cross-section alignment."""

from repro.obs.config import TelemetryConfig
from repro.obs.render import render_summary


def snapshot_with_all_kinds():
    telemetry = TelemetryConfig(enabled=True).build()
    telemetry.count("ts.requests", 42)
    telemetry.gauge("slo.k_attainment", 0.9875)
    telemetry.gauge("sim.users", 140)
    telemetry.observe("store.query_ms", 1.5, query="nearest_users")
    return telemetry.snapshot()


class TestRenderSummary:
    def test_gauges_rendered_in_their_own_section(self):
        text = render_summary(snapshot_with_all_kinds())
        assert "gauges" in text
        lines = text.splitlines()
        gauge_start = lines.index("gauges")
        section = lines[gauge_start:lines.index("histograms")]
        assert any("slo.k_attainment" in line for line in section)
        assert any("sim.users" in line for line in section)
        # Float gauges keep precision, integral ones render as ints.
        assert "0.988" in text
        joined = "\n".join(section)
        assert "140" in joined

    def test_label_columns_align_across_sections(self):
        text = render_summary(snapshot_with_all_kinds())
        prefixes = ("ts.", "slo.", "sim.", "store.")
        rows = [
            line
            for line in text.splitlines()
            if line.startswith(prefixes)
        ]
        names = [row.split()[0] for row in rows]
        assert len(rows) == 4  # one counter, two gauges, one histogram
        name_width = max(len(name) for name in names)
        for row, name in zip(rows, names):
            # Every section pads the label column to the one shared
            # width, so the data starts at the same column everywhere.
            assert row[:name_width].rstrip() == name
            assert row[name_width:name_width + 2] == "  "

    def test_empty_snapshot_renders_placeholder(self):
        telemetry = TelemetryConfig(enabled=True).build()
        text = render_summary(telemetry.snapshot())
        assert "(no metrics recorded)" in text

    def test_counters_only_snapshot_has_no_gauge_section(self):
        telemetry = TelemetryConfig(enabled=True).build()
        telemetry.count("ts.requests")
        text = render_summary(telemetry.snapshot())
        assert "counters" in text
        assert "gauges" not in text
