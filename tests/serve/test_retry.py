"""Bounded exponential-backoff retry of load-shed operations."""

from __future__ import annotations

import asyncio

from repro.engine.pipeline import BatchItem
from repro.serve.client import ServeClient
from repro.serve.loadgen import (
    LoadReport,
    _Connection,
    _retry_shed,
    build_engine,
)
from repro.serve.protocol import (
    DecisionReply,
    ErrorReply,
    UpdateAck,
)
from repro.serve.server import ServeConfig, TrustedServer
from repro.serve.transports import LoopbackTransport

from tests.serve.test_server import request_frames


class _DrainOnlyWriter:
    async def drain(self) -> None:
        return None


def scripted_client() -> ServeClient:
    """A ServeClient shell exposing only the retry loop under test."""
    client = ServeClient.__new__(ServeClient)
    client._writer = _DrainOnlyWriter()
    # The retry loop snapshots the connection generation and, on
    # transport loss, consults the reconnect budget; mirror a client
    # constructed without one (reconnect=0).
    client._generation = 0
    client._connect_args = None
    return client


def shed(retry_after: float) -> ErrorReply:
    return ErrorReply(
        id=1, code="overloaded", message="shed", retry_after=retry_after
    )


def run_retry(replies, retries, base=0.05, cap=5.0):
    """Drive _send_with_retry over a scripted reply sequence."""
    client = scripted_client()
    sends = 0
    sleeps: list[float] = []

    async def run():
        nonlocal sends
        loop = asyncio.get_running_loop()

        def send():
            nonlocal sends
            future = loop.create_future()
            future.set_result(replies[sends])
            sends += 1
            return future

        real_sleep = asyncio.sleep

        async def fake_sleep(delay):
            sleeps.append(delay)
            await real_sleep(0)

        asyncio.sleep = fake_sleep
        try:
            return await client._send_with_retry(send, retries, base, cap)
        finally:
            asyncio.sleep = real_sleep

    return asyncio.run(run()), sends, sleeps


def test_retry_sheds_then_succeeds():
    ok = UpdateAck(id=1)
    reply, sends, sleeps = run_retry([shed(0.02), shed(0.0), ok], 3)
    assert reply is ok
    assert sends == 3
    # attempt 0: max(hint=0.02, 0.05·2^0) = 0.05
    # attempt 1: max(hint=0.0,  0.05·2^1) = 0.10
    assert sleeps == [0.05, 0.1]


def test_retry_honors_larger_retry_after_hint():
    ok = UpdateAck(id=1)
    reply, _sends, sleeps = run_retry([shed(0.75), ok], 1)
    assert reply is ok
    assert sleeps == [0.75]


def test_retry_backoff_is_capped():
    ok = UpdateAck(id=1)
    _reply, _sends, sleeps = run_retry([shed(100.0), ok], 2, cap=0.2)
    assert sleeps == [0.2]


def test_retries_exhausted_returns_last_shed():
    last = shed(0.01)
    reply, sends, sleeps = run_retry([shed(0.01), shed(0.01), last], 2)
    assert reply is last
    assert sends == 3 and len(sleeps) == 2


def test_zero_retries_returns_shed_immediately():
    first = shed(0.5)
    reply, sends, sleeps = run_retry([first], 0)
    assert reply is first
    assert sends == 1 and sleeps == []


def test_non_shed_errors_are_never_retried():
    draining = ErrorReply(id=1, code="draining", message="no")
    reply, sends, _sleeps = run_retry([draining, UpdateAck(id=1)], 3)
    assert reply is draining
    assert sends == 1


def test_loadgen_retry_recovers_real_shed(workload, workload_config):
    """A genuinely shed request succeeds on loadgen's retry pass.

    Determinism: with the dispatcher not yet started, a depth-1 queue
    admits exactly one request and sheds the next; starting the server
    drains the queue, so the retry is admitted.
    """
    engine = build_engine(workload, workload_config)

    async def run():
        server = TrustedServer(engine, ServeConfig(max_queue_depth=1))
        conn = _Connection(LoopbackTransport(server).connect(), 0)
        first, second = request_frames(workload, 2)
        items = [
            BatchItem(
                user_id=f.user_id,
                location=type(
                    workload.timeline[0].location
                )(f.x, f.y, f.t),
                service=f.service,
            )
            for f in (first, second)
        ]
        f1 = conn.post(first)
        f2 = conn.post(second)
        for _ in range(10):  # let both submits reach admission
            await asyncio.sleep(0)
        assert f2.done()
        shed_reply = f2.result()
        assert isinstance(shed_reply, ErrorReply) and shed_reply.is_shed
        assert shed_reply.retry_after is not None
        await server.start()  # the queue drains; f1 resolves
        replies = [await f1, shed_reply]
        report = LoadReport()
        await _retry_shed(
            [(items[0], conn), (items[1], conn)],
            replies,
            retries=2,
            report=report,
            backoff_base_s=0.0,
        )
        await server.close()
        return replies, report

    replies, report = asyncio.run(run())
    assert isinstance(replies[0], DecisionReply)
    assert isinstance(replies[1], DecisionReply)  # recovered
    assert report.retried == 1
    assert report.recovered == 1
