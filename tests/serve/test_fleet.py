"""Live fleet scraping: two daemons, one merged view."""

from __future__ import annotations

import asyncio
import dataclasses

from repro.serve.fleet import collect_fleet, parse_target, scrape_worker
from repro.serve.transports import TcpTransport

import pytest

from tests.serve.test_introspection import load_obstop, telemetry_server
from tests.serve.test_server import request_frames


class TestParseTarget:
    def test_accepts_host_port(self):
        assert parse_target("127.0.0.1:7411") == ("127.0.0.1", 7411)
        assert parse_target("[::1]:7411") == ("[::1]", 7411)

    def test_rejects_malformed(self):
        for bad in ("nakedhost", ":7411", "host:", "host:nan"):
            with pytest.raises(ValueError):
                parse_target(bad)


async def _start_worker(workload, workload_config):
    server = telemetry_server(workload, workload_config)
    await server.start()
    transport = TcpTransport(server)
    host, port = await transport.start()
    return server, transport, f"{host}:{port}"


async def _drive(target, workload, n, trace=None, telemetry=None):
    """Send n service requests to one worker over TCP."""
    from repro.serve.client import ServeClient

    host, port = parse_target(target)
    client = await ServeClient.connect(
        host,
        port,
        client="fleet-driver",
        trace=trace is not None,
        telemetry=telemetry,
    )
    try:
        for frame in request_frames(workload, n):
            if trace is not None:
                frame = dataclasses.replace(frame, trace=trace)
            await client._roundtrip(frame)
    finally:
        await client.close()


class TestCollectFleet:
    def test_two_workers_merge_into_one_view(
        self, workload, workload_config
    ):
        obstop = load_obstop()
        shared_trace = "ab" * 8 + "-" + "cd" * 8  # 16-hex ids

        async def run():
            a_server, a_tcp, a_target = await _start_worker(
                workload, workload_config
            )
            b_server, b_tcp, b_target = await _start_worker(
                workload, workload_config
            )
            try:
                await _drive(a_target, workload, 5)
                await _drive(b_target, workload, 3)
                # The same wire trace hits both workers (a fan-out).
                await _drive(
                    a_target,
                    workload,
                    1,
                    trace=shared_trace,
                    telemetry=a_server.telemetry,
                )
                await _drive(
                    b_target,
                    workload,
                    1,
                    trace=shared_trace,
                    telemetry=b_server.telemetry,
                )
                view = await collect_fleet([a_target, b_target])
            finally:
                await a_tcp.stop()
                await b_tcp.stop()
                await a_server.close()
                await b_server.close()
            return view, a_target, b_target

        view, a_target, b_target = asyncio.run(run())
        assert view.workers == tuple(sorted((a_target, b_target)))
        assert view.errors == {}
        assert view.healthy
        # Counters sum across the fleet: 6 + 4 requests served.
        assert view.samples[
            ("serve_served_total", (("kind", "request"),))
        ] == 10.0
        # Gauges keep per-worker identity under the worker label.
        for target in (a_target, b_target):
            key = (
                "serve_queue_depth",
                (("worker", target),),
            )
            assert key in view.samples
        # The merged samples still drive the stage-latency table.
        rows = obstop.stage_latencies(view.samples)
        assert any(stage == "audit" for stage, _a, _b, _c in rows)
        # The shared trace collapses into one fleet entry naming both
        # workers; single-worker traces name one.
        by_id = {t.trace_id: t for t in view.traces}
        fanout = by_id["ab" * 8]
        assert fanout.workers == tuple(sorted((a_target, b_target)))
        assert fanout.total_ms > 0.0
        singles = [
            t for t in view.traces if t.trace_id != "ab" * 8
        ]
        assert all(len(t.workers) == 1 for t in singles)

    def test_unreachable_target_degrades_not_fails(
        self, workload, workload_config
    ):
        async def run():
            server, tcp, target = await _start_worker(
                workload, workload_config
            )
            try:
                await _drive(target, workload, 2)
                view = await collect_fleet([target, "127.0.0.1:9"])
            finally:
                await tcp.stop()
                await server.close()
            return view, target

        view, target = asyncio.run(run())
        assert view.workers == (target,)
        assert "127.0.0.1:9" in view.errors
        assert not view.healthy
        # The reachable worker's data still came through.
        assert view.samples[
            ("serve_served_total", (("kind", "request"),))
        ] == 2.0


class TestScrapeWorker:
    def test_scrape_names_and_health(self, workload, workload_config):
        async def run():
            server, tcp, target = await _start_worker(
                workload, workload_config
            )
            host, port = parse_target(target)
            try:
                scrape = await scrape_worker(
                    host, port, worker="shard-0"
                )
            finally:
                await tcp.stop()
                await server.close()
            return scrape

        scrape = asyncio.run(run())
        assert scrape.worker == "shard-0"
        assert scrape.health is not None
        assert scrape.health["status"] == "ok"
        assert scrape.health["slo_ok"] is True
        assert scrape.samples  # telemetry enabled: exposition parsed

    def test_scrape_without_telemetry_degrades(self, engine):
        from repro.serve.server import TrustedServer

        async def run():
            server = TrustedServer(engine)  # telemetry disabled
            await server.start()
            tcp = TcpTransport(server)
            host, port = await tcp.start()
            try:
                scrape = await scrape_worker(host, port)
            finally:
                await tcp.stop()
                await server.close()
            return scrape

        scrape = asyncio.run(run())
        assert scrape.health is not None  # health always answers
        assert scrape.samples == {}  # metrics degraded to empty
        assert scrape.traces == []
