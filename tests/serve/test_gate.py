"""ConnectionGate and token-bucket tests (unit + properties).

The hypothesis properties pin the three bucket invariants the
rate-limit contract rests on:

* **never over rate** — over any interval, a bucket admits at most
  ``capacity + rate · elapsed`` operations, no matter how the acquire
  timestamps interleave;
* **monotonic refill** — time running backwards (clock skew between
  callers) never changes the token level, and the level never exceeds
  capacity;
* **sufficient retry_after** — waiting exactly the hinted
  ``retry_after`` after a rejection always readmits.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.gate import (
    ConnectionGate,
    GateConfig,
    TokenBucket,
    _reject_constant_time,
    load_tokens,
)
from repro.serve.protocol import ErrorReply, Hello

rates = st.floats(min_value=0.1, max_value=1000.0)
capacities = st.floats(min_value=1.0, max_value=100.0)
#: Non-negative inter-arrival gaps (seconds), small enough that the
#: admitted-count bound stays far from float trouble.
gaps = st.lists(
    st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=60
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------
# token-bucket properties
# ---------------------------------------------------------------------


@settings(max_examples=200)
@given(rate=rates, capacity=capacities, deltas=gaps)
def test_bucket_never_exceeds_rate(rate, capacity, deltas):
    """Admissions over any window stay <= capacity + rate·elapsed."""
    bucket = TokenBucket(rate, capacity, now=0.0)
    now, admitted = 0.0, 0
    for delta in deltas:
        now += delta
        if bucket.acquire(now) == 0.0:
            admitted += 1
    # The 1e-6 absorbs float accumulation in the refill arithmetic.
    assert admitted <= capacity + rate * now + 1e-6


@settings(max_examples=200)
@given(rate=rates, capacity=capacities, deltas=gaps)
def test_bucket_refill_monotonic(rate, capacity, deltas):
    """Backwards time never adds tokens; level never tops capacity."""
    bucket = TokenBucket(rate, capacity, now=50.0)
    bucket.acquire(50.0)  # spend one so refill has room to move
    now = 50.0
    for delta in deltas:
        before = bucket.tokens
        # Walk time alternately forward and backward; the backward
        # step must be a no-op on the level.
        level = bucket.refill(now - delta)
        assert level == before
        now += delta
        level = bucket.refill(now)
        assert level >= before
        assert level <= capacity + 1e-9


@settings(max_examples=200)
@given(
    rate=rates,
    capacity=capacities,
    spends=st.integers(min_value=1, max_value=120),
)
def test_bucket_retry_after_sufficient(rate, capacity, spends):
    """Waiting exactly the hint always readmits."""
    bucket = TokenBucket(rate, capacity, now=0.0)
    now = 0.0
    retry_after = 0.0
    for _ in range(spends):
        retry_after = bucket.acquire(now)
        if retry_after > 0.0:
            break
    if retry_after == 0.0:
        # Capacity outlasted the spend loop; drain it dry first.
        while (retry_after := bucket.acquire(now)) == 0.0:
            pass
    assert retry_after > 0.0
    assert bucket.acquire(now + retry_after) == 0.0


# ---------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------


def test_gate_config_validation():
    with pytest.raises(ValueError):
        GateConfig(rate_limit=0.0)
    with pytest.raises(ValueError):
        GateConfig(rate_limit=10.0, burst=0.5)
    with pytest.raises(ValueError):
        GateConfig(max_connections=0)
    with pytest.raises(ValueError):
        GateConfig(max_principals=0)
    with pytest.raises(ValueError):
        TokenBucket(0.0, 1.0, now=0.0)
    with pytest.raises(ValueError):
        TokenBucket(1.0, 0.0, now=0.0)


def test_effective_burst_defaults_to_one_second_of_rate():
    assert GateConfig(rate_limit=50.0).effective_burst == 50.0
    assert GateConfig(rate_limit=0.5).effective_burst == 1.0
    assert GateConfig(rate_limit=10.0, burst=3.0).effective_burst == 3.0


# ---------------------------------------------------------------------
# connection admission
# ---------------------------------------------------------------------


def test_bad_token_rejected_with_typed_reply():
    gate = ConnectionGate(GateConfig(tokens=("good",)))
    verdict = gate.admit_connection(Hello(token="bad"))
    assert isinstance(verdict, ErrorReply)
    assert verdict.code == "bad_token"
    none = gate.admit_connection(Hello())  # missing token
    assert isinstance(none, ErrorReply) and none.code == "bad_token"
    assert gate.rejected == {"bad_token": 2}
    assert gate.admitted_connections == 0
    assert gate.connections == 0


def test_empty_token_tuple_rejects_everyone():
    gate = ConnectionGate(GateConfig(tokens=()))
    verdict = gate.admit_connection(Hello(token="anything"))
    assert isinstance(verdict, ErrorReply)
    assert verdict.code == "bad_token"


def test_connection_cap_and_idempotent_release():
    gate = ConnectionGate(GateConfig(max_connections=2))
    first = gate.admit_connection(Hello(client="a"))
    second = gate.admit_connection(Hello(client="b"))
    assert not isinstance(first, ErrorReply)
    assert not isinstance(second, ErrorReply)
    third = gate.admit_connection(Hello(client="c"))
    assert isinstance(third, ErrorReply)
    assert third.code == "connection_limit"
    assert third.retry_after == 1.0
    gate.release(first)
    gate.release(first)  # double release must not free a second slot
    gate.release(None)  # and None is harmless
    assert gate.connections == 1
    fourth = gate.admit_connection(Hello(client="d"))
    assert not isinstance(fourth, ErrorReply)
    assert gate.admitted_connections == 3
    assert gate.rejected == {"connection_limit": 1}


def test_bad_token_checked_before_connection_cap():
    """An attacker without a credential cannot probe fleet occupancy."""
    gate = ConnectionGate(
        GateConfig(tokens=("good",), max_connections=1)
    )
    ticket = gate.admit_connection(Hello(token="good"))
    assert not isinstance(ticket, ErrorReply)
    # Cap is full, but the wrong token must dominate the verdict.
    verdict = gate.admit_connection(Hello(token="bad"))
    assert isinstance(verdict, ErrorReply)
    assert verdict.code == "bad_token"


def test_principal_is_token_when_auth_is_on():
    clock = FakeClock()
    gate = ConnectionGate(
        GateConfig(tokens=("t1",), rate_limit=10.0, burst=1.0),
        clock=clock,
    )
    one = gate.admit_connection(Hello(client="a", token="t1"))
    two = gate.admit_connection(Hello(client="b", token="t1"))
    # Same token, different client names: one shared bucket — clients
    # cannot multiply their budget by renaming themselves.
    assert one.principal == two.principal == "t1"
    assert one.bucket is two.bucket
    assert gate.admit_op(one, 1) is None
    limited = gate.admit_op(two, 2)
    assert isinstance(limited, ErrorReply)
    assert limited.code == "rate_limited"
    assert limited.id == 2
    assert limited.retry_after is not None
    assert limited.retry_after > 0.0


def test_rate_limit_recovers_after_retry_after():
    clock = FakeClock()
    gate = ConnectionGate(
        GateConfig(rate_limit=2.0, burst=1.0), clock=clock
    )
    ticket = gate.admit_connection(Hello(client="c"))
    assert gate.admit_op(ticket, 1) is None
    limited = gate.admit_op(ticket, 2)
    assert isinstance(limited, ErrorReply)
    clock.now += limited.retry_after
    assert gate.admit_op(ticket, 3) is None
    assert gate.admitted_ops == 2
    assert gate.rejected == {"rate_limited": 1}


def test_unlimited_gate_admits_everything():
    gate = ConnectionGate(GateConfig())
    ticket = gate.admit_connection(Hello(client="free"))
    assert ticket.bucket is None
    for index in range(100):
        assert gate.admit_op(ticket, index) is None
    assert gate.admitted_ops == 100
    assert gate.rejected == {}


def test_principal_table_drops_oldest_beyond_bound():
    clock = FakeClock()
    gate = ConnectionGate(
        GateConfig(rate_limit=1.0, max_principals=2), clock=clock
    )
    a = gate.admit_connection(Hello(client="a"))
    gate.admit_connection(Hello(client="b"))
    gate.admit_connection(Hello(client="c"))  # evicts "a"
    assert set(gate._buckets) == {"b", "c"}
    # "a" reappearing builds a fresh (full) bucket — eviction costs
    # the gate a little generosity, never correctness.
    again = gate.admit_connection(Hello(client="a"))
    assert again.bucket is not a.bucket
    assert set(gate._buckets) == {"c", "a"}


# ---------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------


def test_reject_constant_time_scans_every_token():
    assert _reject_constant_time(None, ("a", "b"))
    assert _reject_constant_time("", ("a", "b"))
    assert _reject_constant_time("c", ("a", "b"))
    assert not _reject_constant_time("a", ("a", "b"))
    assert not _reject_constant_time("b", ("a", "b"))
    assert _reject_constant_time("anything", ())


def test_load_tokens_merges_flags_and_file(tmp_path):
    token_file = tmp_path / "tokens.txt"
    token_file.write_text(
        "# fleet credentials\nfile-one\n\n  file-two  \n"
    )
    assert load_tokens(["flag-one"], str(token_file)) == (
        "flag-one",
        "file-one",
        "file-two",
    )
    assert load_tokens(["a", ""], None) == ("a",)
    assert load_tokens(None, None) is None


def test_load_tokens_empty_sources_mean_auth_off(tmp_path):
    empty = tmp_path / "empty.txt"
    empty.write_text("# only comments\n\n")
    assert load_tokens([], str(empty)) is None
    assert load_tokens() is None
