"""Property-based tests of the wire codec.

Two invariants a long-running daemon lives or dies by:

* **round-trip identity** — every encodable frame decodes back to an
  equal frame (the wire loses nothing);
* **total strictness** — whatever bytes arrive (random garbage,
  truncated frames, shape-shifted JSON), the decoder either returns a
  frame or raises :class:`ProtocolError`.  No other exception type may
  escape, because the connection handlers turn exactly that type into
  an error reply and anything else would take the daemon down.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.protocol import (
    DecisionReply,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Frame,
    Hello,
    LocationUpdate,
    ProtocolError,
    ServiceRequest,
    StatsReply,
    StatsRequest,
    UpdateAck,
    Welcome,
    decode_reply,
    decode_request,
    encode_frame,
)

ids = st.integers(min_value=0, max_value=2**53)
counts = st.integers(min_value=0, max_value=2**32)
finite = st.floats(allow_nan=False, allow_infinity=False)
texts = st.text(max_size=40)
boxes = st.tuples(finite, finite, finite, finite, finite, finite)

request_frames = st.one_of(
    st.builds(Hello, version=st.integers(0, 1000), client=texts),
    st.builds(
        LocationUpdate, id=ids, user_id=ids, x=finite, y=finite, t=finite
    ),
    st.builds(
        ServiceRequest,
        id=ids,
        user_id=ids,
        x=finite,
        y=finite,
        t=finite,
        service=texts,
    ),
    st.builds(StatsRequest, id=ids),
    st.builds(DrainRequest, id=ids),
)

reply_frames = st.one_of(
    st.builds(
        Welcome,
        version=st.integers(0, 1000),
        server=texts,
        session=texts,
        max_inflight=counts,
        max_queue_depth=counts,
    ),
    st.builds(UpdateAck, id=ids),
    st.builds(
        DecisionReply,
        id=ids,
        msgid=ids,
        pseudonym=texts,
        decision=texts,
        forwarded=st.booleans(),
        context=st.none() | boxes,
        lbqid=st.none() | texts,
        step=st.none() | counts,
        required_k=st.none() | counts,
        rotated=st.booleans(),
    ),
    st.builds(
        ErrorReply,
        id=st.none() | ids,
        code=texts,
        message=texts,
        retry_after=st.none()
        | st.floats(
            min_value=0.0, allow_nan=False, allow_infinity=False
        ),
    ),
    st.builds(
        StatsReply,
        id=ids,
        accepted=counts,
        served=counts,
        shed=counts,
        rejected=counts,
        protocol_errors=counts,
        queue_depth=counts,
        sessions=counts,
    ),
    st.builds(
        DrainReply,
        id=ids,
        served=counts,
        shed=counts,
        rejected=counts,
        pending=counts,
    ),
)


@given(request_frames)
def test_request_round_trip_identity(frame: Frame):
    assert decode_request(encode_frame(frame)) == frame


@given(reply_frames)
def test_reply_round_trip_identity(frame: Frame):
    assert decode_reply(encode_frame(frame)) == frame


@given(request_frames | reply_frames, st.data())
def test_truncated_frames_raise_protocol_error(frame: Frame, data):
    """Any cut into the JSON body must fail loudly, never misparse."""
    line = encode_frame(frame)
    # Cutting only the trailing newline still leaves a complete JSON
    # document, so truncate strictly inside the body.
    cut = data.draw(st.integers(min_value=0, max_value=len(line) - 2))
    with pytest.raises(ProtocolError):
        decode_request(line[:cut])
    with pytest.raises(ProtocolError):
        decode_reply(line[:cut])


@settings(max_examples=300)
@given(st.binary(max_size=200))
def test_garbage_bytes_never_escape_protocol_error(blob: bytes):
    for decode in (decode_request, decode_reply):
        try:
            result = decode(blob + b"\n")
        except ProtocolError:
            continue
        assert isinstance(result, Frame)


json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | finite
    | texts,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(texts, children, max_size=4),
    max_leaves=10,
)


@settings(max_examples=300)
@given(
    st.dictionaries(texts, json_values, max_size=6),
    st.none() | st.sampled_from(["hello", "update", "request", "stats"]),
)
def test_shapeshifted_json_never_escapes_protocol_error(payload, op):
    """Valid JSON with arbitrary shape: decode or ProtocolError."""
    if op is not None:
        payload = {**payload, "op": op}
    line = json.dumps(payload).encode("utf-8") + b"\n"
    try:
        result = decode_request(line)
    except ProtocolError:
        return
    assert isinstance(result, Frame)
