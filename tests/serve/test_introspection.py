"""The live introspection surface: metrics, health, traces, obstop."""

from __future__ import annotations

import asyncio
import importlib.util
import json
from pathlib import Path

from repro.obs.config import TelemetryConfig
from repro.obs.export import parse_prometheus
from repro.serve.client import ServeClient
from repro.serve.loadgen import build_engine
from repro.serve.protocol import (
    ErrorReply,
    HealthReply,
    HealthRequest,
    MetricsReply,
    MetricsRequest,
    TracesReply,
    TracesRequest,
)
from repro.serve.server import ServeConfig, TrustedServer
from repro.serve.transports import LoopbackTransport, TcpTransport

from tests.serve.test_server import request_frames, update_frame

_OBSTOP_PATH = (
    Path(__file__).resolve().parents[2] / "tools" / "obstop.py"
)


def load_obstop():
    spec = importlib.util.spec_from_file_location("obstop", _OBSTOP_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def telemetry_server(workload, workload_config, **serve_kwargs):
    engine = build_engine(
        workload, workload_config, TelemetryConfig(enabled=True)
    )
    return TrustedServer(engine, ServeConfig(**serve_kwargs))


def test_metrics_op_returns_valid_exposition(workload, workload_config):
    """Acceptance: the ``metrics`` reply parses as Prometheus text."""
    server = telemetry_server(workload, workload_config)

    async def run():
        await server.start()
        conn = LoopbackTransport(server).connect()
        for frame in request_frames(workload, 3):
            await conn.send(frame)
        await conn.send(update_frame(workload, frame_id=99))
        reply = await conn.send(MetricsRequest(id=50))
        await server.close()
        return reply

    reply = asyncio.run(run())
    assert isinstance(reply, MetricsReply)
    assert reply.format == "prometheus"
    samples = parse_prometheus(reply.body)  # strict: raises on damage
    assert samples[
        ("serve_served_total", (("kind", "request"),))
    ] == 3.0
    assert samples[("serve_served_total", (("kind", "update"),))] == 1.0
    assert ("serve_request_ms_count", ()) in samples
    assert ("engine_stage_ms_count", (("stage", "audit"),)) in samples
    # Histogram buckets close with +Inf, as the format requires.
    assert ("serve_request_ms_bucket", (("le", "+Inf"),)) in samples


def test_metrics_op_rejects_unknown_format_and_no_telemetry(
    workload, workload_config, engine
):
    server = telemetry_server(workload, workload_config)
    bare = TrustedServer(engine)  # no telemetry

    async def run():
        await server.start()
        await bare.start()
        conn = LoopbackTransport(server).connect()
        bad_format = await conn.send(
            MetricsRequest(id=1, format="protobuf")
        )
        bare_conn = LoopbackTransport(bare).connect()
        disabled = await bare_conn.send(MetricsRequest(id=2))
        await server.close()
        await bare.close()
        return bad_format, disabled

    bad_format, disabled = asyncio.run(run())
    assert isinstance(bad_format, ErrorReply)
    assert bad_format.code == "bad_field"
    assert isinstance(disabled, ErrorReply)
    assert disabled.code == "no_telemetry"


def test_health_op_reports_lifecycle(workload, workload_config):
    server = telemetry_server(workload, workload_config)

    async def run():
        await server.start()
        conn = LoopbackTransport(server).connect()
        (frame,) = request_frames(workload, 1)
        await conn.send(frame)
        healthy = await conn.send(HealthRequest(id=1))
        await server.drain()
        draining = await conn.send(HealthRequest(id=2))
        await server.close()
        return healthy, draining

    healthy, draining = asyncio.run(run())
    assert isinstance(healthy, HealthReply)
    assert healthy.status == "ok"
    assert healthy.uptime_s >= 0.0
    assert healthy.served == 1
    assert healthy.slo_ok is True and healthy.breaches == 0
    assert draining.status == "draining"


def test_traces_op_lists_recent_traced_requests(
    workload, workload_config
):
    server = telemetry_server(workload, workload_config)

    async def run():
        await server.start()
        conn = LoopbackTransport(server).connect(trace=True)
        for frame in request_frames(workload, 5):
            await conn.send(frame)
        full = await conn.send(TracesRequest(id=1, limit=20))
        limited = await conn.send(TracesRequest(id=2, limit=2))
        await server.close()
        return full, limited

    full, limited = asyncio.run(run())
    assert isinstance(full, TracesReply)
    entries = json.loads(full.body)
    assert len(entries) == 5
    for entry in entries:
        assert set(entry) == {
            "trace_id", "op", "decision", "queue_ms", "total_ms", "shed",
        }
        assert len(entry["trace_id"]) == 16
        assert entry["op"] == "request"
        assert entry["shed"] is False
        assert entry["total_ms"] >= entry["queue_ms"] >= 0.0
    # Most recent first, and the limit clamps.
    assert json.loads(limited.body) == entries[:2]


def test_obstop_collect_and_render_over_tcp(workload, workload_config):
    obstop = load_obstop()
    server = telemetry_server(workload, workload_config)

    async def run():
        await server.start()
        transport = TcpTransport(server)
        host, port = await transport.start()
        client = await ServeClient.connect(
            host,
            port,
            client="obstop-test",
            telemetry=server.telemetry,
            trace=True,
        )
        for frame in request_frames(workload, 4):
            await client.request(
                frame.user_id, frame.x, frame.y, frame.t, frame.service
            )
        snap = await obstop.collect(client, trace_limit=8)
        await client.close()
        await transport.stop()
        await server.close()
        return snap

    snap = asyncio.run(run())
    assert snap["status"] == "ok"
    assert snap["served"] == 4
    assert snap["traces"] and len(snap["traces"]) <= 8
    rows = obstop.stage_latencies(snap["samples"])
    stages = [stage for stage, _p50, _p99, _count in rows]
    assert "audit" in stages
    assert stages == sorted(
        stages, key=lambda s: obstop.STAGE_ORDER.index(s)
    )
    for _stage, p50, p99, count in rows:
        assert count >= 1
        assert 0.0 <= p50 <= p99
    lines = obstop.render_dashboard(snap, host="127.0.0.1", port=1)
    text = "\n".join(lines)
    assert "status ok" in text
    assert "served 4" in text
    assert "slo ok" in text
    assert "slowest recent traces:" in text
    assert all(len(line) <= 100 for line in lines)
    # A second poll computes a delta-based rate without error.
    lines2 = obstop.render_dashboard(
        dict(snap, t=snap["t"] + 1.0, served=snap["served"] + 10),
        prev=snap,
    )
    assert any("req/s" in line for line in lines2)
