"""Unit tests of the serving core: admission, shedding, drain, SLOs."""

from __future__ import annotations

import asyncio

import pytest

from repro.engine.context import Decision
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    DecisionReply,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Hello,
    LocationUpdate,
    ServiceRequest,
    StatsReply,
    StatsRequest,
    UpdateAck,
    Welcome,
)
from repro.serve.server import ServeConfig, TrustedServer


def request_frames(workload, count, start_id=1):
    """The first ``count`` service requests of the timeline, as frames."""
    frames = []
    for item in workload.timeline:
        if not item.is_request:
            continue
        frames.append(
            ServiceRequest(
                id=start_id + len(frames),
                user_id=item.user_id,
                x=item.location.x,
                y=item.location.y,
                t=item.location.t,
                service=item.service,
            )
        )
        if len(frames) == count:
            break
    return frames


def update_frame(workload, frame_id=1):
    item = next(i for i in workload.timeline if not i.is_request)
    return LocationUpdate(
        id=frame_id,
        user_id=item.user_id,
        x=item.location.x,
        y=item.location.y,
        t=item.location.t,
    )


def test_serve_config_validation():
    with pytest.raises(ValueError):
        ServeConfig(max_queue_depth=0)
    with pytest.raises(ValueError):
        ServeConfig(max_inflight=0)


def test_welcome_and_version_check(engine):
    async def run():
        server = TrustedServer(engine)
        session = server.open_session("t")
        good = server.welcome(session, Hello(client="good-client"))
        assert isinstance(good, Welcome)
        assert good.version == PROTOCOL_VERSION
        assert good.session == session.session_id
        assert good.max_inflight == server.config.max_inflight
        assert session.client == "good-client"
        bad = server.welcome(session, Hello(version=99))
        assert isinstance(bad, ErrorReply)
        assert bad.code == "bad_version"

    asyncio.run(run())


def test_update_and_request_round_trip(engine, workload):
    async def run():
        server = await TrustedServer(engine).start()
        session = server.open_session("t")
        ack = await server.submit(session, update_frame(workload))
        assert ack == UpdateAck(id=1)
        (frame,) = request_frames(workload, 1, start_id=2)
        reply = await server.submit(session, frame)
        assert isinstance(reply, DecisionReply)
        assert reply.id == 2
        assert reply.msgid >= 1
        assert reply.decision in {d.value for d in Decision}
        assert reply.context is not None and len(reply.context) == 6
        assert session.inflight == 0
        await server.close()

    asyncio.run(run())


def test_full_queue_sheds_with_retry_after(engine, workload):
    async def run():
        # Dispatcher deliberately not started: the queue fills
        # deterministically.
        server = TrustedServer(
            engine,
            ServeConfig(
                max_queue_depth=2,
                max_inflight=10,
                retry_after_floor_s=0.05,
            ),
        )
        session = server.open_session("t")
        frames = request_frames(workload, 3)
        tasks = [
            asyncio.ensure_future(server.submit(session, frame))
            for frame in frames[:2]
        ]
        await asyncio.sleep(0)  # let both reach the queue
        shed = await server.submit(session, frames[2])
        assert isinstance(shed, ErrorReply)
        assert shed.is_shed
        assert shed.id == frames[2].id
        assert shed.retry_after is not None
        assert shed.retry_after >= 0.05
        assert server.shed_total == 1 and session.shed == 1
        # Once the dispatcher runs, the queued jobs are served.
        await server.start()
        replies = await asyncio.gather(*tasks)
        assert all(isinstance(r, DecisionReply) for r in replies)
        await server.close()

    asyncio.run(run())


def test_per_session_inflight_cap_sheds(engine, workload):
    async def run():
        server = TrustedServer(
            engine, ServeConfig(max_queue_depth=100, max_inflight=1)
        )
        greedy = server.open_session("greedy")
        other = server.open_session("other")
        frames = request_frames(workload, 3)
        first = asyncio.ensure_future(server.submit(greedy, frames[0]))
        await asyncio.sleep(0)
        shed = await server.submit(greedy, frames[1])
        assert isinstance(shed, ErrorReply) and shed.is_shed
        assert "inflight" in shed.message
        # The cap is per session: another client still gets in.
        second = asyncio.ensure_future(server.submit(other, frames[2]))
        await asyncio.sleep(0)
        assert other.inflight == 1
        await server.start()
        assert isinstance(await first, DecisionReply)
        assert isinstance(await second, DecisionReply)
        await server.close()

    asyncio.run(run())


def test_draining_rejects_new_work(engine, workload):
    async def run():
        server = await TrustedServer(engine).start()
        session = server.open_session("t")
        drained = await server.drain()
        assert isinstance(drained, DrainReply)
        assert drained.pending == 0
        (frame,) = request_frames(workload, 1)
        rejected = await server.submit(session, frame)
        assert isinstance(rejected, ErrorReply)
        assert rejected.code == "draining"
        assert not rejected.is_shed
        assert server.rejected == 1
        await server.close()

    asyncio.run(run())


def test_stats_and_drain_via_submit(engine, workload):
    async def run():
        server = await TrustedServer(engine).start()
        session = server.open_session("t")
        for frame in request_frames(workload, 3):
            await server.submit(session, frame)
        stats = await server.submit(session, StatsRequest(id=77))
        assert isinstance(stats, StatsReply)
        assert stats.id == 77
        assert stats.accepted == 3 and stats.served == 3
        assert stats.queue_depth == 0 and stats.sessions == 1
        drained = await server.submit(session, DrainRequest(id=78))
        assert isinstance(drained, DrainReply)
        assert drained.id == 78
        assert drained.served == 3 and drained.pending == 0
        await server.close()

    asyncio.run(run())


def test_engine_exception_becomes_internal_error(engine, workload):
    async def run():
        server = await TrustedServer(engine).start()
        session = server.open_session("t")
        frames = request_frames(workload, 2)
        original = engine.process
        engine.process = lambda *a, **k: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        reply = await server.submit(session, frames[0])
        assert isinstance(reply, ErrorReply)
        assert reply.code == "internal"
        assert "boom" in reply.message
        # The dispatcher survives an engine bug and keeps serving.
        engine.process = original
        assert isinstance(
            await server.submit(session, frames[1]), DecisionReply
        )
        await server.close()

    asyncio.run(run())


def test_serving_telemetry(telemetry_engine, workload):
    async def run():
        server = await TrustedServer(
            telemetry_engine, ServeConfig(max_queue_depth=2)
        ).start()
        session = server.open_session("t")
        await server.submit(session, update_frame(workload))
        for frame in request_frames(workload, 2, start_id=2):
            await server.submit(session, frame)
        snap = telemetry_engine.telemetry.snapshot()
        assert snap.counter_value("serve.served", kind="request") == 2
        assert snap.counter_value("serve.served", kind="update") == 1
        assert snap.gauge_value("serve.connections") == 1
        assert snap.gauge_value("serve.queue_depth") == 0
        request_ms = snap.histogram_summary("serve.request_ms")
        assert request_ms is not None and request_ms.count == 3
        await server.drain()
        ring = telemetry_engine.telemetry.ring()
        assert ring is not None
        events = {e["type"] for e in ring.events}
        assert "ts.decision" in events
        drained = [
            e for e in ring.events if e["type"] == "serve.drained"
        ]
        assert len(drained) == 1
        assert drained[0]["served"] == 3
        assert sum(drained[0]["decisions"].values()) == 2
        server.close_session(session)
        snap = telemetry_engine.telemetry.snapshot()
        assert snap.gauge_value("serve.connections") == 0
        await server.close()

    asyncio.run(run())


def test_shed_telemetry_counter(telemetry_engine, workload):
    async def run():
        server = TrustedServer(
            telemetry_engine,
            ServeConfig(max_queue_depth=1, max_inflight=1),
        )
        session = server.open_session("t")
        frames = request_frames(workload, 2)
        task = asyncio.ensure_future(server.submit(session, frames[0]))
        await asyncio.sleep(0)
        shed = await server.submit(session, frames[1])
        assert isinstance(shed, ErrorReply) and shed.is_shed
        snap = telemetry_engine.telemetry.snapshot()
        assert snap.counter_value("serve.shed", reason="inflight") == 1
        await server.start()
        await task
        await server.close()

    asyncio.run(run())


def test_slo_rules_require_enabled_telemetry(engine):
    with pytest.raises(ValueError):
        TrustedServer(engine, slo_rules=["k_attainment >= 0.0"])


def test_slo_monitor_audits_the_online_stream(
    telemetry_engine, workload
):
    async def run():
        server = await TrustedServer(
            telemetry_engine,
            slo_rules=["unlink_rate <= 1e9 /min"],
        ).start()
        assert server.privacy_monitor is not None
        session = server.open_session("t")
        for frame in request_frames(workload, 4):
            await server.submit(session, frame)
        await server.drain()
        # Drain forced a final evaluation; the lax rule cannot breach.
        assert server.privacy_monitor.alerts == []
        ring = telemetry_engine.telemetry.ring()
        assert any(
            e["type"] == "ts.decision" for e in ring.events
        )
        await server.close()

    asyncio.run(run())


def test_close_is_idempotent(engine):
    async def run():
        server = await TrustedServer(engine).start()
        await server.close()
        await server.close()
        with pytest.raises(RuntimeError):
            await server.start()

    asyncio.run(run())
