"""Unit tests of the per-shard write-ahead log (repro.serve.wal)."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import LocationUpdate, ServiceRequest
from repro.serve.wal import (
    SNAPSHOT_NAME,
    WAL_NAME,
    ShardWal,
    WalConfig,
    WalCorruptionError,
    frame_of_record,
    op_record,
)


def records(n, start=0):
    return [
        {"s": s, "k": "u", "u": s % 3, "x": 1.0 * s,
         "y": 2.0 * s, "t": 10.0 * s}
        for s in range(start, start + n)
    ]


class TestRecords:
    def test_update_roundtrip(self):
        frame = LocationUpdate(
            id=7, user_id=3, x=1.5, y=-2.5, t=99.0, seq=41
        )
        record = op_record(frame, 41)
        back = frame_of_record(record)
        assert isinstance(back, LocationUpdate)
        assert (back.user_id, back.x, back.y, back.t, back.seq) == (
            3, 1.5, -2.5, 99.0, 41
        )

    def test_request_roundtrip_keeps_service(self):
        frame = ServiceRequest(
            id=7, user_id=3, x=1.5, y=-2.5, t=99.0, service="poi"
        )
        back = frame_of_record(op_record(frame, 5))
        assert isinstance(back, ServiceRequest)
        assert back.service == "poi"
        assert back.seq == 5

    def test_non_mutating_frame_rejected(self):
        from repro.serve.protocol import StatsRequest

        with pytest.raises(TypeError):
            op_record(StatsRequest(id=1), 0)


class TestAppendRecover:
    def test_roundtrip(self, tmp_path):
        wal = ShardWal(tmp_path)
        for record in records(10):
            wal.append(record)
        wal.close()
        assert list(ShardWal.recover(tmp_path)) == records(10)

    def test_rotation_produces_sealed_segments(self, tmp_path):
        wal = ShardWal(tmp_path, WalConfig(segment_max_bytes=128))
        for record in records(20):
            wal.append(record)
        wal.close()
        sealed = list(tmp_path.glob(WAL_NAME + ".*"))
        assert len(sealed) >= 2
        assert list(ShardWal.recover(tmp_path)) == records(20)

    def test_new_incarnation_never_appends_to_old_live(self, tmp_path):
        first = ShardWal(tmp_path)
        for record in records(5):
            first.append(record)
        first.close()
        second = ShardWal(tmp_path)
        for record in records(5, start=5):
            second.append(record)
        second.close()
        # The first incarnation's live file was sealed aside.
        assert (tmp_path / f"{WAL_NAME}.1").exists()
        assert list(ShardWal.recover(tmp_path)) == records(10)

    def test_torn_tail_in_crashed_live_segment_tolerated(self, tmp_path):
        wal = ShardWal(tmp_path)
        for record in records(5):
            wal.append(record)
        wal.close()
        # Simulate a crash mid-append: truncate the last line.
        live = tmp_path / WAL_NAME
        data = live.read_bytes()
        live.write_bytes(data[:-9])
        assert list(ShardWal.recover(tmp_path)) == records(4)
        # And a restart writes a fresh live segment, replay still clean.
        restarted = ShardWal(tmp_path)
        restarted.append(records(1, start=4)[0])
        restarted.close()
        assert list(ShardWal.recover(tmp_path)) == records(5)

    def test_non_monotonic_seq_raises(self, tmp_path):
        wal = ShardWal(tmp_path)
        wal.append({"s": 3, "k": "u", "u": 1, "x": 0.0, "y": 0.0,
                    "t": 0.0})
        wal.append({"s": 2, "k": "u", "u": 1, "x": 0.0, "y": 0.0,
                    "t": 0.0})
        wal.close()
        with pytest.raises(WalCorruptionError):
            list(ShardWal.recover(tmp_path))

    def test_interior_corruption_raises(self, tmp_path):
        wal = ShardWal(tmp_path)
        for record in records(3):
            wal.append(record)
        wal.close()
        live = tmp_path / WAL_NAME
        lines = live.read_text().splitlines()
        lines[1] = lines[1][:-4] + "@@@"
        live.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            list(ShardWal.recover(tmp_path))


class TestCompaction:
    def test_compact_merges_sealed_segments(self, tmp_path):
        wal = ShardWal(tmp_path, WalConfig(segment_max_bytes=128))
        for record in records(30):
            wal.append(record)
        assert len(list(tmp_path.glob(WAL_NAME + ".*"))) >= 2
        merged = wal.compact()
        assert merged > 0
        assert (tmp_path / SNAPSHOT_NAME).exists()
        assert not list(tmp_path.glob(WAL_NAME + ".*"))
        wal.close()
        assert list(ShardWal.recover(tmp_path)) == records(30)

    def test_compact_never_touches_live(self, tmp_path):
        wal = ShardWal(tmp_path)
        for record in records(5):
            wal.append(record)
        assert wal.compact() == 0  # nothing sealed yet
        wal.close()
        assert list(ShardWal.recover(tmp_path)) == records(5)

    def test_auto_compaction_via_snapshot_every(self, tmp_path):
        wal = ShardWal(
            tmp_path,
            WalConfig(segment_max_bytes=128, snapshot_every=10),
        )
        for record in records(40):
            wal.append(record)
        wal.close()
        assert (tmp_path / SNAPSHOT_NAME).exists()
        assert list(ShardWal.recover(tmp_path)) == records(40)

    def test_repeated_compaction_is_idempotent(self, tmp_path):
        wal = ShardWal(tmp_path, WalConfig(segment_max_bytes=64))
        for record in records(10):
            wal.append(record)
        wal.compact()
        for record in records(10, start=10):
            wal.append(record)
        wal.compact()
        wal.close()
        assert list(ShardWal.recover(tmp_path)) == records(20)

    def test_snapshot_survives_torn_live(self, tmp_path):
        wal = ShardWal(tmp_path, WalConfig(segment_max_bytes=64))
        for record in records(12):
            wal.append(record)
        wal.compact()
        wal.close()
        live = tmp_path / WAL_NAME
        if live.stat().st_size:
            live.write_bytes(live.read_bytes()[:-5])
        recovered = list(ShardWal.recover(tmp_path))
        # Every fully-written record before the torn tail survives.
        assert recovered == records(len(recovered))
        assert len(recovered) >= 10


class TestConfigValidation:
    def test_bad_fsync_policy(self):
        with pytest.raises(ValueError):
            WalConfig(fsync="sometimes")

    def test_bad_segment_size(self):
        with pytest.raises(ValueError):
            WalConfig(segment_max_bytes=0)

    def test_fsync_always_accepted(self, tmp_path):
        wal = ShardWal(tmp_path, WalConfig(fsync="always"))
        wal.append(records(1)[0])
        wal.close()
        assert list(ShardWal.recover(tmp_path)) == records(1)

    def test_records_are_compact_json(self, tmp_path):
        wal = ShardWal(tmp_path)
        wal.append(records(1)[0])
        wal.close()
        line = (tmp_path / f"{WAL_NAME}.1" if (
            tmp_path / f"{WAL_NAME}.1").exists() else tmp_path / WAL_NAME
        ).read_text().strip()
        assert json.loads(line) == records(1)[0]
        assert " " not in line
