"""Client reconnect tests: dropped sockets, redial budgets, rejections."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.gate import ConnectionGate, GateConfig
from repro.serve.protocol import UpdateAck
from repro.serve.server import TrustedServer
from repro.serve.transports import TcpTransport


def first_update(workload):
    return next(i for i in workload.timeline if not i.is_request)


async def _serving(engine, gate=None):
    server = TrustedServer(engine)
    transport = TcpTransport(server, gate=gate)
    host, port = await transport.start()
    return server, transport, host, port


def _abort(client):
    """Kill the client's socket like a reset (no FIN handshake)."""
    client._writer.transport.abort()


def test_send_survives_reset_with_reconnect_budget(engine, workload):
    async def run():
        server, transport, host, port = await _serving(engine)
        client = await ServeClient.connect(
            host, port, client="resilient", reconnect=3
        )
        update = first_update(workload)
        ack = await client.update(
            update.user_id,
            update.location.x,
            update.location.y,
            update.location.t,
        )
        assert isinstance(ack, UpdateAck)
        _abort(client)
        # The next send sees the dead socket, redials in place, and
        # resubmits — the caller never observes the reset.
        ack = await client.update(
            update.user_id,
            update.location.x,
            update.location.y,
            update.location.t,
        )
        assert isinstance(ack, UpdateAck)
        assert client.reconnects == 1
        await client.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_send_without_budget_raises(engine, workload):
    async def run():
        server, transport, host, port = await _serving(engine)
        client = await ServeClient.connect(host, port)
        update = first_update(workload)
        _abort(client)
        with pytest.raises((ServeClientError, OSError)):
            await client.update(
                update.user_id,
                update.location.x,
                update.location.y,
                update.location.t,
            )
        assert client.reconnects == 0
        await client.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_concurrent_senders_share_one_redial(engine, workload):
    """N ops on one dead socket cost one reconnect, not N."""

    async def run():
        server, transport, host, port = await _serving(engine)
        client = await ServeClient.connect(host, port, reconnect=3)
        update = first_update(workload)
        _abort(client)
        replies = await asyncio.gather(
            *(
                client.update(
                    update.user_id,
                    update.location.x,
                    update.location.y,
                    update.location.t,
                )
                for _ in range(5)
            ),
            return_exceptions=True,
        )
        # Every op either rode the reconnected socket to an ack or was
        # failed by the pending sweep — but the redial happened once.
        assert any(isinstance(r, UpdateAck) for r in replies)
        assert client.reconnects == 1
        # The connection is live again for everything that follows.
        ack = await client.update(
            update.user_id,
            update.location.x,
            update.location.y,
            update.location.t,
        )
        assert isinstance(ack, UpdateAck)
        await client.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_connect_retries_until_listener_appears(engine):
    """The initial dial honors the same bounded-backoff budget."""

    async def run():
        server = TrustedServer(engine)
        transport = TcpTransport(server)
        host, port = await transport.start()
        await transport.stop()  # port known, nobody listening

        async def bring_back():
            await asyncio.sleep(0.15)
            late = TcpTransport(server, host=host, port=port)
            await late.start()
            return late

        revive = asyncio.create_task(bring_back())
        client = await ServeClient.connect(
            host, port, reconnect=6, reconnect_base_s=0.05
        )
        late = await revive
        stats = await client.stats()
        assert stats.op == "stats_reply"
        await client.close()
        await late.stop()
        await server.close()

    asyncio.run(run())


def test_connect_without_budget_fails_fast(engine):
    async def run():
        server = TrustedServer(engine)
        transport = TcpTransport(server)
        host, port = await transport.start()
        await transport.stop()
        with pytest.raises((ConnectionError, OSError)):
            await ServeClient.connect(host, port)
        await server.close()

    asyncio.run(run())


def test_typed_rejection_is_never_retried(engine):
    """A gate refusal is final: no backoff loop burns the budget."""

    async def run():
        gate = ConnectionGate(GateConfig(tokens=("right",)))
        server, transport, host, port = await _serving(
            engine, gate=gate
        )
        started = time.monotonic()
        with pytest.raises(ServeClientError) as exc_info:
            await ServeClient.connect(
                host,
                port,
                token="wrong",
                reconnect=8,
                reconnect_base_s=0.2,
            )
        elapsed = time.monotonic() - started
        assert exc_info.value.reply is not None
        assert exc_info.value.reply.code == "bad_token"
        # One attempt, one rejection: the gate saw exactly one hello
        # and the call returned well inside one backoff step.
        assert gate.rejected == {"bad_token": 1}
        assert elapsed < 0.2
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_reconnect_rehandshakes_through_gate(engine, workload):
    """A redial repeats the hello, so the gate re-screens and the
    connection accounting stays balanced."""

    async def run():
        gate = ConnectionGate(GateConfig(tokens=("tok",)))
        server, transport, host, port = await _serving(
            engine, gate=gate
        )
        client = await ServeClient.connect(
            host, port, token="tok", reconnect=3
        )
        update = first_update(workload)
        _abort(client)
        ack = await client.update(
            update.user_id,
            update.location.x,
            update.location.y,
            update.location.t,
        )
        assert isinstance(ack, UpdateAck)
        assert gate.admitted_connections == 2
        await client.close()
        await transport.stop()
        # The dead handler and the live one both released their slots.
        for _ in range(50):
            if gate.connections == 0:
                break
            await asyncio.sleep(0.01)
        assert gate.connections == 0
        await server.close()

    asyncio.run(run())
