"""Load-generator tests: TCP smoke, overload shedding, CLI wiring."""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path

import pytest

from repro.serve.loadgen import (
    LoadgenConfig,
    WorkloadConfig,
    build_workload,
    run_loadgen,
)
from repro.serve.server import ServeConfig

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_workload_is_deterministic_and_ordered(workload):
    again = build_workload(
        WorkloadConfig(seed=11, n_commuters=8, n_wanderers=4, days=4),
        max_requests=120,
    )
    assert [
        (i.user_id, i.location.t, i.service) for i in workload.timeline
    ] == [(i.user_id, i.location.t, i.service) for i in again.timeline]
    assert workload.n_requests == 120
    for user_id, items in workload.per_user.items():
        times = [item.location.t for item in items]
        assert times == sorted(times)


def test_loadgen_tcp_smoke(workload_config):
    report = asyncio.run(
        run_loadgen(
            LoadgenConfig(
                workload=workload_config,
                serve=ServeConfig(
                    max_queue_depth=100_000, max_inflight=100_000
                ),
                requests=40,
                clients=3,
                rate=50_000.0,
                transport="tcp",
                verify=True,
            )
        )
    )
    assert report.ok, report.to_dict()
    assert report.decisions == 40
    assert report.protocol_errors == 0
    assert report.clean_shutdown
    assert report.latency_ms["p50"] >= 0.0
    assert report.throughput_rps > 0


def test_loadgen_sheds_not_errors_under_overload(workload_config):
    """A drowning server backpressures explicitly; it never breaks."""
    report = asyncio.run(
        run_loadgen(
            LoadgenConfig(
                workload=workload_config,
                serve=ServeConfig(max_queue_depth=8, max_inflight=4),
                requests=80,
                clients=4,
                rate=1e6,
                transport="tcp",
                include_updates=False,
            )
        )
    )
    assert report.shed > 0
    assert report.protocol_errors == 0
    assert report.internal_errors == 0
    assert report.clean_shutdown
    assert report.decisions + report.shed == 80
    assert 0.0 < report.shed_rate < 1.0


def test_loadgen_config_validation():
    with pytest.raises(ValueError):
        LoadgenConfig(transport="carrier-pigeon")
    with pytest.raises(ValueError):
        LoadgenConfig(clients=0)
    with pytest.raises(ValueError):
        LoadgenConfig(rate=0.0)


def test_report_serializes(workload_config):
    report = asyncio.run(
        run_loadgen(
            LoadgenConfig(
                workload=workload_config,
                requests=10,
                clients=2,
                rate=50_000.0,
                transport="loopback",
                telemetry_enabled=False,
            )
        )
    )
    payload = report.to_dict()
    assert payload["decisions"] == 10
    assert isinstance(payload["latency_ms"], dict)
    assert any("loadgen" in line for line in report.summary_lines())


def test_cli_main_smoke(capsys):
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import loadgen as loadgen_cli
    finally:
        sys.path.pop(0)
    code = loadgen_cli.main(
        [
            "--requests",
            "30",
            "--clients",
            "2",
            "--rate",
            "50000",
            "--verify",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "clean_shutdown: True" in out
    assert "verified: True" in out


def test_index_cell_size_wires_through_build_engine(
    workload, workload_config
):
    from dataclasses import replace

    from repro.serve.loadgen import build_engine

    bare = build_engine(workload, workload_config)
    assert bare.store.index is None  # default: no grid index
    indexed_config = replace(workload_config, index_cell_size=500.0)
    indexed = build_engine(workload, indexed_config)
    assert indexed.store.index is not None
    assert indexed.store.index.cell_size == 500.0


def test_loadgen_traced_run_verifies_and_records_spans(
    workload_config,
):
    """trace=True changes observability, never decisions."""
    report = asyncio.run(
        run_loadgen(
            LoadgenConfig(
                workload=workload_config,
                serve=ServeConfig(
                    max_queue_depth=100_000, max_inflight=100_000
                ),
                requests=30,
                clients=3,
                rate=50_000.0,
                transport="tcp",
                verify=True,
                trace=True,
            )
        )
    )
    assert report.ok, report.to_dict()
    assert report.decisions == 30
    assert report.telemetry is not None
    # No sink is attached here, so the no-sink fast path skips span
    # records entirely: only the engine's local ts.request spans
    # finish.  The trace identities still flowed — the request
    # latency histogram picked up bucket exemplars.
    assert report.telemetry.tracer.finished >= 30
    hist = report.telemetry.metrics.histogram("serve.request_ms")
    assert hist.exemplars, "traced run recorded no bucket exemplars"


def test_loadgen_retries_recover_sheds(workload_config):
    report = asyncio.run(
        run_loadgen(
            LoadgenConfig(
                workload=workload_config,
                serve=ServeConfig(max_queue_depth=8, max_inflight=4),
                requests=80,
                clients=4,
                rate=1e6,
                transport="tcp",
                include_updates=False,
                retries=4,
            )
        )
    )
    assert report.protocol_errors == 0
    assert report.internal_errors == 0
    assert report.clean_shutdown
    assert report.retried > 0
    assert report.recovered > 0
    # Recovered operations count as decisions, not sheds.
    assert report.decisions + report.shed == 80
    assert report.decisions > 0
    payload = report.to_dict()
    assert payload["retried"] == report.retried
    assert payload["recovered"] == report.recovered
    assert any("retried" in line for line in report.summary_lines())


def test_cli_flags_for_trace_retries_and_index(capsys):
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import loadgen as loadgen_cli
    finally:
        sys.path.pop(0)
    code = loadgen_cli.main(
        [
            "--requests",
            "20",
            "--clients",
            "2",
            "--rate",
            "50000",
            "--trace",
            "--retries",
            "2",
            "--index-cell-size",
            "500",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "clean_shutdown: True" in out
