"""TLS transport tests: dev certs, pinned dials, gated handshakes."""

from __future__ import annotations

import asyncio
import importlib.util
import pathlib
import ssl

import pytest

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.gate import ConnectionGate, GateConfig
from repro.serve.protocol import DecisionReply, ErrorReply, UpdateAck
from repro.serve.server import TrustedServer
from repro.serve.transports import (
    TcpTransport,
    client_ssl_context,
    server_ssl_context,
)

TOKEN = "tls-test-token"


def _gen_dev_cert():
    path = (
        pathlib.Path(__file__).resolve().parents[2]
        / "tools"
        / "gen_dev_cert.py"
    )
    spec = importlib.util.spec_from_file_location("gen_dev_cert", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="session")
def dev_cert(tmp_path_factory):
    """One self-signed pair for the whole session (generation is slow)."""
    out_dir = tmp_path_factory.mktemp("certs")
    module = _gen_dev_cert()
    return module.generate_dev_cert(str(out_dir))


@pytest.fixture(scope="session")
def other_cert(tmp_path_factory):
    """A second, unrelated pair (the wrong-pin counterexample)."""
    out_dir = tmp_path_factory.mktemp("other-certs")
    module = _gen_dev_cert()
    return module.generate_dev_cert(str(out_dir))


def test_dev_cert_generator_output(dev_cert):
    cert, key = dev_cert
    cert_text = pathlib.Path(cert).read_text()
    key_text = pathlib.Path(key).read_text()
    assert "BEGIN CERTIFICATE" in cert_text
    assert "PRIVATE KEY" in key_text
    # The key is secret material: owner-only permissions.
    mode = pathlib.Path(key).stat().st_mode & 0o777
    assert mode == 0o600
    # The pair must actually load as an SSL identity.
    server_ssl_context(cert, key)
    client_ssl_context(cert)


async def _tls_serving(engine, dev_cert, gate=None):
    cert, key = dev_cert
    server = TrustedServer(engine)
    transport = TcpTransport(
        server,
        ssl_context=server_ssl_context(cert, key),
        gate=gate,
    )
    host, port = await transport.start()
    return server, transport, host, port


def first_request(workload):
    return next(i for i in workload.timeline if i.is_request)


def first_update(workload):
    return next(i for i in workload.timeline if not i.is_request)


def test_tls_end_to_end(engine, workload, dev_cert):
    async def run():
        server, transport, host, port = await _tls_serving(
            engine, dev_cert
        )
        client = await ServeClient.connect(
            host, port, ssl=client_ssl_context(dev_cert[0])
        )
        update = first_update(workload)
        ack = await client.update(
            update.user_id,
            update.location.x,
            update.location.y,
            update.location.t,
        )
        assert isinstance(ack, UpdateAck)
        request = first_request(workload)
        decision = await client.request(
            request.user_id,
            request.location.x,
            request.location.y,
            request.location.t,
            service=request.service,
        )
        assert isinstance(decision, DecisionReply)
        stats = await client.stats()
        assert stats.served == 2
        await client.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_tls_client_rejects_unpinned_server(
    engine, dev_cert, other_cert
):
    """The pin binds the dial to one key holder, not just "some TLS"."""

    async def run():
        server, transport, host, port = await _tls_serving(
            engine, dev_cert
        )
        try:
            with pytest.raises(ssl.SSLError):
                await ServeClient.connect(
                    host, port, ssl=client_ssl_context(other_cert[0])
                )
        finally:
            await transport.stop()
            await server.close()

    asyncio.run(run())


def test_plaintext_client_cannot_speak_to_tls_port(engine, dev_cert):
    async def run():
        server, transport, host, port = await _tls_serving(
            engine, dev_cert
        )
        try:
            with pytest.raises((ServeClientError, OSError)):
                await ServeClient.connect(host, port)
        finally:
            await transport.stop()
            await server.close()

    asyncio.run(run())


def test_gated_tls_bad_token_typed_rejection(engine, dev_cert):
    async def run():
        gate = ConnectionGate(GateConfig(tokens=(TOKEN,)))
        server, transport, host, port = await _tls_serving(
            engine, dev_cert, gate=gate
        )
        ctx = client_ssl_context(dev_cert[0])
        try:
            with pytest.raises(ServeClientError) as exc_info:
                await ServeClient.connect(
                    host, port, ssl=ctx, token="wrong"
                )
            rejection = exc_info.value.reply
            assert isinstance(rejection, ErrorReply)
            assert rejection.code == "bad_token"
            # The refusal happened at the gate: no session, no serving.
            assert server.served == 0
            assert gate.rejected == {"bad_token": 1}
            assert gate.admitted_connections == 0
            # The right token still gets in afterwards.
            client = await ServeClient.connect(
                host, port, ssl=ctx, token=TOKEN
            )
            assert gate.admitted_connections == 1
            await client.close()
        finally:
            await transport.stop()
            await server.close()

    asyncio.run(run())


def test_gated_tls_rate_limit_before_sequencer(
    engine, workload, dev_cert
):
    async def run():
        gate = ConnectionGate(
            GateConfig(tokens=(TOKEN,), rate_limit=5.0, burst=2.0)
        )
        server, transport, host, port = await _tls_serving(
            engine, dev_cert, gate=gate
        )
        client = await ServeClient.connect(
            host,
            port,
            ssl=client_ssl_context(dev_cert[0]),
            token=TOKEN,
        )
        try:
            update = first_update(workload)
            replies = await asyncio.gather(
                *(
                    client.update(
                        update.user_id,
                        update.location.x,
                        update.location.y,
                        update.location.t,
                    )
                    for _ in range(8)
                )
            )
            limited = [
                reply
                for reply in replies
                if isinstance(reply, ErrorReply)
                and reply.code == "rate_limited"
            ]
            acked = [
                reply
                for reply in replies
                if isinstance(reply, UpdateAck)
            ]
            assert limited and acked
            assert all(
                (reply.retry_after or 0.0) > 0.0 for reply in limited
            )
            # The defining property: rejections never reached the
            # sequencer — the server served exactly the admitted ops.
            assert server.served == len(acked) == gate.admitted_ops
            assert gate.rejected["rate_limited"] == len(limited)
        finally:
            await client.close()
            await transport.stop()
            await server.close()

    asyncio.run(run())
