"""Unit tests of the NDJSON wire codec (strictness, error codes)."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    DecisionReply,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Hello,
    LocationUpdate,
    ProtocolError,
    ServiceRequest,
    StatsReply,
    StatsRequest,
    UpdateAck,
    Welcome,
    decode_reply,
    decode_request,
    encode_frame,
)


def test_request_frames_round_trip():
    frames = [
        Hello(version=PROTOCOL_VERSION, client="t"),
        LocationUpdate(id=1, user_id=3, x=1.5, y=-2.25, t=100.0),
        ServiceRequest(id=2, user_id=3, x=0.0, y=0.0, t=7.5, service="poi"),
        StatsRequest(id=3),
        DrainRequest(id=4),
    ]
    for frame in frames:
        line = encode_frame(frame)
        assert line.endswith(b"\n")
        assert decode_request(line) == frame


def test_reply_frames_round_trip():
    frames = [
        Welcome(
            version=1,
            server="ts",
            session="s1",
            max_inflight=4,
            max_queue_depth=16,
        ),
        UpdateAck(id=9),
        DecisionReply(
            id=1,
            msgid=12,
            pseudonym="p4",
            decision="generalized",
            forwarded=True,
            context=(0.0, 1.0, 2.0, 3.0, 4.0, 5.0),
            lbqid="commute",
            step=2,
            required_k=5,
            rotated=False,
        ),
        DecisionReply(
            id=2,
            msgid=13,
            pseudonym="p5",
            decision="suppressed",
            forwarded=False,
        ),
        ErrorReply(id=None, code="bad_json", message="nope"),
        ErrorReply(
            id=7, code="overloaded", message="shed", retry_after=0.25
        ),
        StatsReply(
            id=5,
            accepted=10,
            served=8,
            shed=1,
            rejected=1,
            protocol_errors=0,
            queue_depth=2,
            sessions=3,
        ),
        DrainReply(id=6, served=8, shed=1, rejected=1, pending=0),
    ]
    for frame in frames:
        assert decode_reply(encode_frame(frame)) == frame


def test_registries_are_disjoint():
    # A reply echoed at the server is a protocol error, not dispatch.
    line = encode_frame(UpdateAck(id=1))
    with pytest.raises(ProtocolError) as err:
        decode_request(line)
    assert err.value.code == "unknown_op"
    with pytest.raises(ProtocolError) as err:
        decode_reply(encode_frame(StatsRequest(id=1)))
    assert err.value.code == "unknown_op"


def test_is_shed_marks_only_overload():
    assert ErrorReply(id=1, code="overloaded", message="").is_shed
    assert not ErrorReply(id=1, code="draining", message="").is_shed


@pytest.mark.parametrize(
    "line, code",
    [
        (b"not json at all\n", "bad_json"),
        (b'{"op": "hello", "version": NaN}\n', "bad_json"),
        (b'{"op": "hello", "version": Infinity}\n', "bad_json"),
        (b'[1, 2, 3]\n', "bad_frame"),
        (b'"hello"\n', "bad_frame"),
        (b'{"version": 1}\n', "bad_frame"),
        (b'{"op": 7}\n', "bad_frame"),
        (b'{"op": "teleport"}\n', "unknown_op"),
        (b'{"op": "stats"}\n', "bad_field"),
        (b'{"op": "stats", "id": "one"}\n', "bad_field"),
        (b'{"op": "stats", "id": true}\n', "bad_field"),
        (b'{"op": "stats", "id": 1, "extra": 2}\n', "bad_field"),
        (
            b'{"op": "update", "id": 1, "user_id": 2, "x": "a", '
            b'"y": 0, "t": 0}\n',
            "bad_field",
        ),
        (
            b'{"op": "hello", "version": 1, "client": 42}\n',
            "bad_field",
        ),
    ],
)
def test_strict_decode_error_codes(line, code):
    with pytest.raises(ProtocolError) as err:
        decode_request(line)
    assert err.value.code == code


def test_decision_context_must_be_a_six_box():
    payload = {
        "op": "decision",
        "id": 1,
        "msgid": 1,
        "pseudonym": "p",
        "decision": "forwarded",
        "forwarded": True,
        "context": [1.0, 2.0],
    }
    with pytest.raises(ProtocolError) as err:
        decode_reply(json.dumps(payload).encode() + b"\n")
    assert err.value.code == "bad_field"


def test_int_accepted_where_float_expected():
    line = (
        b'{"op": "update", "id": 1, "user_id": 2, "x": 3, "y": 4, '
        b'"t": 5}\n'
    )
    frame = decode_request(line)
    assert isinstance(frame, LocationUpdate)
    assert frame.x == 3.0 and isinstance(frame.x, float)


def test_oversized_frames_rejected_both_ways():
    big = ServiceRequest(
        id=1, user_id=2, x=0.0, y=0.0, t=0.0, service="x" * 512
    )
    with pytest.raises(ProtocolError) as err:
        encode_frame(big, max_bytes=128)
    assert err.value.code == "frame_too_large"
    line = encode_frame(big, max_bytes=MAX_FRAME_BYTES)
    with pytest.raises(ProtocolError) as err:
        decode_request(line, max_bytes=128)
    assert err.value.code == "frame_too_large"


def test_encoder_refuses_non_finite_numbers():
    frame = LocationUpdate(
        id=1, user_id=2, x=float("nan"), y=0.0, t=0.0
    )
    with pytest.raises(ValueError):
        encode_frame(frame)


def test_optional_fields_may_be_null_or_absent():
    line = (
        b'{"op": "decision", "id": 1, "msgid": 2, "pseudonym": "p", '
        b'"decision": "suppressed", "forwarded": false, '
        b'"context": null}\n'
    )
    frame = decode_reply(line)
    assert isinstance(frame, DecisionReply)
    assert frame.context is None
    assert frame.lbqid is None
    assert frame.rotated is False


# ---------------------------------------------------------------------
# tracing fields and introspection ops
# ---------------------------------------------------------------------

from repro.serve.protocol import (  # noqa: E402
    HealthReply,
    HealthRequest,
    MetricsReply,
    MetricsRequest,
    TracesReply,
    TracesRequest,
)


def test_trace_negotiation_fields_round_trip():
    hello = Hello(client="t", trace=True)
    assert decode_request(encode_frame(hello)) == hello
    welcome = Welcome(
        version=1,
        server="ts",
        session="s1",
        max_inflight=4,
        max_queue_depth=16,
        trace=True,
    )
    assert decode_reply(encode_frame(welcome)) == welcome
    # Absent trace fields default off: old peers stay compatible.
    old = decode_request(b'{"op": "hello", "version": 1}\n')
    assert isinstance(old, Hello) and old.trace is False


def test_trace_context_rides_requests_and_replies():
    wire = "0123456789abcdef-fedcba9876543210"
    frames = [
        LocationUpdate(id=1, user_id=2, x=0.0, y=0.0, t=1.0, trace=wire),
        ServiceRequest(
            id=2, user_id=2, x=0.0, y=0.0, t=1.0, service="poi",
            trace=wire,
        ),
    ]
    for frame in frames:
        decoded = decode_request(encode_frame(frame))
        assert decoded == frame and decoded.trace == wire
    replies = [
        UpdateAck(id=1, trace=wire),
        ErrorReply(id=2, code="overloaded", message="", trace=wire),
        DecisionReply(
            id=3,
            msgid=1,
            pseudonym="p",
            decision="suppressed",
            forwarded=False,
            trace=wire,
        ),
    ]
    for reply in replies:
        assert decode_reply(encode_frame(reply)).trace == wire
    # Untraced frames stay exactly as before (trace defaults to None).
    bare = decode_request(
        b'{"op": "update", "id": 1, "user_id": 2, "x": 0, "y": 0, '
        b'"t": 1}\n'
    )
    assert bare.trace is None


def test_trace_field_must_be_a_string():
    with pytest.raises(ProtocolError) as err:
        decode_request(
            b'{"op": "update", "id": 1, "user_id": 2, "x": 0, "y": 0, '
            b'"t": 1, "trace": 7}\n'
        )
    assert err.value.code == "bad_field"


def test_introspection_frames_round_trip():
    requests = [
        MetricsRequest(id=1),
        MetricsRequest(id=2, format="prometheus"),
        HealthRequest(id=3),
        TracesRequest(id=4),
        TracesRequest(id=5, limit=3),
    ]
    for frame in requests:
        assert decode_request(encode_frame(frame)) == frame
    replies = [
        MetricsReply(id=1, format="prometheus", body="a_total 1\n"),
        HealthReply(
            id=3,
            status="ok",
            uptime_s=1.5,
            queue_depth=0,
            sessions=2,
            served=10,
            shed=0,
            slo_ok=True,
            breaches=0,
        ),
        TracesReply(id=4, body="[]"),
    ]
    for reply in replies:
        assert decode_reply(encode_frame(reply)) == reply
    # The registries stay disjoint for the new ops too.
    with pytest.raises(ProtocolError):
        decode_reply(encode_frame(MetricsRequest(id=1)))
    with pytest.raises(ProtocolError):
        decode_request(encode_frame(TracesReply(id=1, body="[]")))
