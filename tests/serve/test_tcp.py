"""TCP transport tests: real sockets, framing damage, handshakes."""

from __future__ import annotations

import asyncio

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.protocol import (
    DecisionReply,
    ErrorReply,
    Hello,
    StatsReply,
    StatsRequest,
    UpdateAck,
    decode_reply,
    encode_frame,
)
from repro.serve.server import ServeConfig, TrustedServer
from repro.serve.transports import TcpTransport


def first_request(workload):
    return next(i for i in workload.timeline if i.is_request)


def first_update(workload):
    return next(i for i in workload.timeline if not i.is_request)


async def _serving(engine, config=None):
    server = TrustedServer(engine, config)
    transport = TcpTransport(server)
    host, port = await transport.start()
    return server, transport, host, port


def test_tcp_end_to_end(engine, workload):
    async def run():
        server, transport, host, port = await _serving(engine)
        client = await ServeClient.connect(host, port, client="e2e")
        assert client.welcome.session == "s1"
        assert client.welcome.max_inflight == server.config.max_inflight
        update = first_update(workload)
        ack = await client.update(
            update.user_id,
            update.location.x,
            update.location.y,
            update.location.t,
        )
        assert isinstance(ack, UpdateAck)
        request = first_request(workload)
        decision = await client.request(
            request.user_id,
            request.location.x,
            request.location.y,
            request.location.t,
            service=request.service,
        )
        assert isinstance(decision, DecisionReply)
        stats = await client.stats()
        assert stats.served == 2 and stats.sessions == 1
        drained = await client.drain()
        assert drained.pending == 0 and drained.served == 2
        assert client.pending == 0
        await client.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_hello_must_come_first(engine):
    async def run():
        server, transport, host, port = await _serving(engine)
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(encode_frame(StatsRequest(id=5)))
        await writer.drain()
        reply = decode_reply(await reader.readline())
        assert isinstance(reply, ErrorReply)
        assert reply.code == "hello_required"
        assert reply.id == 5
        # The connection survives: hello now, then get served.
        writer.write(encode_frame(Hello(client="late")))
        writer.write(encode_frame(StatsRequest(id=6)))
        await writer.drain()
        welcome = decode_reply(await reader.readline())
        stats = decode_reply(await reader.readline())
        assert isinstance(stats, StatsReply) and stats.id == 6
        assert welcome.op == "welcome"
        assert server.protocol_errors == 1
        writer.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_bad_version_handshake_closes(engine):
    async def run():
        server, transport, host, port = await _serving(engine)
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(encode_frame(Hello(version=99)))
        await writer.drain()
        reply = decode_reply(await reader.readline())
        assert isinstance(reply, ErrorReply)
        assert reply.code == "bad_version"
        assert await reader.readline() == b""  # server hung up
        writer.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_client_connect_raises_on_bad_version(engine, monkeypatch):
    async def run():
        server, transport, host, port = await _serving(engine)
        monkeypatch.setattr(
            "repro.serve.server.PROTOCOL_VERSION", 2
        )
        try:
            await ServeClient.connect(host, port)
            raise AssertionError("handshake should have failed")
        except ServeClientError:
            pass
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_garbage_line_answers_and_recovers(engine):
    async def run():
        server, transport, host, port = await _serving(engine)
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(encode_frame(Hello()))
        await writer.drain()
        assert decode_reply(await reader.readline()).op == "welcome"
        writer.write(b"this is { not json\n")
        await writer.drain()
        reply = decode_reply(await reader.readline())
        assert isinstance(reply, ErrorReply)
        assert reply.code == "bad_json" and reply.id is None
        # NDJSON resynchronizes at the newline: still in business.
        writer.write(encode_frame(StatsRequest(id=1)))
        await writer.drain()
        stats = decode_reply(await reader.readline())
        assert isinstance(stats, StatsReply)
        assert stats.protocol_errors == 1
        writer.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_oversized_frame_closes_connection(engine):
    async def run():
        config = ServeConfig(max_frame_bytes=512)
        server, transport, host, port = await _serving(engine, config)
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(encode_frame(Hello(), 512))
        await writer.drain()
        assert decode_reply(await reader.readline()).op == "welcome"
        writer.write(b"x" * 2048 + b"\n")
        await writer.drain()
        reply = decode_reply(await reader.readline())
        assert isinstance(reply, ErrorReply)
        assert reply.code == "frame_too_large"
        assert await reader.readline() == b""  # no resync point: closed
        assert server.protocol_errors == 1
        writer.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_pipelined_requests_one_connection(engine, workload):
    async def run():
        server, transport, host, port = await _serving(engine)
        client = await ServeClient.connect(host, port)
        items = [i for i in workload.timeline if i.is_request][:10]
        futures = [
            client.post_request(
                item.user_id,
                item.location.x,
                item.location.y,
                item.location.t,
                service=item.service,
            )
            for item in items
        ]
        replies = await asyncio.gather(*futures)
        assert all(isinstance(r, DecisionReply) for r in replies)
        # FIFO queue + pipelined ids: replies correlate 1:1 and the
        # msgids are strictly increasing in send order.
        msgids = [r.msgid for r in replies]
        assert msgids == sorted(msgids)
        await client.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())
