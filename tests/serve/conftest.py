"""Shared serving-test fixtures.

The serving workload is session-scoped (city generation is the slow
part); engines are function-scoped because serving mutates them.
"""

from __future__ import annotations

import pytest

from repro.obs.config import TelemetryConfig
from repro.serve.loadgen import (
    WorkloadConfig,
    build_engine,
    build_workload,
)

#: Small enough to keep every serving test sub-second.
SMALL_WORKLOAD = WorkloadConfig(
    seed=11, n_commuters=8, n_wanderers=4, days=4
)


@pytest.fixture(scope="session")
def workload_config() -> WorkloadConfig:
    return SMALL_WORKLOAD


@pytest.fixture(scope="session")
def workload(workload_config):
    """Read-only serving timeline shared by the whole module."""
    return build_workload(workload_config, max_requests=120)


@pytest.fixture()
def engine(workload, workload_config):
    """A fresh warm-store engine (no telemetry)."""
    return build_engine(workload, workload_config)


@pytest.fixture()
def telemetry_engine(workload, workload_config):
    """A fresh warm-store engine with a ring-buffered event stream."""
    return build_engine(
        workload,
        workload_config,
        TelemetryConfig(enabled=True, ring_buffer=8192),
    )
