"""End-to-end distributed tracing through the serving stack.

One TCP request must reconstruct to a single causal tree — client send
→ admission → queue wait → dispatch → engine stages → reply — from a
JSONL sink by ``trace_id`` alone; interleaved loopback clients (and a
drain racing in-flight work) must never produce orphan spans; and span
trees from any JSONL sink must reconstruct acyclically (a hypothesis
property over arbitrary nesting shapes).
"""

from __future__ import annotations

import asyncio
import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.config import TelemetryConfig
from repro.obs.sinks import read_jsonl
from repro.obs.tracing import Tracer
from repro.serve.client import ServeClient
from repro.serve.loadgen import build_engine
from repro.serve.protocol import DecisionReply, ErrorReply
from repro.serve.server import ServeConfig, TrustedServer
from repro.serve.transports import LoopbackTransport, TcpTransport

from tests.serve.test_server import request_frames, update_frame


def span_events(events):
    return [e for e in events if e.get("type") == "span"]


def by_trace(events):
    trees: dict[str, list[dict]] = {}
    for event in span_events(events):
        if event.get("trace_id") is not None:
            trees.setdefault(event["trace_id"], []).append(event)
    return trees


def assert_tree_complete(spans):
    """One root, every parent_id resolves in-tree: no orphans."""
    ids = {s["span_id"] for s in spans}
    roots = [s for s in spans if s["parent_id"] is None]
    assert len(roots) == 1, [s["name"] for s in spans]
    assert roots[0]["name"] == "client.request"
    for span in spans:
        if span["parent_id"] is not None:
            assert span["parent_id"] in ids, (
                f"orphan span {span['name']}: parent "
                f"{span['parent_id']} not in tree"
            )


def test_single_tcp_request_is_one_causal_tree(
    workload, workload_config, tmp_path
):
    """The acceptance criterion: client → … → reply, one trace_id."""
    jsonl = tmp_path / "trace.jsonl"
    engine = build_engine(
        workload,
        workload_config,
        TelemetryConfig(enabled=True, jsonl_path=str(jsonl)),
    )

    async def run():
        server = await TrustedServer(engine).start()
        transport = TcpTransport(server)
        host, port = await transport.start()
        client = await ServeClient.connect(
            host, port, telemetry=engine.telemetry, trace=True
        )
        assert client.trace_enabled
        (frame,) = request_frames(workload, 1)
        reply = await client.request(
            frame.user_id, frame.x, frame.y, frame.t, frame.service
        )
        await client.close()
        await transport.stop()
        await server.close()
        return reply

    reply = asyncio.run(run())
    assert isinstance(reply, DecisionReply)
    assert reply.trace is not None
    trace_id = reply.trace.split("-")[0]
    engine.telemetry.close()

    trees = by_trace(read_jsonl(str(jsonl)))
    assert list(trees) == [trace_id]
    spans = trees[trace_id]
    assert_tree_complete(spans)
    names = {s["name"] for s in spans}
    # The full serving chain is present in the one tree.
    assert {
        "client.request",
        "serve.admission",
        "serve.queue_wait",
        "serve.dispatch",
        "ts.request",
    } <= names
    stage_spans = {n for n in names if n.startswith("engine.")}
    assert "engine.audit" in stage_spans
    assert len(stage_spans) >= 3
    # Stage spans hang under ts.request, which hangs under dispatch.
    by_id = {s["span_id"]: s for s in spans}
    ts_span = next(s for s in spans if s["name"] == "ts.request")
    assert by_id[ts_span["parent_id"]]["name"] == "serve.dispatch"
    for span in spans:
        if span["name"].startswith("engine."):
            assert by_id[span["parent_id"]]["name"] == "ts.request"
    # The decision event joined the same trace.
    decisions = [
        e
        for e in read_jsonl(str(jsonl))
        if e.get("type") == "ts.decision"
    ]
    assert decisions and decisions[0]["trace_id"] == trace_id


def test_interleaved_loopback_clients_no_orphans(
    workload, workload_config
):
    """8 traced clients, interleaved pipelined sends, drain mid-flight."""
    engine = build_engine(
        workload,
        workload_config,
        TelemetryConfig(enabled=True, ring_buffer=16384),
    )

    async def run():
        server = await TrustedServer(engine).start()
        transport = LoopbackTransport(server)
        conns = [
            transport.connect(client=f"c{i}", trace=True)
            for i in range(8)
        ]
        frames = request_frames(workload, 32)
        futures = []
        # Interleave: consecutive frames go to different connections.
        for index, frame in enumerate(frames[:24]):
            futures.append(conns[index % 8].post(frame))
            futures.append(
                conns[(index + 3) % 8].post(
                    update_frame(workload, frame_id=1000 + index)
                )
            )
            if index % 5 == 0:
                await asyncio.sleep(0)
        # Drain while sends are still in flight: the tail gets
        # "draining" replies, which must still close their spans.
        drain_task = asyncio.create_task(server.drain())
        for index, frame in enumerate(frames[24:]):
            futures.append(conns[index % 8].post(frame))
        replies = await asyncio.gather(*futures)
        await drain_task
        for conn in conns:
            conn.close()
        await server.close()
        return replies

    replies = asyncio.run(run())
    ring = engine.telemetry.ring()
    assert ring is not None
    trees = by_trace(list(ring.events))
    assert trees, "traced run recorded no trace trees"
    for spans in trees.values():
        assert_tree_complete(spans)
    # Every reply (decision, ack, or draining rejection) echoed its
    # trace, and each echoed trace has a complete tree.
    echoed = {
        r.trace.split("-")[0] for r in replies if r.trace is not None
    }
    assert echoed
    assert echoed <= set(trees)
    served = {
        t
        for t, spans in trees.items()
        if any(s["name"] == "serve.dispatch" for s in spans)
    }
    rejected = [
        r
        for r in replies
        if isinstance(r, ErrorReply) and r.code == "draining"
    ]
    assert served, "no request made it through dispatch before drain"
    if rejected:
        # Rejected traces end at admission: root + admission only.
        for reply in rejected:
            if reply.trace is None:
                continue
            spans = trees[reply.trace.split("-")[0]]
            names = {s["name"] for s in spans}
            assert "serve.dispatch" not in names
            assert "serve.admission" in names


def test_untraced_session_pays_no_tracing(workload, workload_config):
    """No negotiation → no spans, no trace echoes, no recent_traces."""
    engine = build_engine(
        workload, workload_config, TelemetryConfig(enabled=True)
    )

    async def run():
        server = await TrustedServer(engine).start()
        conn = LoopbackTransport(server).connect()  # trace=False
        (frame,) = request_frames(workload, 1)
        reply = await conn.send(frame)
        await server.close()
        return server, reply

    server, reply = asyncio.run(run())
    assert isinstance(reply, DecisionReply)
    assert reply.trace is None
    assert len(server.recent_traces) == 0
    assert engine.telemetry.tracer.finished == (
        # Only the engine's own local ts.request span fired.
        1
    )


# ---------------------------------------------------------------------
# acyclic reconstruction property
# ---------------------------------------------------------------------

_FILE_SEQ = itertools.count()

tree_shapes = st.recursive(
    st.just(()),
    lambda children: st.tuples(children, children),
    max_leaves=12,
)


@settings(max_examples=25, deadline=None)
@given(shape=tree_shapes, data=st.data())
def test_jsonl_span_trees_reconstruct_acyclically(
    shape, data, tmp_path_factory
):
    """Arbitrary nesting shapes emit spans whose parent links form a
    forest: every chain terminates at a root without revisiting."""
    path = tmp_path_factory.mktemp("spans") / (
        f"spans_{next(_FILE_SEQ)}.jsonl"
    )
    from repro.obs.sinks import JsonlSink

    sink = JsonlSink(str(path))
    tracer = Tracer(sinks=[sink], seed=data.draw(st.integers(0, 2**16)))

    def walk(node, depth=0):
        with tracer.span(f"n{depth}"):
            for child in node:
                walk(child, depth + 1)

    walk(shape)
    walk(shape)  # a second root: the file holds a forest, not a tree
    sink.close()

    spans = span_events(read_jsonl(str(path)))
    assert len(spans) >= 2
    by_id = {s["span_id"]: s for s in spans}
    assert len(by_id) == len(spans)  # span ids are unique
    for span in spans:
        seen = set()
        node = span
        while node["parent_id"] is not None:
            assert node["span_id"] not in seen, "cycle in span tree"
            seen.add(node["span_id"])
            assert node["parent_id"] in by_id, "orphan parent link"
            node = by_id[node["parent_id"]]
        assert node["parent_id"] is None  # terminated at a root
