"""Multi-process supervisor: worker handshake, kill/respawn, verify."""

from __future__ import annotations

import asyncio
import json
import os
import signal
from pathlib import Path

from repro.serve.loadgen import LoadgenConfig, WorkloadConfig, run_loadgen
from repro.serve.server import ServeConfig
from repro.serve.supervisor import (
    WorkerSupervisor,
    announce,
    worker_shards,
)

DAEMON = Path(__file__).resolve().parents[2] / "tools" / "serve_daemon.py"
WIDE_OPEN = ServeConfig(max_queue_depth=100_000, max_inflight=100_000)


class TestShardAssignment:
    def test_workers_cover_all_shards_disjointly(self):
        assignments = [worker_shards(w, 2, 5) for w in range(2)]
        assert assignments == [[0, 2, 4], [1, 3]]
        flat = [s for shards in assignments for s in shards]
        assert sorted(flat) == list(range(5))

    def test_announce_roundtrip(self):
        line = announce(1, 7411, {0: -1, 2: 41})
        info = json.loads(line)
        assert info["repro_worker"] == 1
        assert info["port"] == 7411
        assert info["applied"] == {"0": -1, "2": 41}

    def test_supervisor_validates_shape(self, tmp_path):
        import pytest

        with pytest.raises(ValueError, match="workers"):
            WorkerSupervisor(0, 4, tmp_path)
        with pytest.raises(ValueError, match="shards"):
            WorkerSupervisor(4, 2, tmp_path)


class TestEndToEnd:
    def test_kill_respawn_wal_restore_verifies(self, tmp_path):
        """The PR's acceptance bar, in-process.

        Two workers over four durable shards serve a full loadgen
        pass; one worker is SIGKILLed mid-pass.  The supervisor
        respawns it, the worker replays its WALs, pending operations
        are re-sent — and the complete decision stream still equals
        the offline replay (``--verify``), with per-user FIFO intact.
        """

        async def run():
            supervisor = WorkerSupervisor(
                2,
                4,
                tmp_path,
                config=WIDE_OPEN,
                worker_args=[
                    "--seed", "11",
                    "--max-queue-depth", "100000",
                    "--max-inflight", "100000",
                ],
                daemon_path=DAEMON,
            )
            await supervisor.start()

            async def killer():
                await asyncio.sleep(0.6)
                victim = supervisor.workers[1]
                assert victim.process is not None
                os.kill(victim.process.pid, signal.SIGKILL)

            kill_task = asyncio.create_task(killer())
            report = await run_loadgen(
                LoadgenConfig(
                    workload=WorkloadConfig(),
                    serve=WIDE_OPEN,
                    requests=200,
                    clients=4,
                    rate=500.0,
                    transport="loopback",
                    verify=True,
                    telemetry_enabled=False,
                ),
                server=supervisor,
            )
            await kill_task
            respawns = [w.respawns for w in supervisor.workers]
            await supervisor.close()
            return report, respawns

        report, respawns = asyncio.run(run())
        assert report.ok, report.to_dict()
        assert report.verified is True and report.mismatches == 0
        assert report.decisions == 200
        assert sum(respawns) >= 1, "the SIGKILL never landed"
        # The WAL directories exist per shard.
        shard_dirs = sorted(p.name for p in tmp_path.iterdir())
        assert shard_dirs == [f"shard-{i:03d}" for i in range(4)]
