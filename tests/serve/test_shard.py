"""Shard runtime/router behavior (routing, durability, admission)."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.loadgen import SERVICE, decision_key
from repro.serve.protocol import (
    DecisionReply,
    DrainRequest,
    ErrorReply,
    HealthRequest,
    Hello,
    LocationUpdate,
    MetricsRequest,
    ServiceRequest,
    StatsRequest,
    UpdateAck,
    Welcome,
    decode_reply_fast,
)
from repro.serve.server import ServeConfig
from repro.serve.shard import (
    ShardRouter,
    ShardRuntime,
    shard_of,
)

WIDE_OPEN = ServeConfig(max_queue_depth=100_000, max_inflight=100_000)


def frames_for(timeline):
    frames = []
    for index, item in enumerate(timeline, start=1):
        if item.is_request:
            frames.append(
                ServiceRequest(
                    id=index,
                    user_id=item.user_id,
                    x=item.location.x,
                    y=item.location.y,
                    t=item.location.t,
                    service=item.service or SERVICE,
                )
            )
        else:
            frames.append(
                LocationUpdate(
                    id=index,
                    user_id=item.user_id,
                    x=item.location.x,
                    y=item.location.y,
                    t=item.location.t,
                )
            )
    return frames


class TestShardOf:
    def test_partition_is_modular(self):
        assert shard_of(0, 4) == 0
        assert shard_of(7, 4) == 3
        assert shard_of(8, 4) == 0

    def test_all_users_covered(self):
        owners = {shard_of(u, 3) for u in range(30)}
        assert owners == {0, 1, 2}


class TestShardRuntime:
    def test_owned_users_partition(self, workload, workload_config):
        runtimes = [
            ShardRuntime(workload, workload_config, s, 4)
            for s in range(4)
        ]
        owned = [u for r in runtimes for u in r.owned_users]
        assert sorted(owned) == workload.user_ids

    def test_pseudonym_prefix_per_shard(self, workload, workload_config):
        runtime = ShardRuntime(workload, workload_config, 2, 4)
        user = runtime.owned_users[0]
        assert runtime.engine.sessions.pseudonym(user).startswith("p2.")

    def test_store_warm_with_all_users(self, workload, workload_config):
        runtime = ShardRuntime(workload, workload_config, 1, 4)
        assert sorted(runtime.engine.store.user_ids()) == (
            workload.user_ids
        )

    def test_direct_execute_assigns_local_seqs(
        self, workload, workload_config
    ):
        runtime = ShardRuntime(workload, workload_config, 0, 1)
        item = workload.timeline[0]
        frame = LocationUpdate(
            id=1, user_id=item.user_id, x=item.location.x,
            y=item.location.y, t=item.location.t,
        )
        assert isinstance(runtime.execute(frame), UpdateAck)
        assert runtime.applied_seq == 0
        runtime.execute(frame)
        assert runtime.applied_seq == 1

    def test_duplicate_seq_answered_from_cache(
        self, workload, workload_config
    ):
        runtime = ShardRuntime(workload, workload_config, 0, 1)
        request = next(
            item for item in workload.timeline if item.is_request
        )
        frame = ServiceRequest(
            id=5, user_id=request.user_id, x=request.location.x,
            y=request.location.y, t=request.location.t,
            service=SERVICE, seq=0,
        )
        first = runtime.execute(frame)
        assert isinstance(first, DecisionReply)
        fingerprint = runtime.fingerprint()
        resent = runtime.execute(
            ServiceRequest(
                id=99, user_id=request.user_id, x=request.location.x,
                y=request.location.y, t=request.location.t,
                service=SERVICE, seq=0,
            )
        )
        # Same decision, new correlation id, NO re-execution.
        assert isinstance(resent, DecisionReply)
        assert resent.id == 99
        assert decision_key(resent) == decision_key(first)
        assert runtime.fingerprint() == fingerprint

    def test_wal_replay_reconstructs_fingerprint(
        self, workload, workload_config, tmp_path
    ):
        live = ShardRuntime(
            workload, workload_config, 0, 2, wal_dir=tmp_path
        )
        for frame in frames_for(workload.timeline[:120]):
            if shard_of(frame.user_id, 2) == 0:
                live.execute(frame)
        fingerprint = live.fingerprint()
        live.close()
        restored = ShardRuntime(
            workload, workload_config, 0, 2, wal_dir=tmp_path
        )
        assert restored.replayed > 0
        assert restored.applied_seq == live.applied_seq
        assert restored.fingerprint() == fingerprint
        restored.close()


class TestShardRouter:
    def test_routing_and_decisions(self, workload, workload_config):
        async def run():
            router = ShardRouter(
                workload, workload_config, n_shards=4, config=WIDE_OPEN
            )
            await router.start()
            session = router.open_session("t")
            decisions = 0
            for frame in frames_for(workload.timeline[:200]):
                reply = await router.submit(session, frame)
                assert not isinstance(reply, ErrorReply), reply
                if isinstance(reply, DecisionReply):
                    decisions += 1
            stats = await router.submit(session, StatsRequest(id=1))
            assert stats.served == 200
            await router.close()
            return decisions

        assert asyncio.run(run()) > 0

    def test_wrong_shard_rejected(self, workload, workload_config):
        async def run():
            router = ShardRouter(
                workload,
                workload_config,
                n_shards=4,
                config=WIDE_OPEN,
                shard_ids=[0, 2],
            )
            await router.start()
            session = router.open_session("t")
            unowned = next(
                u for u in workload.user_ids if u % 4 in (1, 3)
            )
            reply = await router.submit(
                session,
                LocationUpdate(id=1, user_id=unowned, x=0.0, y=0.0,
                               t=0.0),
            )
            await router.close()
            return reply

        reply = asyncio.run(run())
        assert isinstance(reply, ErrorReply)
        assert reply.code == "wrong_shard"

    def test_hello_and_control_ops(self, workload, workload_config):
        async def run():
            router = ShardRouter(
                workload, workload_config, n_shards=2, config=WIDE_OPEN
            )
            await router.start()
            session = router.open_session("t")
            welcome = await router.submit(session, Hello(client="t"))
            assert isinstance(welcome, Welcome)
            assert welcome.server.endswith("-router")
            health = await router.submit(session, HealthRequest(id=2))
            assert health.status == "ok"
            metrics = await router.submit(
                session, MetricsRequest(id=3)
            )
            # Telemetry defaults off: the shared renderer says so.
            assert isinstance(metrics, ErrorReply)
            assert metrics.code == "no_telemetry"
            drained = await router.submit(session, DrainRequest(id=4))
            assert drained.pending == 0
            rejected = await router.submit(
                session,
                LocationUpdate(id=5, user_id=0, x=0.0, y=0.0, t=0.0),
            )
            assert isinstance(rejected, ErrorReply)
            assert rejected.code == "draining"
            await router.close()

        asyncio.run(run())

    def test_queue_shed_with_retry_after(self, workload, workload_config):
        async def run():
            router = ShardRouter(
                workload,
                workload_config,
                n_shards=1,
                config=ServeConfig(max_queue_depth=1,
                                   max_inflight=100_000),
            )
            # No start(): the dispatcher never drains, so the second
            # submit must shed on queue depth.
            session = router.open_session("t")
            item = workload.timeline[0]
            first = asyncio.ensure_future(
                router.submit(
                    session,
                    LocationUpdate(
                        id=1, user_id=item.user_id, x=item.location.x,
                        y=item.location.y, t=item.location.t,
                    ),
                )
            )
            await asyncio.sleep(0)
            shed = await router.submit(
                session,
                LocationUpdate(
                    id=2, user_id=item.user_id, x=item.location.x,
                    y=item.location.y, t=item.location.t,
                ),
            )
            first.cancel()
            return shed

        shed = asyncio.run(run())
        assert isinstance(shed, ErrorReply)
        assert shed.code == "overloaded"
        assert shed.retry_after is not None and shed.retry_after > 0

    def test_serve_line_firehose(self, workload, workload_config):
        from repro.serve.protocol import encode_frame_fast

        router = ShardRouter(
            workload, workload_config, n_shards=4, config=WIDE_OPEN
        )
        decisions = 0
        for frame in frames_for(workload.timeline[:200]):
            line = encode_frame_fast(
                frame, router.config.max_frame_bytes
            )
            reply = decode_reply_fast(
                router.serve_line(line),
                router.config.max_frame_bytes,
            )
            assert not isinstance(reply, ErrorReply), reply
            if isinstance(reply, DecisionReply):
                decisions += 1
        assert decisions > 0
        assert router.served == 200

    def test_serve_line_bad_input_counts_protocol_error(
        self, workload, workload_config
    ):
        router = ShardRouter(
            workload, workload_config, n_shards=1, config=WIDE_OPEN
        )
        reply = decode_reply_fast(
            router.serve_line(b'{"op": "nonsense"}\n'),
            router.config.max_frame_bytes,
        )
        assert isinstance(reply, ErrorReply)
        assert router.protocol_errors == 1

    def test_n_shards_validated(self, workload, workload_config):
        with pytest.raises(ValueError):
            ShardRouter(workload, workload_config, n_shards=0)
