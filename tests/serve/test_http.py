"""HTTP transport tests: the NDJSON codec behind ``POST /v1/frame``."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.client import ServeClientError
from repro.serve.gate import ConnectionGate, GateConfig
from repro.serve.http import HttpServeClient, HttpTransport
from repro.serve.protocol import (
    DecisionReply,
    ErrorReply,
    Hello,
    StatsRequest,
    UpdateAck,
    decode_reply,
    encode_frame,
)
from repro.serve.server import TrustedServer

TOKEN = "http-test-token"


def first_request(workload):
    return next(i for i in workload.timeline if i.is_request)


def first_update(workload):
    return next(i for i in workload.timeline if not i.is_request)


async def _serving(engine, gate=None):
    server = TrustedServer(engine)
    transport = HttpTransport(server, gate=gate)
    host, port = await transport.start()
    return server, transport, host, port


async def _raw_exchange(host, port, payload: bytes):
    """One raw request on a fresh socket; returns the raw response."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(payload)
    await writer.drain()
    writer.write_eof()
    response = await reader.read()
    writer.close()
    return response


def _post(body: bytes, length: "int | None" = None) -> bytes:
    content_length = len(body) if length is None else length
    return (
        f"POST /v1/frame HTTP/1.1\r\n"
        f"Content-Length: {content_length}\r\n"
        "\r\n"
    ).encode("ascii") + body


def test_http_end_to_end(engine, workload):
    async def run():
        server, transport, host, port = await _serving(engine)
        client = await HttpServeClient.connect(host, port, client="e2e")
        assert client.welcome.session == "s1"
        update = first_update(workload)
        ack = await client.post(
            _update_frame(client, update)
        )
        assert isinstance(ack, UpdateAck)
        request = first_request(workload)
        decision = await client.post(_request_frame(client, request))
        assert isinstance(decision, DecisionReply)
        stats = await client.stats()
        assert stats.served == 2 and stats.sessions == 1
        drained = await client.drain()
        assert drained.pending == 0
        health = await client.health()
        assert health.status in ("ok", "draining")
        await client.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())


def _update_frame(client, item):
    from repro.serve.protocol import LocationUpdate

    return LocationUpdate(
        id=client.next_id(),
        user_id=item.user_id,
        x=item.location.x,
        y=item.location.y,
        t=item.location.t,
    )


def _request_frame(client, item):
    from repro.serve.protocol import ServiceRequest

    return ServiceRequest(
        id=client.next_id(),
        user_id=item.user_id,
        x=item.location.x,
        y=item.location.y,
        t=item.location.t,
        service=item.service or "default",
    )


def test_http_batch_pipelines_in_order(engine, workload):
    async def run():
        server, transport, host, port = await _serving(engine)
        client = await HttpServeClient.connect(host, port)
        items = [i for i in workload.timeline if i.is_request][:10]
        futures = [
            client.post(_request_frame(client, item)) for item in items
        ]
        replies = await asyncio.gather(*futures)
        assert all(isinstance(r, DecisionReply) for r in replies)
        # Same FIFO property the TCP pipelining test pins: send order
        # is serve order, across POST batch boundaries.
        msgids = [r.msgid for r in replies]
        assert msgids == sorted(msgids)
        await client.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_http_transport_refusals(engine):
    """Transport misuse earns an HTTP status and a closed connection."""

    async def run():
        server, transport, host, port = await _serving(engine)

        response = await _raw_exchange(
            host, port, b"GET /v1/frame HTTP/1.1\r\n\r\n"
        )
        assert response.startswith(b"HTTP/1.1 405 ")

        response = await _raw_exchange(
            host,
            port,
            (
                b"POST /other HTTP/1.1\r\n"
                b"Content-Length: 0\r\n\r\n"
            ),
        )
        assert response.startswith(b"HTTP/1.1 404 ")

        response = await _raw_exchange(
            host, port, b"POST /v1/frame HTTP/1.1\r\n\r\n"
        )
        assert response.startswith(b"HTTP/1.1 411 ")

        response = await _raw_exchange(
            host,
            port,
            (
                b"POST /v1/frame HTTP/1.1\r\n"
                b"Content-Length: nope\r\n\r\n"
            ),
        )
        assert response.startswith(b"HTTP/1.1 400 ")

        oversized = transport.max_body_bytes + 1
        response = await _raw_exchange(
            host, port, _post(b"", length=oversized)
        )
        assert response.startswith(b"HTTP/1.1 413 ")

        # Transport refusals are protocol errors, not served ops.
        assert server.served == 0
        assert server.protocol_errors == 5
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_http_hello_required_and_bad_line_resync(engine):
    """Application outcomes ride 200 bodies, one line per line."""

    async def run():
        server, transport, host, port = await _serving(engine)
        body = (
            encode_frame(StatsRequest(id=7))  # pre-hello: refused
            + b"this is { not json\n"  # undecodable: refused
            + encode_frame(Hello(client="late"))
            + encode_frame(StatsRequest(id=8))  # now served
        )
        response = await _raw_exchange(host, port, _post(body))
        assert response.startswith(b"HTTP/1.1 200 ")
        _head, _sep, reply_body = response.partition(b"\r\n\r\n")
        lines = [ln for ln in reply_body.split(b"\n") if ln.strip()]
        assert len(lines) == 4
        first = decode_reply(lines[0] + b"\n")
        assert isinstance(first, ErrorReply)
        assert first.code == "hello_required" and first.id == 7
        second = decode_reply(lines[1] + b"\n")
        assert isinstance(second, ErrorReply)
        assert second.code == "bad_json"
        assert decode_reply(lines[2] + b"\n").op == "welcome"
        stats = decode_reply(lines[3] + b"\n")
        assert stats.op == "stats_reply" and stats.id == 8
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_http_gate_bad_token_closes_after_typed_line(engine):
    async def run():
        gate = ConnectionGate(GateConfig(tokens=(TOKEN,)))
        server, transport, host, port = await _serving(
            engine, gate=gate
        )
        with pytest.raises(ServeClientError) as exc_info:
            await HttpServeClient.connect(
                host, port, token="not-the-token"
            )
        rejection = exc_info.value.reply
        assert isinstance(rejection, ErrorReply)
        assert rejection.code == "bad_token"
        assert gate.rejected == {"bad_token": 1}
        assert server.served == 0

        client = await HttpServeClient.connect(host, port, token=TOKEN)
        assert gate.admitted_connections == 1
        stats = await client.stats()
        assert stats.op == "stats_reply"
        await client.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_http_gate_rate_limit_before_sequencer(engine, workload):
    async def run():
        gate = ConnectionGate(
            GateConfig(tokens=(TOKEN,), rate_limit=5.0, burst=2.0)
        )
        server, transport, host, port = await _serving(
            engine, gate=gate
        )
        client = await HttpServeClient.connect(host, port, token=TOKEN)
        update = first_update(workload)
        replies = await asyncio.gather(
            *(
                client.post(_update_frame(client, update))
                for _ in range(8)
            )
        )
        limited = [
            r
            for r in replies
            if isinstance(r, ErrorReply) and r.code == "rate_limited"
        ]
        acked = [r for r in replies if isinstance(r, UpdateAck)]
        assert limited and acked
        assert all((r.retry_after or 0.0) > 0.0 for r in limited)
        assert server.served == len(acked) == gate.admitted_ops
        assert gate.rejected["rate_limited"] == len(limited)
        await client.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())


def test_http_gate_ticket_released_on_disconnect(engine):
    async def run():
        gate = ConnectionGate(
            GateConfig(tokens=(TOKEN,), max_connections=1)
        )
        server, transport, host, port = await _serving(
            engine, gate=gate
        )
        first = await HttpServeClient.connect(host, port, token=TOKEN)
        with pytest.raises(ServeClientError) as exc_info:
            await HttpServeClient.connect(host, port, token=TOKEN)
        assert exc_info.value.reply is not None
        assert exc_info.value.reply.code == "connection_limit"
        await first.close()
        # The slot frees once the handler unwinds; poll briefly.
        for _ in range(50):
            if gate.connections == 0:
                break
            await asyncio.sleep(0.01)
        second = await HttpServeClient.connect(host, port, token=TOKEN)
        await second.close()
        await transport.stop()
        await server.close()

    asyncio.run(run())
