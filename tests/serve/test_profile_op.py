"""The ``profile`` protocol op: lifecycle, errors, engine attribution."""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.obs.profile import IDLE_LABEL, OTHER_LABEL
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.protocol import ErrorReply, ProfileReply, ProfileRequest
from repro.serve.server import ServeConfig, TrustedServer
from repro.serve.transports import LoopbackTransport, TcpTransport

from tests.serve.test_introspection import telemetry_server
from tests.serve.test_server import request_frames


class TestLifecycle:
    def test_start_status_stop_capture(self, workload, workload_config):
        server = telemetry_server(workload, workload_config)

        async def run():
            await server.start()
            conn = LoopbackTransport(server).connect()
            idle = await conn.send(ProfileRequest(id=1))
            started = await conn.send(
                ProfileRequest(id=2, action="start", interval_ms=1.0)
            )
            running = await conn.send(
                ProfileRequest(id=3, action="status")
            )
            for frame in request_frames(workload, 6):
                await conn.send(frame)
            await asyncio.sleep(0.05)
            stopped = await conn.send(
                ProfileRequest(id=4, action="stop")
            )
            collapsed = await conn.send(
                ProfileRequest(id=5, action="collapsed")
            )
            stages = await conn.send(
                ProfileRequest(id=6, action="stages")
            )
            await server.close()
            return idle, started, running, stopped, collapsed, stages

        idle, started, running, stopped, collapsed, stages = (
            asyncio.run(run())
        )
        assert isinstance(idle, ProfileReply)
        assert idle.state == "idle" and idle.samples == 0
        assert isinstance(started, ProfileReply)
        assert started.state == "running"
        assert isinstance(running, ProfileReply)
        assert running.state == "running"
        assert isinstance(stopped, ProfileReply)
        assert stopped.state == "stopped"
        assert stopped.samples > 0
        assert stopped.duration_s > 0.0
        # The capture remains queryable after stop.
        assert isinstance(collapsed, ProfileReply)
        assert collapsed.state == "stopped"
        for line in collapsed.body.splitlines():
            frames, _space, count = line.rpartition(" ")
            assert frames and int(count) > 0
        assert isinstance(stages, ProfileReply)
        payload = json.loads(stages.body)
        assert payload["samples"] == stopped.samples
        assert "stacks" not in payload  # table only; stacks via collapsed
        assert {row["stage"] for row in payload["rows"]}

    def test_restart_after_stop(self, workload, workload_config):
        server = telemetry_server(workload, workload_config)

        async def run():
            await server.start()
            conn = LoopbackTransport(server).connect()
            for _ in range(2):
                first = await conn.send(
                    ProfileRequest(
                        id=1, action="start", interval_ms=1.0
                    )
                )
                assert isinstance(first, ProfileReply)
                await asyncio.sleep(0.02)
                await conn.send(ProfileRequest(id=2, action="stop"))
            await server.close()

        asyncio.run(run())


class TestErrors:
    def test_state_and_field_errors(self, workload, workload_config):
        server = telemetry_server(workload, workload_config)

        async def run():
            await server.start()
            conn = LoopbackTransport(server).connect()
            stop_idle = await conn.send(
                ProfileRequest(id=1, action="stop")
            )
            peek_idle = await conn.send(
                ProfileRequest(id=2, action="collapsed")
            )
            bad_interval = await conn.send(
                ProfileRequest(id=3, action="start", interval_ms=0.0)
            )
            await conn.send(
                ProfileRequest(id=4, action="start", interval_ms=1.0)
            )
            double = await conn.send(
                ProfileRequest(id=5, action="start", interval_ms=1.0)
            )
            unknown = await conn.send(
                ProfileRequest(id=6, action="flame")
            )
            await server.close()
            return stop_idle, peek_idle, bad_interval, double, unknown

        stop_idle, peek_idle, bad_interval, double, unknown = (
            asyncio.run(run())
        )
        assert isinstance(stop_idle, ErrorReply)
        assert stop_idle.code == "profiler_state"
        assert isinstance(peek_idle, ErrorReply)
        assert peek_idle.code == "profiler_state"
        assert isinstance(bad_interval, ErrorReply)
        assert bad_interval.code == "bad_field"
        assert isinstance(double, ErrorReply)
        assert double.code == "profiler_state"
        assert isinstance(unknown, ErrorReply)
        assert unknown.code == "bad_field"
        assert "flame" in unknown.message

    def test_requires_telemetry(self, engine):
        server = TrustedServer(engine)  # telemetry disabled

        async def run():
            await server.start()
            conn = LoopbackTransport(server).connect()
            reply = await conn.send(
                ProfileRequest(id=1, action="start")
            )
            await server.close()
            return reply

        reply = asyncio.run(run())
        assert isinstance(reply, ErrorReply)
        assert reply.code == "no_telemetry"


class TestEngineAttribution:
    def test_samples_attribute_to_engine_stages(
        self, workload, workload_config
    ):
        """Driven requests show up under real stage labels, and the
        stage shares account for all sampled request time."""
        server = telemetry_server(workload, workload_config)

        async def run():
            await server.start()
            conn = LoopbackTransport(server).connect()
            await conn.send(
                ProfileRequest(id=1, action="start", interval_ms=0.5)
            )
            payload = None
            deadline = time.monotonic() + 5.0
            frames = request_frames(workload, 120)
            while time.monotonic() < deadline:
                for frame in frames:
                    await conn.send(frame)
                stages = await conn.send(
                    ProfileRequest(id=2, action="stages")
                )
                assert isinstance(stages, ProfileReply)
                candidate = json.loads(stages.body)
                if candidate["request_samples"] >= 5:
                    payload = candidate
                    break
            await conn.send(ProfileRequest(id=3, action="stop"))
            await server.close()
            return payload

        payload = asyncio.run(run())
        assert payload is not None, "no request samples within deadline"
        stage_names = {s.name for s in server.engine.stages}
        labels = {row["stage"] for row in payload["rows"]}
        assert labels <= stage_names | {OTHER_LABEL, IDLE_LABEL}
        assert labels & (stage_names | {OTHER_LABEL})
        shares = [
            row["share_pct"]
            for row in payload["rows"]
            if row["share_pct"] is not None
        ]
        assert sum(shares) == pytest.approx(100.0)


class TestClientOverTcp:
    def test_client_profile_roundtrip(self, workload, workload_config):
        server = telemetry_server(workload, workload_config)

        async def run():
            await server.start()
            transport = TcpTransport(server)
            host, port = await transport.start()
            client = await ServeClient.connect(
                host, port, client="profile-test"
            )
            started = await client.profile(
                action="start", interval_ms=1.0
            )
            for frame in request_frames(workload, 4):
                await client.request(
                    frame.user_id,
                    frame.x,
                    frame.y,
                    frame.t,
                    frame.service,
                )
            await asyncio.sleep(0.03)
            stopped = await client.profile(action="stop")
            collapsed = await client.profile(action="collapsed")
            try:
                await client.profile(action="stop")  # nothing running
            except ServeClientError as exc:
                error = exc
            else:
                error = None
            await client.close()
            await transport.stop()
            await server.close()
            return started, stopped, collapsed, error

        started, stopped, collapsed, error = asyncio.run(run())
        assert started.state == "running"
        assert stopped.state == "stopped" and stopped.samples > 0
        assert isinstance(collapsed, ProfileReply)
        assert collapsed.body
        assert error is not None
        assert "profiler_state" in str(error)
