"""Serving determinism: concurrent clients == offline batch replay.

The acceptance property of the serving frontend (see
``repro/serve/loadgen.py`` for the warm-store construction that makes
it hold): the decision stream served to N concurrent clients is — per
user, field for field — exactly the stream ``Engine.process_batch``
produces for the same workload offline.  Pseudonym *strings* and msgids
are global-issue-order artifacts and excluded; decisions, contexts,
LBQID attribution, steps, required k, and rotation events all must
match exactly.
"""

from __future__ import annotations

import asyncio

from repro.serve.loadgen import (
    LoadgenConfig,
    build_engine,
    decision_key,
    offline_replay,
    run_loadgen,
)
from repro.serve.protocol import (
    DecisionReply,
    LocationUpdate,
    ServiceRequest,
)
from repro.serve.server import ServeConfig, TrustedServer
from repro.serve.shard import ShardRouter
from repro.serve.transports import LoopbackTransport

WIDE_OPEN = ServeConfig(max_queue_depth=100_000, max_inflight=100_000)


def frames_for(items, next_id):
    frames = []
    for item in items:
        if item.is_request:
            frames.append(
                ServiceRequest(
                    id=next_id(),
                    user_id=item.user_id,
                    x=item.location.x,
                    y=item.location.y,
                    t=item.location.t,
                    service=item.service,
                )
            )
        else:
            frames.append(
                LocationUpdate(
                    id=next_id(),
                    user_id=item.user_id,
                    x=item.location.x,
                    y=item.location.y,
                    t=item.location.t,
                )
            )
    return frames


def test_eight_concurrent_loopback_clients_match_offline(
    workload, workload_config
):
    offline = {}
    for event in offline_replay(workload, workload_config):
        offline.setdefault(event.request.user_id, []).append(
            decision_key(event)
        )

    async def client_run(conn, items, counter):
        futures = []
        for index, frame in enumerate(frames_for(items, counter)):
            futures.append(conn.post(frame))
            if index % 3 == 0:
                # Yield mid-stream so the eight clients interleave
                # at arbitrary points, not in neat blocks.
                await asyncio.sleep(0)
        return await asyncio.gather(*futures)

    async def run():
        engine = build_engine(workload, workload_config)
        server = await TrustedServer(engine, WIDE_OPEN).start()
        transport = LoopbackTransport(server)
        users = workload.user_ids
        conns = [
            transport.connect(f"det-{i}") for i in range(8)
        ]
        partitions = {i: [] for i in range(8)}
        owner = {u: rank % 8 for rank, u in enumerate(users)}
        for item in workload.timeline:
            partitions[owner[item.user_id]].append(item)
        counters = iter(range(1, 10**6)).__next__
        results = await asyncio.gather(
            *(
                client_run(conns[i], partitions[i], counters)
                for i in range(8)
            )
        )
        served = {}
        for i, replies in enumerate(results):
            for item, reply in zip(partitions[i], replies):
                if item.is_request:
                    assert isinstance(reply, DecisionReply), reply
                    served.setdefault(item.user_id, []).append(
                        decision_key(reply)
                    )
        await server.close()
        for conn in conns:
            conn.close()
        return served

    served = asyncio.run(run())
    assert set(served) == set(offline)
    for user_id in offline:
        assert served[user_id] == offline[user_id], (
            f"user {user_id} diverged under concurrent serving"
        )


def test_loadgen_loopback_verifies(workload_config):
    report = asyncio.run(
        run_loadgen(
            LoadgenConfig(
                workload=workload_config,
                serve=WIDE_OPEN,
                requests=80,
                clients=8,
                rate=1e6,
                transport="loopback",
                verify=True,
                telemetry_enabled=False,
            )
        )
    )
    assert report.ok, report.to_dict()
    assert report.verified is True and report.mismatches == 0
    assert report.shed == 0
    assert report.decisions == 80


def _partition(workload, n_clients):
    users = workload.user_ids
    owner = {u: rank % n_clients for rank, u in enumerate(users)}
    partitions = {i: [] for i in range(n_clients)}
    for item in workload.timeline:
        partitions[owner[item.user_id]].append(item)
    return partitions


def test_eight_clients_sharded_router_match_offline(
    workload, workload_config
):
    """Per-shard decision equality under 8 interleaved clients.

    Same property as the single-engine test, served by a 4-shard
    router: users hash to shared-nothing shard engines, yet every
    user's decision stream still equals the offline batch replay —
    the warm-store argument holds shard by shard.
    """
    offline = {}
    for event in offline_replay(workload, workload_config):
        offline.setdefault(event.request.user_id, []).append(
            decision_key(event)
        )

    async def client_run(conn, items, counter):
        futures = []
        for index, frame in enumerate(frames_for(items, counter)):
            futures.append(conn.post(frame))
            if index % 3 == 0:
                await asyncio.sleep(0)
        return await asyncio.gather(*futures)

    async def run():
        router = ShardRouter(
            workload, workload_config, n_shards=4, config=WIDE_OPEN
        )
        await router.start()
        transport = LoopbackTransport(router)
        conns = [transport.connect(f"det-{i}") for i in range(8)]
        partitions = _partition(workload, 8)
        counters = iter(range(1, 10**6)).__next__
        results = await asyncio.gather(
            *(
                client_run(conns[i], partitions[i], counters)
                for i in range(8)
            )
        )
        served = {}
        for i, replies in enumerate(results):
            for item, reply in zip(partitions[i], replies):
                if item.is_request:
                    assert isinstance(reply, DecisionReply), reply
                    served.setdefault(item.user_id, []).append(
                        decision_key(reply)
                    )
        await router.close()
        for conn in conns:
            conn.close()
        return served

    served = asyncio.run(run())
    assert set(served) == set(offline)
    for user_id in offline:
        assert served[user_id] == offline[user_id], (
            f"user {user_id} diverged under sharded serving"
        )


def test_eight_clients_survive_shard_kill_and_wal_restore(
    workload, workload_config, tmp_path
):
    """Decision equality holds across kill → WAL-replay → restore.

    Mid-stream, every shard is abruptly dropped (in-memory state
    discarded, queued jobs captured) and rebuilt from its write-ahead
    log; the rebuilt runtime must fingerprint identically to the
    killed one, the captured jobs are re-sent, and the complete
    decision stream still equals the offline replay.
    """
    offline = {}
    for event in offline_replay(workload, workload_config):
        offline.setdefault(event.request.user_id, []).append(
            decision_key(event)
        )

    async def client_run(conn, items, counter, kill_gate):
        futures = []
        for index, frame in enumerate(frames_for(items, counter)):
            futures.append(conn.post(frame))
            if index % 3 == 0:
                await asyncio.sleep(0)
            if index == len(items) // 2:
                await kill_gate()
        return await asyncio.gather(*futures)

    async def run():
        router = ShardRouter(
            workload,
            workload_config,
            n_shards=4,
            config=WIDE_OPEN,
            data_dir=tmp_path,
        )
        await router.start()
        transport = LoopbackTransport(router)
        conns = [transport.connect(f"det-{i}") for i in range(8)]
        partitions = _partition(workload, 8)
        counters = iter(range(1, 10**6)).__next__
        killed = False

        async def kill_gate():
            nonlocal killed
            if killed:
                return
            killed = True
            for shard_id in range(4):
                before = router.sequencers[
                    shard_id
                ].runtime.fingerprint()
                pending = router.kill_shard(shard_id)
                router.restore_shard(shard_id, pending)
                after = router.sequencers[
                    shard_id
                ].runtime.fingerprint()
                assert before == after, (
                    f"shard {shard_id} state diverged across "
                    "WAL replay"
                )

        results = await asyncio.gather(
            *(
                client_run(
                    conns[i], partitions[i], counters, kill_gate
                )
                for i in range(8)
            )
        )
        served = {}
        for i, replies in enumerate(results):
            for item, reply in zip(partitions[i], replies):
                if item.is_request:
                    assert isinstance(reply, DecisionReply), reply
                    served.setdefault(item.user_id, []).append(
                        decision_key(reply)
                    )
        assert killed, "kill gate never fired"
        assert all(
            s.runtime.replayed > 0
            for s in router.sequencers.values()
        ), "restore did not replay from the WAL"
        await router.close()
        for conn in conns:
            conn.close()
        return served

    served = asyncio.run(run())
    assert set(served) == set(offline)
    for user_id in offline:
        assert served[user_id] == offline[user_id], (
            f"user {user_id} diverged across kill/restore"
        )


def test_two_runs_identical(workload, workload_config):
    """Same concurrency, two runs: decision streams are identical."""

    async def one_run():
        engine = build_engine(workload, workload_config)
        server = await TrustedServer(engine, WIDE_OPEN).start()
        conn = LoopbackTransport(server).connect("rep")
        counter = iter(range(1, 10**6)).__next__
        futures = [
            conn.post(frame)
            for frame in frames_for(workload.timeline, counter)
        ]
        replies = await asyncio.gather(*futures)
        await server.close()
        conn.close()
        return [
            decision_key(r)
            for r in replies
            if isinstance(r, DecisionReply)
        ]

    assert asyncio.run(one_run()) == asyncio.run(one_run())
