"""Unit tests for the unlinking-efficacy audit."""

from repro.core.anonymizer import AnonymizerEvent, Decision
from repro.core.phl import PersonalHistory
from repro.core.requests import Request
from repro.geometry.point import STPoint
from repro.metrics.unlinking import audit_unlinking, split_by_motion


def event(msgid, user_id, pseudonym, x, t, forwarded=True):
    request = Request.issue(msgid, user_id, pseudonym, STPoint(x, 0.0, t))
    return AnonymizerEvent(
        request=request,
        decision=Decision.FORWARDED if forwarded else Decision.SUPPRESSED,
        forwarded=forwarded,
    )


def walk(user_id, pseudonym, start_msgid, x0, t0, steps=4):
    """Slow continuous walk: 60 m per minute."""
    return [
        event(start_msgid + i, user_id, pseudonym, x0 + 60.0 * i,
              t0 + 60.0 * i)
        for i in range(steps)
    ]


class TestAuditUnlinking:
    def test_no_rotations(self):
        events = walk(1, "a", 1, 0, 0)
        audit = audit_unlinking(events)
        assert audit.rotations == 0
        assert audit.relink_rate == 0.0

    def test_continuous_walk_relinked(self):
        """Rotating mid-walk without silence is bridged by continuity."""
        events = walk(1, "a", 1, 0, 0) + walk(1, "b", 10, 240, 240)
        audit = audit_unlinking(events)
        assert audit.rotations == 1
        assert audit.relinked == 1

    def test_long_silence_breaks_the_track(self):
        """A gap beyond the track timeout defeats the tracker."""
        events = walk(1, "a", 1, 0, 0) + walk(1, "b", 10, 240, 50_000)
        audit = audit_unlinking(events, track_timeout=3600.0)
        assert audit.rotations == 1
        assert audit.relinked == 0

    def test_suppressed_requests_carry_rotation_info(self):
        """A rotation visible only through suppressed events still counts
        as a rotation (the TS knows), and is unlinked if nothing under
        one pseudonym was ever forwarded."""
        events = walk(1, "a", 1, 0, 0)
        events.append(event(9, 1, "b", 240, 240, forwarded=False))
        events += walk(1, "c", 10, 300, 300)
        audit = audit_unlinking(events)
        assert audit.rotations == 2

    def test_records_expose_users_and_times(self):
        events = walk(1, "a", 1, 0, 0) + walk(1, "b", 10, 240, 240)
        audit = audit_unlinking(events)
        (record,) = audit.records
        assert record.user_id == 1
        assert record.t == 240.0


class TestSplitByMotion:
    def test_moving_vs_stationary(self):
        # User 1 walks through their rotation; user 2 dwells.
        events = walk(1, "a", 1, 0, 0) + walk(1, "b", 10, 240, 240)
        events += [
            event(20 + i, 2, "c", 5000, 60.0 * i) for i in range(4)
        ] + [
            event(30 + i, 2, "d", 5000, 240 + 60.0 * i) for i in range(4)
        ]
        audit = audit_unlinking(events)
        histories = {
            1: PersonalHistory(
                1, [STPoint(60.0 * i, 0, 60.0 * i) for i in range(9)]
            ),
            2: PersonalHistory(
                2, [STPoint(5000, 0, 60.0 * i) for i in range(9)]
            ),
        }
        by_motion = split_by_motion(audit, histories)
        assert by_motion[True].rotations == 1
        assert by_motion[False].rotations == 1
        # The dweller is trivially re-linked (same place).
        assert by_motion[False].relinked == 1

    def test_unknown_history_counts_as_stationary(self):
        events = walk(1, "a", 1, 0, 0) + walk(1, "b", 10, 240, 240)
        audit = audit_unlinking(events)
        by_motion = split_by_motion(audit, histories={})
        assert by_motion[False].rotations == 1
        assert by_motion[True].rotations == 0
