"""Unit tests for the Theorem 1 verification pass."""

from repro.core.anonymizer import AnonymizerEvent, Decision
from repro.core.lbqid import commute_lbqid
from repro.core.phl import PersonalHistory
from repro.core.requests import Request
from repro.geometry.point import STPoint
from repro.geometry.region import Rect, STBox
from repro.granularity.timeline import time_at
from repro.metrics.theorem import verify_theorem1

HOME = Rect(0, 0, 100, 100)
OFFICE = Rect(900, 900, 1000, 1000)
LBQID = commute_lbqid(HOME, OFFICE, name="commute")
USER = 0


def anchor_locations(week, day):
    return [
        STPoint(50, 50, time_at(week=week, day=day, hour=7.5)),
        STPoint(950, 950, time_at(week=week, day=day, hour=8.5)),
        STPoint(950, 950, time_at(week=week, day=day, hour=17.2)),
        STPoint(50, 50, time_at(week=week, day=day, hour=18.2)),
    ]


def matched_trace():
    """The 24 request locations of a fully matched commute pattern."""
    return [
        location
        for week in range(2)
        for day in range(3)
        for location in anchor_locations(week, day)
    ]


def events_for(locations, margin):
    """GENERALIZED events with square contexts of the given margin."""
    events = []
    for i, location in enumerate(locations):
        box = STBox.from_st_point(location).expanded(margin, 600.0)
        request = Request.issue(
            i, USER, "p", location
        ).with_context(box)
        events.append(
            AnonymizerEvent(
                request=request,
                decision=Decision.GENERALIZED,
                forwarded=True,
                lbqid_name="commute",
                hk_anonymity=True,
            )
        )
    return events


def neighbour_histories(n, offset=5.0):
    """``n`` users shadowing the commute (LT-consistent neighbours)."""
    histories = {USER: PersonalHistory(USER, matched_trace())}
    for user_id in range(1, n + 1):
        shifted = [
            STPoint(p.x + offset, p.y, p.t + 60.0)
            for p in matched_trace()
        ]
        histories[user_id] = PersonalHistory(user_id, shifted)
    return histories


class TestVerifyTheorem1:
    lbqids = {USER: [LBQID]}

    def test_holds_with_consistent_neighbours(self):
        events = events_for(matched_trace(), margin=50.0)
        histories = neighbour_histories(4)
        report = verify_theorem1(events, histories, self.lbqids, k=5)
        assert report.groups_matching_lbqid == 1
        assert report.holds

    def test_violation_detected_without_neighbours(self):
        events = events_for(matched_trace(), margin=1.0)
        histories = {USER: PersonalHistory(USER, matched_trace())}
        report = verify_theorem1(events, histories, self.lbqids, k=5)
        assert not report.holds
        violation = report.violations[0]
        assert violation.user_id == USER
        assert violation.achieved_k == 1

    def test_unmatched_groups_not_checked_for_k(self):
        """An incomplete pattern is outside the theorem's premise."""
        events = events_for(anchor_locations(0, 0), margin=1.0)
        histories = {USER: PersonalHistory(USER, matched_trace())}
        report = verify_theorem1(events, histories, self.lbqids, k=5)
        assert report.groups_checked == 1
        assert report.groups_matching_lbqid == 0
        assert report.holds

    def test_suppressed_requests_outside_statement(self):
        events = events_for(matched_trace(), margin=1.0)
        suppressed = [
            AnonymizerEvent(
                request=e.request,
                decision=Decision.SUPPRESSED,
                forwarded=False,
                lbqid_name="commute",
            )
            for e in events
        ]
        histories = {USER: PersonalHistory(USER, matched_trace())}
        report = verify_theorem1(
            suppressed, histories, self.lbqids, k=5
        )
        assert report.groups_checked == 0
        assert report.holds

    def test_pseudonym_split_breaks_the_match(self):
        """Rotating the pseudonym mid-pattern keeps both groups
        incomplete, so neither triggers the check."""
        locations = matched_trace()
        events = events_for(locations, margin=1.0)
        relabeled = []
        for i, e in enumerate(events):
            pseudonym = "p1" if i < 12 else "p2"
            relabeled.append(
                AnonymizerEvent(
                    request=e.request.with_pseudonym(pseudonym),
                    decision=e.decision,
                    forwarded=True,
                    lbqid_name="commute",
                )
            )
        histories = {USER: PersonalHistory(USER, locations)}
        report = verify_theorem1(
            relabeled, histories, self.lbqids, k=5
        )
        assert report.groups_checked == 2
        assert report.groups_matching_lbqid == 0
        assert report.holds
