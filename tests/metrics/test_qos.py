"""Unit tests for QoS metrics."""

import pytest

from repro.core.anonymizer import AnonymizerEvent, Decision
from repro.core.requests import Request
from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox
from repro.metrics.qos import qos_summary


def event(decision, width=100.0, duration=60.0, lbqid="q", forwarded=True):
    context = STBox(
        Rect(0, 0, width, width), Interval(0.0, duration)
    )
    location = STPoint(
        context.rect.center.x, context.rect.center.y,
        context.interval.center,
    )
    request = Request.issue(1, 1, "p", location).with_context(context)
    return AnonymizerEvent(
        request=request,
        decision=decision,
        forwarded=forwarded,
        lbqid_name=lbqid,
    )


class TestQoSSummary:
    def test_empty(self):
        summary = qos_summary([])
        assert summary.requests == 0
        assert summary.mean_area_m2 == 0.0

    def test_mean_sizes(self):
        events = [
            event(Decision.GENERALIZED, width=100.0, duration=60.0),
            event(Decision.GENERALIZED, width=300.0, duration=120.0),
        ]
        summary = qos_summary(events)
        assert summary.mean_width_m == pytest.approx(200.0)
        assert summary.mean_duration_s == pytest.approx(90.0)
        assert summary.mean_area_m2 == pytest.approx(
            (100.0**2 + 300.0**2) / 2
        )

    def test_rates(self):
        events = [
            event(Decision.GENERALIZED),
            event(Decision.UNLINKED),
            event(Decision.SUPPRESSED, forwarded=False),
            event(Decision.AT_RISK_FORWARDED),
        ]
        summary = qos_summary(events)
        assert summary.suppression_rate == pytest.approx(0.25)
        assert summary.unlink_rate == pytest.approx(0.25)
        assert summary.at_risk_rate == pytest.approx(0.5)

    def test_generalized_only_excludes_plain_forwards(self):
        events = [
            event(Decision.GENERALIZED, width=100.0),
            event(Decision.FORWARDED, width=0.0, lbqid=None),
        ]
        summary = qos_summary(events, generalized_only=True)
        assert summary.mean_width_m == pytest.approx(100.0)
        both = qos_summary(events, generalized_only=False)
        assert both.mean_width_m == pytest.approx(50.0)

    def test_suppressed_contexts_not_sized(self):
        events = [
            event(Decision.GENERALIZED, width=100.0),
            event(Decision.SUPPRESSED, width=900.0, forwarded=False),
        ]
        summary = qos_summary(events)
        assert summary.mean_width_m == pytest.approx(100.0)

    def test_p95(self):
        events = [
            event(Decision.GENERALIZED, width=float(w))
            for w in range(1, 101)
        ]
        summary = qos_summary(events)
        assert summary.p95_width_m == pytest.approx(95.0)

    def test_row_matches_fields(self):
        summary = qos_summary([event(Decision.GENERALIZED)])
        assert len(summary.row()) == 8
