"""Unit tests for anonymity metrics."""

from repro.core.anonymizer import AnonymizerEvent, Decision
from repro.core.phl import PersonalHistory
from repro.core.requests import Request
from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox
from repro.metrics.anonymity import (
    anonymity_summary,
    historical_k_per_user,
)


def histories_at_origin(n):
    """``n`` users each with one sample at the origin at t=0..10."""
    return {
        user_id: PersonalHistory(
            user_id, [STPoint(0.0, 0.0, float(user_id))]
        )
        for user_id in range(n)
    }


def event(user_id, pseudonym, box, hk=True, forwarded=True, lbqid="q"):
    location = STPoint(box.rect.center.x, box.rect.center.y,
                       box.interval.center)
    request = Request.issue(
        1, user_id, pseudonym, location
    ).with_context(box)
    return AnonymizerEvent(
        request=request,
        decision=Decision.GENERALIZED if hk else Decision.UNLINKED,
        forwarded=forwarded,
        lbqid_name=lbqid,
        hk_anonymity=hk,
    )


ORIGIN_BOX = STBox(Rect(-10, -10, 10, 10), Interval(0, 20))
EMPTY_BOX = STBox(Rect(500, 500, 600, 600), Interval(0, 20))


class TestAnonymitySummary:
    def test_counts_potential_senders(self):
        histories = histories_at_origin(6)
        summary = anonymity_summary(
            [event(0, "p", ORIGIN_BOX)], histories, k=3
        )
        assert summary.mean_set_size == 6
        assert summary.min_set_size == 6
        assert summary.fraction_below_k == 0.0

    def test_fraction_below_k(self):
        histories = histories_at_origin(2)
        summary = anonymity_summary(
            [event(0, "p", ORIGIN_BOX)], histories, k=5
        )
        assert summary.fraction_below_k == 1.0

    def test_empty_events(self):
        summary = anonymity_summary([], histories_at_origin(3), k=2)
        assert summary.requests == 0

    def test_suppressed_excluded(self):
        histories = histories_at_origin(3)
        suppressed = event(0, "p", ORIGIN_BOX, forwarded=False)
        summary = anonymity_summary([suppressed], histories, k=2)
        assert summary.requests == 0


class TestHistoricalKPerUser:
    def test_counts_requester_plus_consistent(self):
        histories = histories_at_origin(5)
        events = [event(0, "p", ORIGIN_BOX)]
        achieved = historical_k_per_user(events, histories)
        # 4 other users are LT-consistent with the single context.
        assert achieved[0] == 5

    def test_worst_pseudonym_group_wins(self):
        histories = histories_at_origin(5)
        events = [
            event(0, "p1", ORIGIN_BOX),
            event(0, "p2", EMPTY_BOX),
        ]
        achieved = historical_k_per_user(events, histories)
        assert achieved[0] == 1

    def test_hk_only_filters_failed_contexts(self):
        histories = histories_at_origin(5)
        events = [
            event(0, "p", ORIGIN_BOX, hk=True),
            event(0, "p", EMPTY_BOX, hk=False),
        ]
        warts = historical_k_per_user(events, histories)
        clean = historical_k_per_user(events, histories, hk_only=True)
        assert warts[0] == 1
        assert clean[0] == 5

    def test_intersection_across_contexts(self):
        histories = histories_at_origin(5)
        histories[9] = PersonalHistory(9, [STPoint(550, 550, 10)])
        events = [
            event(0, "p", ORIGIN_BOX),
            event(0, "p", EMPTY_BOX),
        ]
        achieved = historical_k_per_user(events, histories)
        # Nobody but (vacuously) the requester fits both contexts.
        assert achieved[0] == 1

    def test_non_generalized_events_ignored(self):
        histories = histories_at_origin(3)
        plain = event(0, "p", ORIGIN_BOX, lbqid=None)
        assert historical_k_per_user([plain], histories) == {}
