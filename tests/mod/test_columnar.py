"""Unit tests for the columnar backend plumbing.

The exhaustive decision-equivalence guarantees live in
``test_columnar_properties.py``; this file pins the mechanics — backend
resolution, amortized growth, the sorted-main/tail consolidation of the
global view, PHL container behaviour, and the uniform telemetry
labels.
"""

import pytest

from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox
from repro.mod.columnar import (
    BACKEND_ENV,
    ColumnarHistory,
    ColumnarView,
    resolve_backend,
)
from repro.mod.store import TrajectoryStore
from repro.obs import TelemetryConfig


def p(x, y, t):
    return STPoint(float(x), float(y), float(t))


BOX = STBox(Rect(0.0, 0.0, 10.0, 10.0), Interval(0.0, 100.0))


class TestBackendResolution:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None) == "python"
        assert TrajectoryStore().backend == "python"

    def test_env_selects_numpy(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert resolve_backend(None) == "numpy"
        assert TrajectoryStore().backend == "numpy"

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert TrajectoryStore(backend="python").backend == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown trajectory-store"):
            TrajectoryStore(backend="fortran")

    def test_empty_env_means_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "")
        assert resolve_backend(None) == "python"

    def test_numpy_store_builds_columnar_histories(self):
        store = TrajectoryStore(backend="numpy")
        store.add_point(1, p(1, 2, 3))
        assert isinstance(store.history(1), ColumnarHistory)


class TestColumnarHistoryContainer:
    def test_acts_like_a_sequence(self):
        history = ColumnarHistory(1, [p(3, 3, 30), p(1, 1, 10)])
        history.add(p(2, 2, 20))
        assert len(history) == 3
        assert [pt.t for pt in history] == [10.0, 20.0, 30.0]
        assert history[0] == p(1, 1, 10)
        assert history[-1] == p(3, 3, 30)
        assert history[1:] == [p(2, 2, 20), p(3, 3, 30)]
        assert history.points == (
            p(1, 1, 10),
            p(2, 2, 20),
            p(3, 3, 30),
        )
        with pytest.raises(IndexError):
            history[3]

    def test_repr_reports_columnar_samples(self):
        history = ColumnarHistory(7, [p(0, 0, 0)])
        assert "ColumnarHistory" in repr(history)
        assert "samples=1" in repr(history)

    def test_equal_timestamps_keep_arrival_order(self):
        history = ColumnarHistory(1)
        history.add(p(1, 0, 5))
        history.add(p(2, 0, 5))
        history.extend([p(3, 0, 5), p(4, 0, 5)])
        assert [pt.x for pt in history] == [1.0, 2.0, 3.0, 4.0]

    def test_amortized_growth_doubles_capacity(self):
        history = ColumnarHistory(1)
        for i in range(1000):
            history.add(p(i, i, i))
        assert len(history) == 1000
        capacity = history._x.size
        assert capacity >= 1000
        # power-of-two doubling from the minimum capacity
        assert capacity & (capacity - 1) == 0

    def test_box_queries(self):
        history = ColumnarHistory(
            1, [p(1, 1, 10), p(50, 50, 20), p(2, 2, 500)]
        )
        assert history.visits_box(BOX)
        assert history.points_in_box(BOX) == [p(1, 1, 10)]
        assert history.points_between(10.0, 20.0) == [
            p(1, 1, 10),
            p(50, 50, 20),
        ]
        assert history.lt_consistent_with([BOX])
        assert not history.lt_consistent_with(
            [BOX, STBox(Rect(90, 90, 99, 99), Interval(0, 1))]
        )
        assert history.lt_consistent_with([])


class TestColumnarView:
    def test_out_of_order_appends_consolidate(self):
        view = ColumnarView(time_scale=1.0)
        # Drive the unsorted tail past TAIL_MAX with two interleaved
        # users so consolidation (stable re-sort) must fire.
        for i in range(view.TAIL_MAX + 10):
            view.append(0, p(i, 0, 1_000_000 - i))
        view.append_block(1, [p(0, 0, 5.0), p(0, 0, 2.0)])
        assert view.n_rows == view.TAIL_MAX + 12
        assert view._sorted_n >= view.n_rows - view.TAIL_MAX
        box = STBox(Rect(0, 0, 0, 0), Interval(0.0, 10.0))
        assert {view.uid_of(int(s)) for s in view.slots_in_box(box)} == {1}

    def test_in_order_appends_never_leave_a_tail(self):
        view = ColumnarView()
        for i in range(100):
            view.append(i % 3, p(i, i, i))
        assert view._sorted_n == view.n_rows == 100

    def test_slots_are_dense_and_stable(self):
        view = ColumnarView()
        view.append(42, p(0, 0, 0))
        view.append(7, p(1, 1, 1))
        view.append(42, p(2, 2, 2))
        assert view.n_slots == 2
        assert view.slot_of(42) == 0
        assert view.slot_of(7) == 1
        assert view.slot_of(999) is None
        assert view.uid_of(0) == 42


class TestStoreIntegration:
    def test_empty_batch_materializes_history_without_version_bump(self):
        store = TrajectoryStore(backend="numpy")
        assert store.add_points(5, []) == 0
        assert store.version == 0
        assert 5 in store
        assert store.nearest_users(p(0, 0, 0), 3) == []

    def test_negative_count_rejected(self):
        store = TrajectoryStore(backend="numpy")
        store.add_point(1, p(0, 0, 0))
        with pytest.raises(ValueError, match="non-negative"):
            store.nearest_users(p(0, 0, 0), -1)

    def test_grid_index_stays_fed_under_numpy_backend(self):
        """Interop: the grid keeps indexing ingest under the columnar
        backend (so backends stay switchable), but the columnar view
        answers the store queries."""
        store = TrajectoryStore(backend="numpy", index_cell_size=100.0)
        store.add_point(1, p(1, 1, 1))
        store.add_points(2, [p(2, 2, 2), p(3, 3, 3)])
        assert store.index is not None
        assert len(store.index) == 3
        assert {u for u, _p, _d in store.nearest_users(p(0, 0, 0), 2)} == {
            1,
            2,
        }

    def test_uniform_method_labels(self):
        telemetry = TelemetryConfig(enabled=True).build()
        store = TrajectoryStore(backend="numpy", telemetry=telemetry)
        store.add_points(1, [p(1, 1, 1)])
        store.add_points(2, [p(2, 2, 2)])
        store.nearest_users(p(0, 0, 0), 1)
        store.closest_point(1, p(0, 0, 0))
        store.closest_points([1, 2, 404], p(0, 0, 0))
        store.users_in_box(BOX)
        store.lt_consistent_users([BOX])
        snapshot = telemetry.snapshot()
        for query, want in (
            ("nearest_users", 1),
            ("closest_point", 3),
            ("users_in_box", 1),
            ("lt_consistent_users", 1),
        ):
            assert (
                snapshot.counter_value(
                    "store.queries", query=query, method="numpy"
                )
                == want
            ), query

    def test_python_backend_labels_closest_point_brute(self):
        telemetry = TelemetryConfig(enabled=True).build()
        store = TrajectoryStore(backend="python", telemetry=telemetry)
        store.add_point(1, p(1, 1, 1))
        store.closest_point(1, p(0, 0, 0))
        store.lt_consistent_users([])
        snapshot = telemetry.snapshot()
        assert (
            snapshot.counter_value(
                "store.queries", query="closest_point", method="brute"
            )
            == 1
        )
        assert (
            snapshot.counter_value(
                "store.queries",
                query="lt_consistent_users",
                method="brute",
            )
            == 1
        )

    def test_add_trajectory_alias_is_gone(self):
        assert not hasattr(TrajectoryStore, "add_trajectory")
