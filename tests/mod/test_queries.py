"""Unit tests for range queries over the store."""

from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox
from repro.mod.queries import (
    count_users_in_box,
    users_in_area_during,
    users_in_box,
)
from repro.mod.store import TrajectoryStore


def make_store():
    store = TrajectoryStore()
    store.add_point(1, STPoint(10, 10, 100))
    store.add_point(2, STPoint(20, 20, 100))
    store.add_point(3, STPoint(10, 10, 900))
    return store


class TestQueries:
    box = STBox(Rect(0, 0, 50, 50), Interval(0, 200))

    def test_users_in_box(self):
        assert users_in_box(make_store(), self.box) == {1, 2}

    def test_count(self):
        assert count_users_in_box(make_store(), self.box) == 2

    def test_area_during(self):
        got = users_in_area_during(
            make_store(), Rect(0, 0, 50, 50), Interval(800, 1000)
        )
        assert got == {3}

    def test_empty_result(self):
        empty = STBox(Rect(500, 500, 600, 600), Interval(0, 1000))
        assert users_in_box(make_store(), empty) == set()
