"""Property-based tests: the numpy backend is decision-equivalent.

For any ingest sequence and any query, ``TrajectoryStore(
backend="numpy")`` must return *exactly* what ``backend="python"``
returns — same tuples, same ordering, same tie-breaks, bit-identical
distances.  Coordinates are drawn from a small integer grid (cast to
float) so exact distance ties and equal timestamps are common, and
users with empty histories are materialized in both stores to pin the
edge cases the brute scan silently skips.
"""

from hypothesis import given, settings, strategies as st

from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox
from repro.mod.store import TrajectoryStore

# A coarse lattice (ties everywhere) salted with continuous values.
coords = st.one_of(
    st.integers(min_value=0, max_value=8).map(float),
    st.floats(min_value=0.0, max_value=100.0),
)
times = st.one_of(
    st.integers(min_value=0, max_value=10).map(lambda v: 10.0 * v),
    st.floats(min_value=0.0, max_value=200.0),
)
st_points = st.builds(STPoint, coords, coords, times)


@st.composite
def paired_backends(draw):
    """Identical ingest into a python-backed and a numpy-backed store.

    Users are ingested through a random mix of ``add_point`` and
    ``add_points`` (including empty batches and histories created but
    never written) so both insertion paths and the empty-history edge
    are covered.
    """
    n_users = draw(st.integers(min_value=1, max_value=6))
    python = TrajectoryStore(backend="python")
    numpy = TrajectoryStore(backend="numpy")
    for user_id in range(n_users):
        points = draw(st.lists(st_points, min_size=0, max_size=12))
        mode = draw(st.integers(min_value=0, max_value=2))
        if mode == 0:
            for point in points:
                python.add_point(user_id, point)
                numpy.add_point(user_id, point)
            if not points:  # user exists with an empty PHL
                python.history(user_id)
                numpy.history(user_id)
        elif mode == 1:
            python.add_points(user_id, points)
            numpy.add_points(user_id, points)
        else:  # split batch: bulk prefix, single-point suffix
            half = len(points) // 2
            python.add_points(user_id, points[:half])
            numpy.add_points(user_id, points[:half])
            for point in points[half:]:
                python.add_point(user_id, point)
                numpy.add_point(user_id, point)
    return python, numpy


@st.composite
def boxes(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    t1, t2 = sorted((draw(times), draw(times)))
    return STBox(Rect(x1, y1, x2, y2), Interval(t1, t2))


class TestBackendEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        paired_backends(),
        st_points,
        st.integers(min_value=0, max_value=8),
        st.sets(st.integers(min_value=0, max_value=7), max_size=3),
    )
    def test_nearest_users_identical(
        self, stores, target, count, exclude
    ):
        python, numpy = stores
        expected = python.nearest_users(target, count, exclude=exclude)
        got = numpy.nearest_users(target, count, exclude=exclude)
        # Exact tuple equality: ids, sample points, *and* float
        # distances must match bit for bit, ties included.
        assert got == expected

    @settings(max_examples=120, deadline=None)
    @given(paired_backends(), boxes())
    def test_users_in_box_identical(self, stores, box):
        python, numpy = stores
        assert numpy.users_in_box(box) == python.users_in_box(box)

    @settings(max_examples=120, deadline=None)
    @given(paired_backends(), st_points)
    def test_closest_point_identical(self, stores, target):
        python, numpy = stores
        for user_id in list(python.user_ids()) + [404]:
            assert numpy.closest_point(
                user_id, target
            ) == python.closest_point(user_id, target)

    @settings(max_examples=100, deadline=None)
    @given(paired_backends(), st_points)
    def test_closest_points_batch_identical(self, stores, target):
        python, numpy = stores
        ids = list(python.user_ids()) + [404]
        assert numpy.closest_points(ids, target) == (
            python.closest_points(ids, target)
        )

    @settings(max_examples=100, deadline=None)
    @given(
        paired_backends(),
        st.lists(boxes(), min_size=0, max_size=3),
        st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
    )
    def test_lt_consistency_identical(self, stores, contexts, exclude):
        python, numpy = stores
        assert numpy.lt_consistent_users(
            contexts, exclude_user=exclude
        ) == python.lt_consistent_users(contexts, exclude_user=exclude)
        for user_id in python.user_ids():
            assert numpy.histories[user_id].lt_consistent_with(
                contexts
            ) == python.histories[user_id].lt_consistent_with(contexts)

    @settings(max_examples=80, deadline=None)
    @given(paired_backends())
    def test_history_contents_identical(self, stores):
        python, numpy = stores
        assert list(numpy.user_ids()) == list(python.user_ids())
        assert numpy.version == python.version
        for user_id in python.user_ids():
            assert list(numpy.histories[user_id].points) == list(
                python.histories[user_id].points
            )
