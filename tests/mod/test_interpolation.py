"""Unit tests for trajectory interpolation."""

import pytest

from repro.core.phl import PersonalHistory
from repro.geometry.point import Point, STPoint
from repro.mod.interpolation import position_at, sampled_positions


def line_history():
    """Straight movement from (0,0) at t=0 to (100,0) at t=100."""
    return PersonalHistory(
        1, [STPoint(0, 0, 0), STPoint(100, 0, 100)]
    )


class TestPositionAt:
    def test_empty_history(self):
        assert position_at(PersonalHistory(1), 5.0) is None

    def test_outside_span(self):
        h = line_history()
        assert position_at(h, -1.0) is None
        assert position_at(h, 101.0) is None

    def test_at_samples(self):
        h = line_history()
        assert position_at(h, 0.0) == Point(0, 0)
        assert position_at(h, 100.0) == Point(100, 0)

    def test_linear_between(self):
        h = line_history()
        got = position_at(h, 25.0)
        assert got.x == pytest.approx(25.0)
        assert got.y == pytest.approx(0.0)

    def test_multi_segment(self):
        h = PersonalHistory(
            1,
            [STPoint(0, 0, 0), STPoint(100, 0, 100), STPoint(100, 100, 200)],
        )
        got = position_at(h, 150.0)
        assert got == Point(100, 50)

    def test_coincident_timestamps(self):
        h = PersonalHistory(
            1, [STPoint(0, 0, 50), STPoint(10, 10, 50)]
        )
        assert position_at(h, 50.0) is not None


class TestSampledPositions:
    def test_fixed_grid(self):
        h = line_history()
        samples = sampled_positions(h, 0.0, 100.0, 25.0)
        assert [s.t for s in samples] == [0, 25, 50, 75, 100]
        assert samples[2].x == pytest.approx(50.0)

    def test_skips_outside_span(self):
        h = line_history()
        samples = sampled_positions(h, -50.0, 50.0, 25.0)
        assert [s.t for s in samples] == [0, 25, 50]

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            sampled_positions(line_history(), 0, 10, 0)
