"""Unit tests for the spatio-temporal grid index."""

import numpy as np
import pytest

from repro.geometry.distance import st_distance
from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox
from repro.mod.grid_index import GridIndex


class TestConstruction:
    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=0.0)

    def test_rejects_bad_time_scale(self):
        with pytest.raises(ValueError):
            GridIndex(time_scale=0.0)

    def test_len_counts_points(self):
        index = GridIndex(100.0)
        index.insert(1, STPoint(0, 0, 0))
        index.insert(1, STPoint(1, 1, 1))
        assert len(index) == 2


class TestNearestUsers:
    def test_empty_index(self):
        index = GridIndex(100.0)
        assert index.nearest_users(STPoint(0, 0, 0), 3) == []

    def test_zero_count(self):
        index = GridIndex(100.0)
        index.insert(1, STPoint(0, 0, 0))
        assert index.nearest_users(STPoint(0, 0, 0), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            GridIndex(100.0).nearest_users(STPoint(0, 0, 0), -2)

    def test_one_entry_per_user(self):
        index = GridIndex(100.0)
        index.insert(1, STPoint(0, 0, 0))
        index.insert(1, STPoint(5, 5, 0))
        index.insert(2, STPoint(50, 50, 0))
        got = index.nearest_users(STPoint(0, 0, 0), 5)
        assert len(got) == 2

    def test_exclusion(self):
        index = GridIndex(100.0)
        index.insert(1, STPoint(0, 0, 0))
        index.insert(2, STPoint(10, 0, 0))
        got = index.nearest_users(STPoint(0, 0, 0), 2, exclude={1})
        assert [u for u, _p, _d in got] == [2]

    def test_matches_exhaustive_search(self):
        rng = np.random.default_rng(11)
        index = GridIndex(cell_size=200.0, time_scale=1.0)
        ground: dict[int, list[STPoint]] = {}
        for user_id in range(25):
            pts = [
                STPoint(
                    float(rng.uniform(0, 2000)),
                    float(rng.uniform(0, 2000)),
                    float(rng.uniform(0, 2000)),
                )
                for _ in range(15)
            ]
            ground[user_id] = pts
            for p in pts:
                index.insert(user_id, p)
        for _ in range(10):
            target = STPoint(
                float(rng.uniform(0, 2000)),
                float(rng.uniform(0, 2000)),
                float(rng.uniform(0, 2000)),
            )
            best = sorted(
                (
                    min(st_distance(p, target, 1.0) for p in pts),
                    user_id,
                )
                for user_id, pts in ground.items()
            )[:6]
            got = index.nearest_users(target, 6)
            assert [d for _u, _p, d in got] == pytest.approx(
                [d for d, _u in best]
            )


class TestBoxQueries:
    def make_index(self):
        index = GridIndex(cell_size=100.0, time_scale=1.0)
        index.insert(1, STPoint(50, 50, 50))
        index.insert(2, STPoint(150, 150, 150))
        index.insert(3, STPoint(950, 950, 950))
        return index

    def test_users_in_box(self):
        index = self.make_index()
        box = STBox(Rect(0, 0, 200, 200), Interval(0, 200))
        assert index.users_in_box(box) == {1, 2}

    def test_points_in_box(self):
        index = self.make_index()
        box = STBox(Rect(0, 0, 200, 200), Interval(0, 100))
        assert index.points_in_box(box) == [(1, STPoint(50, 50, 50))]

    def test_box_boundary_points_included(self):
        index = GridIndex(cell_size=100.0, time_scale=1.0)
        index.insert(1, STPoint(100, 100, 100))
        box = STBox(Rect(0, 0, 100, 100), Interval(0, 100))
        assert index.users_in_box(box) == {1}
