"""Unit tests for the trajectory store."""

import pytest

from repro.geometry.distance import st_distance
from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox
from repro.mod.store import TrajectoryStore


class TestIngest:
    def test_history_created_on_access(self):
        store = TrajectoryStore()
        assert len(store.history(5)) == 0
        assert 5 in store

    def test_add_point(self):
        store = TrajectoryStore()
        store.add_point(1, STPoint(0, 0, 10))
        assert store.total_points == 1

    def test_add_points(self):
        store = TrajectoryStore()
        store.add_points(1, [STPoint(0, 0, t) for t in range(5)])
        assert len(store.history(1)) == 5

    def test_len_counts_users(self):
        store = TrajectoryStore()
        store.add_point(1, STPoint(0, 0, 0))
        store.add_point(2, STPoint(0, 0, 0))
        assert len(store) == 2


class TestBatchIngest:
    def test_add_points_bumps_version_once(self):
        store = TrajectoryStore()
        ingested = store.add_points(
            1, [STPoint(0, 0, t) for t in range(5)]
        )
        assert ingested == 5
        assert len(store.history(1)) == 5
        assert store.version == 1

    def test_add_point_bumps_version_per_point(self):
        store = TrajectoryStore()
        for t in range(5):
            store.add_point(1, STPoint(0, 0, t))
        assert store.version == 5

    def test_empty_batch_does_not_bump_version(self):
        store = TrajectoryStore()
        assert store.add_points(1, []) == 0
        assert store.version == 0
        # The empty history is still materialized, as with history().
        assert 1 in store

    def test_add_points_delegates_to_add_points(self):
        store = TrajectoryStore()
        store.add_points(1, [STPoint(0, 0, t) for t in range(3)])
        assert store.version == 1
        assert len(store.history(1)) == 3

    def test_batch_ingest_feeds_the_grid_index(self):
        batch = TrajectoryStore(index_cell_size=100.0)
        single = TrajectoryStore(index_cell_size=100.0)
        points = [STPoint(50.0 * t, 0.0, 60.0 * t) for t in range(6)]
        batch.add_points(1, points)
        for point in points:
            single.add_point(1, point)
        target = STPoint(120.0, 10.0, 150.0)
        assert batch.nearest_users(target, 1) == single.nearest_users(
            target, 1
        )

    def test_batch_and_single_ingest_agree(self):
        batch = TrajectoryStore()
        single = TrajectoryStore()
        points = [STPoint(float(t), float(-t), 10.0 * t) for t in range(4)]
        batch.add_points(2, points)
        for point in points:
            single.add_point(2, point)
        assert list(batch.history(2)) == list(single.history(2))


class TestClosestPoint:
    def test_unknown_user(self):
        assert TrajectoryStore().closest_point(9, STPoint(0, 0, 0)) is None

    def test_picks_nearest(self):
        store = TrajectoryStore()
        store.add_points(
            1, [STPoint(0, 0, 0), STPoint(100, 100, 100)]
        )
        got = store.closest_point(1, STPoint(1, 1, 1))
        assert got == STPoint(0, 0, 0)


class TestNearestUsers:
    def build(self, index_cell_size=None):
        store = TrajectoryStore(index_cell_size=index_cell_size)
        for user_id in range(1, 8):
            store.add_points(
                user_id,
                [
                    STPoint(100.0 * user_id, 0.0, 0.0),
                    STPoint(100.0 * user_id, 0.0, 600.0),
                ],
            )
        return store

    def test_orders_by_distance(self):
        store = self.build()
        got = store.nearest_users(STPoint(0, 0, 0), 3)
        assert [user_id for user_id, _p, _d in got] == [1, 2, 3]

    def test_excludes_requester(self):
        store = self.build()
        got = store.nearest_users(STPoint(0, 0, 0), 3, exclude={1})
        assert [user_id for user_id, _p, _d in got] == [2, 3, 4]

    def test_count_larger_than_population(self):
        store = self.build()
        got = store.nearest_users(STPoint(0, 0, 0), 100)
        assert len(got) == 7

    def test_zero_count(self):
        assert self.build().nearest_users(STPoint(0, 0, 0), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            self.build().nearest_users(STPoint(0, 0, 0), -1)

    def test_distances_reported(self):
        store = self.build()
        target = STPoint(0, 0, 0)
        for user_id, point, distance in store.nearest_users(target, 3):
            assert distance == pytest.approx(
                st_distance(point, target, store.time_scale)
            )

    def test_indexed_matches_brute_force(self):
        import numpy as np

        rng = np.random.default_rng(3)
        brute = TrajectoryStore()
        indexed = TrajectoryStore(index_cell_size=250.0)
        for user_id in range(30):
            points = [
                STPoint(
                    float(rng.uniform(0, 3000)),
                    float(rng.uniform(0, 3000)),
                    float(rng.uniform(0, 7200)),
                )
                for _ in range(20)
            ]
            brute.add_points(user_id, points)
            indexed.add_points(user_id, points)
        for _ in range(10):
            target = STPoint(
                float(rng.uniform(0, 3000)),
                float(rng.uniform(0, 3000)),
                float(rng.uniform(0, 7200)),
            )
            expect = brute.nearest_users_brute(target, 5)
            got = indexed.nearest_users(target, 5)
            assert [d for _u, _p, d in got] == pytest.approx(
                [d for _u, _p, d in expect]
            )


class TestUsersInBox:
    def test_brute_and_indexed_agree(self):
        box = STBox(Rect(50, -10, 250, 10), Interval(0, 700))
        brute = TrajectoryStore()
        indexed = TrajectoryStore(index_cell_size=100.0)
        for store in (brute, indexed):
            for user_id in range(1, 8):
                store.add_points(
                    user_id,
                    [
                        STPoint(100.0 * user_id, 0.0, 0.0),
                        STPoint(100.0 * user_id, 0.0, 600.0),
                    ],
                )
        assert brute.users_in_box(box) == indexed.users_in_box(box) == {1, 2}
