"""Property-based tests: the grid index is an exact accelerator.

Whatever the data, the indexed store must answer nearest-users and
range queries identically (up to distance ties) to the brute-force
scan — the paper's O(k·n) baseline is the semantic reference.
"""

from hypothesis import given, settings, strategies as st

from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox
from repro.mod.store import TrajectoryStore

coords = st.floats(min_value=0.0, max_value=5_000.0)
times = st.floats(min_value=0.0, max_value=50_000.0)
st_points = st.builds(STPoint, coords, coords, times)


@st.composite
def paired_stores(draw):
    """Identical data in a brute and an indexed store."""
    n_users = draw(st.integers(min_value=1, max_value=6))
    brute = TrajectoryStore()
    indexed = TrajectoryStore(index_cell_size=400.0)
    for user_id in range(n_users):
        points = draw(st.lists(st_points, min_size=1, max_size=10))
        brute.add_points(user_id, points)
        indexed.add_points(user_id, points)
    return brute, indexed


@st.composite
def boxes(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    t1, t2 = sorted((draw(times), draw(times)))
    return STBox(Rect(x1, y1, x2, y2), Interval(t1, t2))


class TestIndexEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(paired_stores(), st_points, st.integers(min_value=1, max_value=8))
    def test_nearest_users_distances_agree(self, stores, target, count):
        brute, indexed = stores
        expected = brute.nearest_users_brute(target, count)
        got = indexed.nearest_users(target, count)
        assert len(got) == len(expected)
        for (_u1, _p1, d1), (_u2, _p2, d2) in zip(expected, got):
            assert abs(d1 - d2) < 1e-6

    @settings(max_examples=60, deadline=None)
    @given(paired_stores(), boxes())
    def test_users_in_box_agree(self, stores, box):
        brute, indexed = stores
        assert brute.users_in_box(box) == indexed.users_in_box(box)

    @settings(max_examples=40, deadline=None)
    @given(paired_stores(), st_points)
    def test_nearest_user_is_truly_nearest(self, stores, target):
        """The first reported user's distance lower-bounds everyone."""
        brute, indexed = stores
        result = indexed.nearest_users(target, 1)
        assert result
        _user, _point, best = result[0]
        from repro.geometry.distance import st_distance

        for user_id in indexed.user_ids():
            closest = indexed.closest_point(user_id, target)
            assert st_distance(closest, target, indexed.time_scale) >= (
                best - 1e-6
            )
