"""Unit tests for the multi-target tracker."""

import pytest

from repro.attack.tracker import TrajectoryTracker
from repro.core.requests import Request
from repro.geometry.point import STPoint


def sp(msgid, pseudonym, x, y, t, user_id=0):
    return Request.issue(
        msgid, user_id, pseudonym, STPoint(x, y, t)
    ).sp_view()


class TestConstruction:
    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            TrajectoryTracker(max_speed=0.0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            TrajectoryTracker(track_timeout=0.0)


class TestPseudonymFollowing:
    def test_same_pseudonym_same_track(self):
        tracker = TrajectoryTracker()
        a = tracker.observe(sp(1, "p", 0, 0, 0))
        b = tracker.observe(sp(2, "p", 5000, 5000, 1))  # impossible jump
        assert a.track_id == b.track_id

    def test_disabled_following_splits_on_gate(self):
        tracker = TrajectoryTracker(follow_pseudonyms=False)
        a = tracker.observe(sp(1, "p", 0, 0, 0))
        b = tracker.observe(sp(2, "p", 50000, 50000, 1))
        assert a.track_id != b.track_id


class TestGating:
    def test_smooth_movement_linked_across_pseudonyms(self):
        tracker = TrajectoryTracker(max_speed=15.0)
        a = tracker.observe(sp(1, "p1", 0, 0, 0))
        b = tracker.observe(sp(2, "p2", 100, 0, 60))  # 1.7 m/s
        assert a.track_id == b.track_id

    def test_unreachable_request_new_track(self):
        tracker = TrajectoryTracker(max_speed=15.0)
        a = tracker.observe(sp(1, "p1", 0, 0, 0))
        b = tracker.observe(sp(2, "p2", 10000, 0, 60))  # 167 m/s
        assert a.track_id != b.track_id

    def test_nearest_track_wins(self):
        tracker = TrajectoryTracker(max_speed=15.0)
        near = tracker.observe(sp(1, "a", 0, 0, 0))
        tracker.observe(sp(2, "b", 500, 0, 0))
        joined = tracker.observe(sp(3, "c", 10, 0, 60))
        assert joined.track_id == near.track_id

    def test_track_timeout_breaks_continuity(self):
        tracker = TrajectoryTracker(
            max_speed=15.0, track_timeout=300.0, follow_pseudonyms=False
        )
        a = tracker.observe(sp(1, "p1", 0, 0, 0))
        b = tracker.observe(sp(2, "p2", 10, 0, 10_000))
        assert a.track_id != b.track_id


class TestRun:
    def test_sorts_by_time(self):
        tracker = TrajectoryTracker(max_speed=15.0)
        requests = [
            sp(2, "p2", 100, 0, 60),
            sp(1, "p1", 0, 0, 0),
        ]
        tracks = tracker.run(requests)
        assert len(tracks) == 1

    def test_assignment_recorded(self):
        tracker = TrajectoryTracker()
        tracker.run([sp(1, "p", 0, 0, 0)])
        assert tracker.track_of(1) is not None
        assert tracker.track_of(99) is None

    def test_track_pseudonyms_collected(self):
        tracker = TrajectoryTracker(max_speed=15.0)
        tracker.run(
            [sp(1, "p1", 0, 0, 0), sp(2, "p2", 100, 0, 60)]
        )
        assert tracker.tracks[0].pseudonyms == {"p1", "p2"}


class TestUncertaintySlack:
    def test_large_contexts_widen_the_gate(self):
        """Cloaked (large-area) requests are harder to rule out."""
        from repro.geometry.region import Interval, Rect, STBox
        from repro.core.requests import SPRequest

        big_box = STBox(Rect(0, 0, 2000, 2000), Interval(0, 0))
        small_box = STBox(Rect(0, 0, 1, 1), Interval(0, 0))
        tracker = TrajectoryTracker(max_speed=1.0)
        tracker.observe(
            SPRequest(msgid=1, pseudonym="a", context=big_box)
        )
        # Far in space, tiny dt: only reachable thanks to area slack
        # (center-to-center distance ~1980 m < ~2002 m of gate).
        joined = tracker.observe(
            SPRequest(
                msgid=2,
                pseudonym="b",
                context=STBox(
                    Rect(2400, 2400, 2401, 2401), Interval(1, 1)
                ),
            )
        )
        assert joined.track_id == tracker.track_of(1)
        # With a small context the same jump opens a new track.
        tracker2 = TrajectoryTracker(max_speed=1.0)
        tracker2.observe(
            SPRequest(msgid=1, pseudonym="a", context=small_box)
        )
        split = tracker2.observe(
            SPRequest(
                msgid=2,
                pseudonym="b",
                context=STBox(
                    Rect(2400, 2400, 2401, 2401), Interval(1, 1)
                ),
            )
        )
        assert split.track_id != tracker2.track_of(1)
