"""Unit tests for tracker-induced link functions and their scoring."""

import pytest

from repro.attack.linker import TrackerLink, link_accuracy
from repro.core.linkability import theta_components
from repro.core.requests import Request
from repro.geometry.point import STPoint


def walk(user_id, pseudonym, start_msgid, x0, t0, steps=4):
    """A slow straight walk: 60 m per minute step."""
    return [
        Request.issue(
            start_msgid + i,
            user_id,
            pseudonym,
            STPoint(x0 + 60.0 * i, 0.0, t0 + 60.0 * i),
        )
        for i in range(steps)
    ]


class TestTrackerLink:
    def test_links_continuous_walk_across_pseudonym_change(self):
        requests = walk(1, "a", 1, 0, 0) + walk(1, "b", 10, 240, 240)
        link = TrackerLink.from_requests([r.sp_view() for r in requests])
        assert link.link(requests[0].sp_view(), requests[-1].sp_view()) == 1.0

    def test_separates_distant_users(self):
        requests = walk(1, "a", 1, 0, 0) + walk(2, "b", 10, 50_000, 0)
        link = TrackerLink.from_requests([r.sp_view() for r in requests])
        assert link.link(requests[0].sp_view(), requests[-1].sp_view()) == 0.0

    def test_reflexive(self):
        requests = walk(1, "a", 1, 0, 0)
        link = TrackerLink.from_requests([r.sp_view() for r in requests])
        view = requests[0].sp_view()
        assert link.link(view, view) == 1.0

    def test_unseen_request_unlinked(self):
        requests = walk(1, "a", 1, 0, 0)
        link = TrackerLink.from_requests([r.sp_view() for r in requests])
        stranger = Request.issue(99, 9, "z", STPoint(0, 0, 0)).sp_view()
        assert link.link(requests[0].sp_view(), stranger) == 0.0

    def test_induces_theta_components(self):
        requests = walk(1, "a", 1, 0, 0) + walk(2, "b", 10, 50_000, 0)
        link = TrackerLink.from_requests([r.sp_view() for r in requests])
        views = [r.sp_view() for r in requests]
        components = theta_components(views, link, 0.5)
        assert len(components) == 2


class TestLinkAccuracy:
    def test_perfect_attacker(self):
        requests = walk(1, "a", 1, 0, 0) + walk(2, "b", 10, 50_000, 0)
        owners = {r.msgid: r.user_id for r in requests}

        class Oracle:
            def link(self, a, b):
                return 1.0 if owners[a.msgid] == owners[b.msgid] else 0.0

        accuracy = link_accuracy(requests, Oracle())
        assert accuracy.precision == 1.0
        assert accuracy.recall == 1.0
        assert accuracy.f1 == 1.0

    def test_tracker_attacker_on_easy_workload(self):
        requests = walk(1, "a", 1, 0, 0) + walk(
            1, "b", 10, 240, 240
        ) + walk(2, "c", 20, 50_000, 0)
        link = TrackerLink.from_requests([r.sp_view() for r in requests])
        accuracy = link_accuracy(requests, link)
        assert accuracy.recall == pytest.approx(1.0)
        assert accuracy.precision == pytest.approx(1.0)

    def test_blind_attacker_scores_zero(self):
        class Blind:
            def link(self, a, b):
                return 0.0

        requests = walk(1, "a", 1, 0, 0)
        accuracy = link_accuracy(requests, Blind())
        assert accuracy.recall == 0.0
        assert accuracy.f1 == 0.0

    def test_overlinking_hurts_precision(self):
        class Paranoid:
            def link(self, a, b):
                return 1.0

        requests = walk(1, "a", 1, 0, 0) + walk(2, "b", 10, 50_000, 0)
        accuracy = link_accuracy(requests, Paranoid())
        assert accuracy.recall == 1.0
        assert accuracy.precision < 1.0
