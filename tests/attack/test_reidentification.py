"""Unit tests for the home-identification attack."""

from repro.attack.reidentification import HomeIdentificationAttack
from repro.core.requests import Request
from repro.geometry.point import Point, STPoint
from repro.granularity.timeline import time_at


def make_requests(user_id, pseudonym, home_x, days=3, start_msgid=0):
    """Morning and evening requests at home, noon requests elsewhere."""
    requests = []
    msgid = start_msgid
    for day in range(days):
        for hour, x in ((7.0, home_x), (12.0, 2000.0), (19.0, home_x)):
            msgid += 1
            requests.append(
                Request.issue(
                    msgid,
                    user_id,
                    pseudonym,
                    STPoint(x, 0.0, time_at(day=day, hour=hour)),
                )
            )
    return requests


HOMES = {1: Point(0, 0), 2: Point(5000, 0)}


class TestAttackSuccess:
    def test_identifies_unprotected_user(self):
        requests = make_requests(1, "p1", home_x=0.0)
        attack = HomeIdentificationAttack(HOMES)
        result = attack.run(
            [r.sp_view() for r in requests], true_owner={"p1": 1}
        )
        assert result.identified_users == {1}
        assert result.precision == 1.0

    def test_rate_over_population(self):
        requests = make_requests(1, "p1", home_x=0.0)
        attack = HomeIdentificationAttack(HOMES)
        result = attack.run(
            [r.sp_view() for r in requests], true_owner={"p1": 1}
        )
        assert result.rate(population=2) == 0.5

    def test_both_users_identified(self):
        requests = make_requests(1, "p1", 0.0) + make_requests(
            2, "p2", 5000.0, start_msgid=100
        )
        attack = HomeIdentificationAttack(HOMES)
        result = attack.run(
            [r.sp_view() for r in requests],
            true_owner={"p1": 1, "p2": 2},
        )
        assert result.identified_users == {1, 2}


class TestAttackLimits:
    def test_far_anchor_yields_no_claim(self):
        """A user whose home is not in the phone book is safe."""
        requests = make_requests(3, "p3", home_x=9999.0)
        attack = HomeIdentificationAttack(HOMES, claim_radius=100.0)
        result = attack.run(
            [r.sp_view() for r in requests], true_owner={"p3": 3}
        )
        assert not result.identified_users

    def test_too_few_home_requests(self):
        requests = make_requests(1, "p1", 0.0, days=1)[:1]
        attack = HomeIdentificationAttack(HOMES, min_home_requests=2)
        result = attack.run(
            [r.sp_view() for r in requests], true_owner={"p1": 1}
        )
        assert not result.claims

    def test_pseudonym_rotation_fragments_groups(self):
        """Rotating pseudonyms with too few home hits per group defeats
        the per-pseudonym attacker."""
        requests = []
        for day in range(4):
            requests += make_requests(
                1, f"p{day}", 0.0, days=1, start_msgid=10 * day
            )
            # shift each day's requests onto its own day of the timeline
            requests[-3:] = [
                Request.issue(
                    r.msgid,
                    r.user_id,
                    r.pseudonym,
                    STPoint(r.location.x, r.location.y,
                            r.location.t + day * 86400.0),
                )
                for r in requests[-3:]
            ]
        attack = HomeIdentificationAttack(HOMES, min_home_requests=3)
        result = attack.run(
            [r.sp_view() for r in requests],
            true_owner={f"p{day}": 1 for day in range(4)},
        )
        assert not result.identified_users

    def test_tracker_grouping_stitches_rotated_pseudonyms(self):
        """With a tracker, the attacker re-links a user who rotates
        pseudonyms daily but moves continuously, and the home claim
        comes back."""
        from repro.attack.tracker import TrajectoryTracker

        requests = []
        msgid = 0
        for day in range(4):
            for r in make_requests(1, f"p{day}", 0.0, days=1):
                msgid += 1
                requests.append(
                    Request.issue(
                        msgid,
                        r.user_id,
                        r.pseudonym,
                        STPoint(
                            r.location.x,
                            r.location.y,
                            r.location.t + day * 86400.0,
                        ),
                    )
                )
        attack = HomeIdentificationAttack(
            HOMES,
            min_home_requests=3,
            tracker=TrajectoryTracker(
                max_speed=15.0, track_timeout=100_000.0
            ),
        )
        result = attack.run(
            [r.sp_view() for r in requests],
            true_owner={f"p{day}": 1 for day in range(4)},
        )
        assert result.identified_users == {1}

    def test_wrong_claims_counted(self):
        """A user who overnights at someone else's home gets misclaimed."""
        requests = make_requests(1, "p1", home_x=5000.0)  # user 2's home
        attack = HomeIdentificationAttack(HOMES)
        result = attack.run(
            [r.sp_view() for r in requests], true_owner={"p1": 1}
        )
        assert result.claims
        assert result.precision == 0.0
        assert not result.identified_users
