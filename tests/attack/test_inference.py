"""Unit tests for the center-bias inference attack."""

import pytest

from repro.attack.inference import (
    center_guess_errors,
    edge_fraction,
    mean_relative_center_error,
)
from repro.core.requests import Request
from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox


def request_at(x, y, box):
    return Request.issue(
        1, 1, "p", STPoint(x, y, box.interval.center)
    ).with_context(box)


CENTERED_BOX = STBox(Rect(0, 0, 100, 100), Interval(0, 100))


class TestCenterGuess:
    def test_exact_center_zero_error(self):
        request = request_at(50, 50, CENTERED_BOX)
        assert center_guess_errors([request]) == [0.0]

    def test_corner_error(self):
        request = request_at(0, 0, CENTERED_BOX)
        (error,) = center_guess_errors([request])
        assert error == pytest.approx((50**2 + 50**2) ** 0.5)

    def test_empty(self):
        assert center_guess_errors([]) == []


class TestEdgeFraction:
    def test_on_edge(self):
        request = request_at(0, 50, CENTERED_BOX)
        assert edge_fraction([request]) == 1.0

    def test_interior(self):
        request = request_at(50, 50, CENTERED_BOX)
        assert edge_fraction([request]) == 0.0

    def test_margin_scales_with_box(self):
        request = request_at(1, 50, CENTERED_BOX)  # 1% from edge
        assert edge_fraction([request], relative_margin=0.02) == 1.0
        assert edge_fraction([request], relative_margin=0.005) == 0.0

    def test_mixture(self):
        requests = [
            request_at(0, 50, CENTERED_BOX),
            request_at(50, 50, CENTERED_BOX),
        ]
        assert edge_fraction(requests) == 0.5

    def test_empty(self):
        assert edge_fraction([]) == 0.0


class TestRelativeError:
    def test_center_is_zero(self):
        request = request_at(50, 50, CENTERED_BOX)
        assert mean_relative_center_error([request]) == 0.0

    def test_corner_is_one(self):
        request = request_at(0, 0, CENTERED_BOX)
        assert mean_relative_center_error([request]) == pytest.approx(1.0)

    def test_degenerate_boxes_skipped(self):
        degenerate = STBox(Rect(5, 5, 5, 5), Interval(0, 0))
        request = Request.issue(1, 1, "p", STPoint(5, 5, 0)).with_context(
            degenerate
        )
        assert mean_relative_center_error([request]) == 0.0
