"""Unit tests for planar and spatio-temporal points."""

import math

import pytest

from repro.geometry.point import Point, STPoint


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        p = Point(7.5, -2.25)
        assert p.distance_to(p) == 0.0

    def test_distance_is_symmetric(self):
        a, b = Point(1, 2), Point(-4, 9)
        assert a.distance_to(b) == b.distance_to(a)

    def test_translated(self):
        assert Point(1, 1).translated(2, -3) == Point(3, -2)

    def test_translation_preserves_original(self):
        p = Point(0, 0)
        p.translated(5, 5)
        assert p == Point(0, 0)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_points_are_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    def test_points_are_immutable(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 5


class TestSTPoint:
    def test_spatial_component(self):
        assert STPoint(3, 4, 100.0).point == Point(3, 4)

    def test_spatial_distance_ignores_time(self):
        a = STPoint(0, 0, 0.0)
        b = STPoint(3, 4, 99999.0)
        assert a.spatial_distance_to(b) == pytest.approx(5.0)

    def test_as_tuple(self):
        assert STPoint(1, 2, 3).as_tuple() == (1, 2, 3)

    def test_hashable(self):
        assert len({STPoint(1, 2, 3), STPoint(1, 2, 3)}) == 1

    def test_distinct_times_distinct_points(self):
        assert STPoint(1, 2, 3) != STPoint(1, 2, 4)

    def test_spatial_distance_is_finite_for_large_values(self):
        a = STPoint(1e8, 1e8, 0)
        b = STPoint(-1e8, -1e8, 0)
        assert math.isfinite(a.spatial_distance_to(b))
