"""Unit tests for distance functions."""

import math

import pytest

from repro.geometry.distance import (
    euclidean,
    point_to_rect_distance,
    st_distance,
)
from repro.geometry.point import Point, STPoint
from repro.geometry.region import Rect


class TestEuclidean:
    def test_basic(self):
        assert euclidean(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_zero(self):
        assert euclidean(Point(1, 1), Point(1, 1)) == 0.0


class TestSTDistance:
    def test_pure_spatial_when_synchronous(self):
        a, b = STPoint(0, 0, 100), STPoint(3, 4, 100)
        assert st_distance(a, b) == pytest.approx(5.0)

    def test_time_scaled_into_meters(self):
        a, b = STPoint(0, 0, 0), STPoint(0, 0, 10)
        assert st_distance(a, b, time_scale=2.0) == pytest.approx(20.0)

    def test_combined_is_3d_euclidean(self):
        a, b = STPoint(0, 0, 0), STPoint(3, 0, 4)
        assert st_distance(a, b, time_scale=1.0) == pytest.approx(5.0)

    def test_symmetric(self):
        a, b = STPoint(1, 2, 3), STPoint(-4, 0, 9)
        assert st_distance(a, b) == pytest.approx(st_distance(b, a))

    def test_zero_time_scale_ignores_time(self):
        a, b = STPoint(0, 0, 0), STPoint(3, 4, 1e6)
        assert st_distance(a, b, time_scale=0.0) == pytest.approx(5.0)


class TestPointToRect:
    def test_inside_is_zero(self):
        assert point_to_rect_distance(Point(5, 5), Rect(0, 0, 10, 10)) == 0.0

    def test_on_boundary_is_zero(self):
        assert point_to_rect_distance(Point(0, 5), Rect(0, 0, 10, 10)) == 0.0

    def test_outside_axis_aligned(self):
        assert point_to_rect_distance(
            Point(13, 5), Rect(0, 0, 10, 10)
        ) == pytest.approx(3.0)

    def test_outside_corner(self):
        d = point_to_rect_distance(Point(13, 14), Rect(0, 0, 10, 10))
        assert d == pytest.approx(math.hypot(3, 4))
