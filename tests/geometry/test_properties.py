"""Property-based tests for the geometry algebra."""

import math

from hypothesis import given, strategies as st

from repro.geometry.distance import st_distance
from repro.geometry.point import Point, STPoint
from repro.geometry.region import Interval, Rect, STBox

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
times = st.floats(
    min_value=0.0, max_value=1e8, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)
st_points = st.builds(STPoint, coords, coords, times)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2, y2)


@st.composite
def intervals(draw):
    t1, t2 = sorted((draw(times), draw(times)))
    return Interval(t1, t2)


@st.composite
def boxes(draw):
    return STBox(draw(rects()), draw(intervals()))


class TestDistanceProperties:
    @given(st_points, st_points)
    def test_symmetry(self, a, b):
        assert st_distance(a, b) == st_distance(b, a)

    @given(st_points)
    def test_identity(self, a):
        assert st_distance(a, a) == 0.0

    @given(st_points, st_points, st_points)
    def test_triangle_inequality(self, a, b, c):
        lhs = st_distance(a, c)
        rhs = st_distance(a, b) + st_distance(b, c)
        assert lhs <= rhs * (1 + 1e-9) + 1e-6


class TestBoundingProperties:
    @given(st.lists(points, min_size=1, max_size=10))
    def test_bounding_contains_all(self, pts):
        rect = Rect.bounding(pts)
        assert all(rect.contains(p) for p in pts)

    @given(st.lists(st_points, min_size=1, max_size=10))
    def test_st_bounding_contains_all(self, pts):
        box = STBox.bounding_st(pts)
        assert all(box.contains(p) for p in pts)

    @given(st.lists(points, min_size=1, max_size=10), rects())
    def test_bounding_is_smallest(self, pts, candidate):
        """Any rect containing all the points contains the bounding rect."""
        bound = Rect.bounding(pts)
        if all(candidate.contains(p) for p in pts):
            assert candidate.contains_rect(bound)


class TestHullProperties:
    @given(rects(), rects())
    def test_union_hull_contains_both(self, a, b):
        hull = a.union_hull(b)
        assert hull.contains_rect(a)
        assert hull.contains_rect(b)

    @given(rects(), rects())
    def test_union_hull_commutes(self, a, b):
        assert a.union_hull(b) == b.union_hull(a)

    @given(intervals(), intervals())
    def test_interval_hull_contains_both(self, a, b):
        hull = a.union_hull(b)
        assert hull.contains_interval(a)
        assert hull.contains_interval(b)


class TestIntersectionProperties:
    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)

    @given(rects(), rects())
    def test_overlap_iff_intersection(self, a, b):
        assert a.overlaps(b) == (a.intersection(b) is not None)


class TestContainmentTransitivity:
    @given(boxes(), boxes(), st_points)
    def test_box_containment_transitive(self, outer, inner, p):
        if outer.contains_box(inner) and inner.contains(p):
            assert outer.contains(p)


class TestClampProperties:
    @given(rects(), points, st.floats(min_value=0.0, max_value=1e6))
    def test_clamp_respects_limit_and_anchor(self, rect, anchor, limit):
        if not rect.contains(anchor):
            return
        clamped = rect.clamped_around(anchor, limit, limit)
        assert clamped.width <= limit * (1 + 1e-9) + 1e-9
        assert clamped.height <= limit * (1 + 1e-9) + 1e-9
        assert clamped.contains(anchor)
        assert rect.contains_rect(clamped)

    @given(intervals(), times, st.floats(min_value=0.0, max_value=1e8))
    def test_interval_clamp(self, interval, anchor, limit):
        if not interval.contains(anchor):
            return
        clamped = interval.clamped_around(anchor, limit)
        assert clamped.duration <= limit * (1 + 1e-9) + 1e-6
        assert clamped.contains(anchor) or math.isclose(
            clamped.start, anchor
        ) or math.isclose(clamped.end, anchor)
        assert interval.contains_interval(clamped)
