"""Unit tests for intervals, rectangles, and spatio-temporal boxes."""

import pytest

from repro.geometry.point import Point, STPoint
from repro.geometry.region import Interval, Rect, STBox


class TestInterval:
    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            Interval(5.0, 4.0)

    def test_degenerate_allowed(self):
        assert Interval(3.0, 3.0).duration == 0.0

    def test_contains_endpoints(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)
        assert iv.contains(2.0)
        assert not iv.contains(2.0001)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 8))
        assert not Interval(0, 10).contains_interval(Interval(2, 11))

    def test_overlap_shared_endpoint(self):
        assert Interval(0, 1).overlaps(Interval(1, 2))

    def test_disjoint_intersection_is_none(self):
        assert Interval(0, 1).intersection(Interval(2, 3)) is None

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 8)) == Interval(3, 5)

    def test_union_hull(self):
        assert Interval(0, 1).union_hull(Interval(5, 6)) == Interval(0, 6)

    def test_expanded(self):
        assert Interval(2, 4).expanded(1) == Interval(1, 5)

    def test_expanded_rejects_negative_margin(self):
        with pytest.raises(ValueError):
            Interval(0, 1).expanded(-0.5)

    def test_center(self):
        assert Interval(2, 6).center == 4.0


class TestIntervalClamp:
    def test_noop_when_within_limit(self):
        iv = Interval(0, 10)
        assert iv.clamped_around(5.0, 20.0) == iv

    def test_clamps_to_max_duration(self):
        clamped = Interval(0, 100).clamped_around(50.0, 10.0)
        assert clamped.duration == pytest.approx(10.0)
        assert clamped.contains(50.0)

    def test_anchor_near_start_keeps_window_inside(self):
        clamped = Interval(0, 100).clamped_around(1.0, 10.0)
        assert clamped.start == 0.0
        assert clamped.contains(1.0)

    def test_anchor_near_end_keeps_window_inside(self):
        clamped = Interval(0, 100).clamped_around(99.0, 10.0)
        assert clamped.end == 100.0
        assert clamped.contains(99.0)


class TestRect:
    def test_invalid_corners_rejected(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 0, 5)

    def test_from_center(self):
        r = Rect.from_center(Point(10, 10), 4, 6)
        assert (r.x_min, r.y_min, r.x_max, r.y_max) == (8, 7, 12, 13)

    def test_from_point_is_degenerate(self):
        r = Rect.from_point(Point(3, 4))
        assert r.area == 0.0
        assert r.contains(Point(3, 4))

    def test_bounding(self):
        r = Rect.bounding([Point(0, 5), Point(3, 1), Point(-2, 2)])
        assert (r.x_min, r.y_min, r.x_max, r.y_max) == (-2, 1, 3, 5)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])

    def test_contains_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(Point(0, 2))
        assert not r.contains(Point(-0.001, 1))

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 9, 9))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 11, 9))

    def test_overlaps_touching_edges(self):
        assert Rect(0, 0, 1, 1).overlaps(Rect(1, 0, 2, 1))

    def test_disjoint_intersection_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_intersection(self):
        r = Rect(0, 0, 4, 4).intersection(Rect(2, 2, 6, 6))
        assert r == Rect(2, 2, 4, 4)

    def test_union_hull(self):
        r = Rect(0, 0, 1, 1).union_hull(Rect(5, 5, 6, 6))
        assert r == Rect(0, 0, 6, 6)

    def test_area_and_dimensions(self):
        r = Rect(0, 0, 3, 5)
        assert r.width == 3
        assert r.height == 5
        assert r.area == 15

    def test_expanded(self):
        assert Rect(1, 1, 2, 2).expanded(1) == Rect(0, 0, 3, 3)

    def test_clamped_around_keeps_anchor(self):
        big = Rect(0, 0, 1000, 1000)
        clamped = big.clamped_around(Point(990, 990), 100, 100)
        assert clamped.width == pytest.approx(100)
        assert clamped.height == pytest.approx(100)
        assert clamped.contains(Point(990, 990))
        assert big.contains_rect(clamped)


class TestSTBox:
    def test_from_st_point(self):
        box = STBox.from_st_point(STPoint(1, 2, 3))
        assert box.volume == 0.0
        assert box.contains(STPoint(1, 2, 3))

    def test_bounding_st(self):
        box = STBox.bounding_st(
            [STPoint(0, 0, 10), STPoint(4, 2, 30), STPoint(1, 5, 20)]
        )
        assert box.rect == Rect(0, 0, 4, 5)
        assert box.interval == Interval(10, 30)

    def test_bounding_st_empty_raises(self):
        with pytest.raises(ValueError):
            STBox.bounding_st([])

    def test_contains_needs_both_axes(self):
        box = STBox(Rect(0, 0, 10, 10), Interval(0, 100))
        assert box.contains(STPoint(5, 5, 50))
        assert not box.contains(STPoint(5, 5, 101))
        assert not box.contains(STPoint(11, 5, 50))

    def test_contains_box(self):
        outer = STBox(Rect(0, 0, 10, 10), Interval(0, 100))
        inner = STBox(Rect(1, 1, 9, 9), Interval(10, 90))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_overlaps(self):
        a = STBox(Rect(0, 0, 10, 10), Interval(0, 10))
        b = STBox(Rect(5, 5, 15, 15), Interval(5, 15))
        c = STBox(Rect(5, 5, 15, 15), Interval(11, 15))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_union_hull(self):
        a = STBox(Rect(0, 0, 1, 1), Interval(0, 1))
        b = STBox(Rect(5, 5, 6, 6), Interval(9, 10))
        hull = a.union_hull(b)
        assert hull.rect == Rect(0, 0, 6, 6)
        assert hull.interval == Interval(0, 10)

    def test_expanded(self):
        box = STBox(Rect(1, 1, 2, 2), Interval(10, 20)).expanded(1, 5)
        assert box.rect == Rect(0, 0, 3, 3)
        assert box.interval == Interval(5, 25)

    def test_volume(self):
        box = STBox(Rect(0, 0, 2, 3), Interval(0, 10))
        assert box.volume == 60.0
