"""The public API surface: everything advertised must exist and import."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.geometry",
    "repro.granularity",
    "repro.core",
    "repro.engine",
    "repro.mod",
    "repro.mobility",
    "repro.ts",
    "repro.attack",
    "repro.baselines",
    "repro.mixzone",
    "repro.metrics",
    "repro.mining",
    "repro.experiments",
    "repro.obs",
    "repro.serve",
]


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        major, _minor, _patch = repro.__version__.split(".")
        assert int(major) >= 1


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackages:
    def test_imports(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a docstring"

    def test_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"


class TestDocumentation:
    def test_public_callables_documented(self):
        """Every name exported at the top level carries a docstring."""
        undocumented = []
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if callable(obj) and not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented
