"""Unit tests for on-demand mix-zone formation."""

import pytest

from repro.geometry.point import STPoint
from repro.mixzone.on_demand import OnDemandMixZone
from repro.mod.store import TrajectoryStore


def store_with_diverging_users(n=4, center=(500.0, 500.0), t=1000.0):
    """Users converging on the center from the four compass directions
    (so their recent headings diverge)."""
    store = TrajectoryStore()
    directions = [(1, 0), (-1, 0), (0, 1), (0, -1)]
    for user_id in range(n):
        dx, dy = directions[user_id % 4]
        store.add_point(
            user_id,
            STPoint(center[0] - 100 * dx, center[1] - 100 * dy, t - 60),
        )
        store.add_point(user_id, STPoint(center[0], center[1], t))
    return store


class TestConstruction:
    def test_rejects_k_below_two(self):
        with pytest.raises(ValueError):
            OnDemandMixZone(TrajectoryStore(), k=1)

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            OnDemandMixZone(TrajectoryStore(), radius=0.0)

    def test_rejects_bad_sectors(self):
        with pytest.raises(ValueError):
            OnDemandMixZone(TrajectoryStore(), min_heading_sectors=5)


class TestFormation:
    def test_succeeds_with_diverging_crowd(self):
        store = store_with_diverging_users()
        zone = OnDemandMixZone(store, k=3, radius=250.0)
        outcome = zone.attempt_unlink(99, STPoint(500, 500, 1000.0))
        assert outcome.success
        assert 0 < outcome.theta < 1
        assert zone.formations

    def test_theta_shrinks_with_more_candidates(self):
        small = OnDemandMixZone(
            store_with_diverging_users(3), k=3, radius=250.0
        )
        large = OnDemandMixZone(
            store_with_diverging_users(8), k=3, radius=250.0
        )
        request = STPoint(500, 500, 1000.0)
        theta_small = small.attempt_unlink(99, request).theta
        theta_large = large.attempt_unlink(99, request).theta
        assert theta_large < theta_small

    def test_fails_when_too_few_users(self):
        store = store_with_diverging_users(1)
        zone = OnDemandMixZone(store, k=3, radius=250.0)
        assert not zone.attempt_unlink(99, STPoint(500, 500, 1000.0)).success

    def test_fails_when_users_far_away(self):
        store = store_with_diverging_users()
        zone = OnDemandMixZone(store, k=3, radius=250.0)
        assert not zone.attempt_unlink(
            99, STPoint(5000, 5000, 1000.0)
        ).success

    def test_fails_when_samples_stale(self):
        store = store_with_diverging_users(t=1000.0)
        zone = OnDemandMixZone(store, k=3, radius=250.0, staleness=300.0)
        assert not zone.attempt_unlink(
            99, STPoint(500, 500, 10_000.0)
        ).success

    def test_fails_without_heading_diversity(self):
        """A crowd all marching east cannot mix."""
        store = TrajectoryStore()
        for user_id in range(5):
            y = 480.0 + 10 * user_id
            store.add_point(user_id, STPoint(400, y, 940.0))
            store.add_point(user_id, STPoint(500, y, 1000.0))
        zone = OnDemandMixZone(
            store, k=3, radius=250.0, min_heading_sectors=2
        )
        assert not zone.attempt_unlink(
            99, STPoint(500, 500, 1000.0)
        ).success

    def test_requester_not_counted_as_candidate(self):
        store = store_with_diverging_users(3)
        zone = OnDemandMixZone(store, k=4, radius=250.0)
        # Requester is user 0: only users 1, 2 remain -> k=4 impossible.
        assert not zone.attempt_unlink(0, STPoint(500, 500, 1000.0)).success
