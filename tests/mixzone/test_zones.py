"""Unit tests for static mix-zones and the re-association game."""

import pytest

from repro.core.phl import PersonalHistory
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.mixzone.zones import (
    Crossing,
    MixZone,
    batch_crossings_by_time,
    reassociation_game,
    zone_attack_accuracy,
)

ZONE = MixZone(Rect(400, 400, 600, 600))


def crossing_history(user_id, t0, speed=10.0, y=500.0):
    """A straight west-to-east traversal of the zone at height ``y``."""
    points = [
        STPoint(x, y, t0 + (x / speed)) for x in range(0, 1001, 100)
    ]
    return PersonalHistory(user_id, points)


class TestCrossingDetection:
    def test_single_traversal(self):
        crossings = ZONE.crossings(crossing_history(1, 0.0))
        assert len(crossings) == 1
        crossing = crossings[0]
        assert ZONE.contains(crossing.entry.point)
        assert ZONE.contains(crossing.exit.point)
        assert crossing.dwell_time > 0

    def test_no_crossing_outside(self):
        history = crossing_history(1, 0.0, y=50.0)
        assert ZONE.crossings(history) == []

    def test_still_inside_not_counted(self):
        points = [STPoint(x, 500, x) for x in range(0, 501, 100)]
        history = PersonalHistory(1, points)
        assert ZONE.crossings(history) == []

    def test_multiple_traversals(self):
        out = [STPoint(x, 500, x / 10.0) for x in range(0, 1001, 100)]
        back = [
            STPoint(1000 - x, 500, 200 + x / 10.0)
            for x in range(0, 1001, 100)
        ]
        history = PersonalHistory(1, out + back)
        assert len(ZONE.crossings(history)) == 2


class TestReassociationGame:
    def test_empty(self):
        result = reassociation_game([])
        assert result.crossings == 0
        assert result.accuracy == 0.0

    def test_single_crossing_always_linked(self):
        crossings = ZONE.crossings(crossing_history(1, 0.0))
        result = reassociation_game(crossings, expected_speed=10.0)
        assert result.accuracy == 1.0

    def test_synchronized_crossings_confuse(self):
        """Several users crossing together with identical dynamics give
        the attacker no better than chance."""
        crossings = []
        for user_id in range(4):
            crossings += ZONE.crossings(
                crossing_history(user_id, 0.0, y=450.0 + 30 * user_id)
            )
        result = reassociation_game(crossings, expected_speed=10.0)
        assert result.crossings == 4
        # With identical timing the assignment is arbitrary; the attacker
        # cannot be guaranteed more than one lucky hit on average.
        assert result.effective_anonymity >= 1.0

    def test_staggered_crossings_are_linkable(self):
        """Crossings separated by hours are trivially re-associated."""
        crossings = []
        for user_id in range(3):
            crossings += ZONE.crossings(
                crossing_history(user_id, 7200.0 * user_id)
            )
        result = reassociation_game(crossings, expected_speed=10.0)
        assert result.accuracy == 1.0

    def test_impossible_pairings_forbidden(self):
        """An exit occurring before an entry can never be matched to it."""
        early = Crossing(
            1, STPoint(450, 500, 100.0), STPoint(590, 500, 110.0)
        )
        late = Crossing(
            2, STPoint(450, 500, 500.0), STPoint(590, 500, 510.0)
        )
        result = reassociation_game([early, late], expected_speed=10.0)
        assert result.accuracy == 1.0


class TestBatching:
    def test_batches_by_window(self):
        crossings = [
            Crossing(i, STPoint(450, 500, t), STPoint(590, 500, t + 10))
            for i, t in enumerate((0.0, 100.0, 5000.0))
        ]
        batches = batch_crossings_by_time(crossings, batch_window=900.0)
        assert [len(b) for b in batches] == [2, 1]

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            batch_crossings_by_time([], 0.0)


class TestZoneAttackAccuracy:
    def test_lonely_crossers_all_identified(self):
        histories = [
            crossing_history(user_id, 7200.0 * user_id)
            for user_id in range(3)
        ]
        result = zone_attack_accuracy(ZONE, histories)
        assert result.accuracy == 1.0

    def test_crowded_zone_reduces_accuracy(self):
        lonely = [
            crossing_history(user_id, 7200.0 * user_id)
            for user_id in range(6)
        ]
        crowded = [
            crossing_history(
                user_id, 3.0 * user_id, y=440.0 + 20 * user_id
            )
            for user_id in range(6)
        ]
        lonely_result = zone_attack_accuracy(ZONE, lonely)
        crowded_result = zone_attack_accuracy(ZONE, crowded)
        assert crowded_result.accuracy <= lonely_result.accuracy
