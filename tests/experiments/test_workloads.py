"""Unit tests for the canonical workloads."""

from repro.core.generalization import ToleranceConstraint
from repro.experiments.workloads import (
    DEFAULT_TOLERANCE,
    make_policy,
    run_protected,
    small_city,
)


class TestSmallCity:
    def test_cached(self):
        assert small_city(seed=11) is small_city(seed=11)

    def test_distinct_seeds_distinct_cities(self):
        assert small_city(seed=11) is not small_city(seed=12)

    def test_shape(self):
        city = small_city(seed=11)
        assert city.config.n_commuters == 30
        assert city.config.days == 14


class TestMakePolicy:
    def test_defaults(self):
        policy = make_policy(k=7)
        assert policy.profile_for(1, "poi").k == 7
        assert policy.tolerance_for("poi") is DEFAULT_TOLERANCE

    def test_custom_tolerance(self):
        tolerance = ToleranceConstraint.square(100.0, 60.0)
        policy = make_policy(k=2, tolerance=tolerance)
        assert policy.tolerance_for("poi") is tolerance

    def test_k_prime_passthrough(self):
        policy = make_policy(k=3, k_prime_initial=6, k_prime_decrement=2)
        profile = policy.profile_for(1, "poi")
        assert profile.required_k_at_step(0) == 6
        assert profile.required_k_at_step(2) == 3


class TestRunProtected:
    def test_produces_events(self):
        report = run_protected(small_city(seed=11), k=3, seed=5)
        assert report.requests_issued == len(report.events)
        assert report.generalized_events()

    def test_home_lbqids_flag(self):
        base = run_protected(small_city(seed=11), k=3, seed=5)
        with_homes = run_protected(
            small_city(seed=11), k=3, seed=5, register_home_lbqids=True
        )
        base_gen = len(base.generalized_events())
        home_gen = len(with_homes.generalized_events())
        assert home_gen > base_gen
