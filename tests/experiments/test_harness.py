"""Unit tests for the experiment table harness."""

import math

import pytest

from repro.experiments.harness import Table


class TestTable:
    def test_rejects_empty_columns(self):
        with pytest.raises(ValueError):
            Table("t", [])

    def test_rejects_wrong_width_row(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_float_precision(self):
        table = Table("t", ["x"], precision=2)
        table.add_row([3.14159])
        assert "3.14" in table.render()
        assert "3.142" not in table.render()

    def test_bool_rendering(self):
        table = Table("t", ["ok"])
        table.add_row([True])
        table.add_row([False])
        rendered = table.render()
        assert "yes" in rendered
        assert "no" in rendered

    def test_nan_and_inf(self):
        table = Table("t", ["x"])
        table.add_row([float("nan")])
        table.add_row([math.inf])
        rendered = table.render()
        assert "nan" in rendered
        assert "inf" in rendered

    def test_alignment(self):
        table = Table("t", ["name", "value"])
        table.add_row(["a", 1])
        table.add_row(["longer", 100])
        lines = table.render().splitlines()
        data_lines = lines[3:]
        assert len({len(line) for line in data_lines}) == 1

    def test_title_in_output(self):
        table = Table("my experiment", ["x"])
        assert "my experiment" in table.render()

    def test_empty_table_renders(self):
        table = Table("t", ["col"])
        assert "col" in table.render()

    def test_print(self, capsys):
        table = Table("t", ["x"])
        table.add_row([1])
        table.print()
        assert "t" in capsys.readouterr().out
