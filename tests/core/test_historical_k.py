"""Unit tests for Historical k-anonymity (Definition 8)."""

import pytest

from repro.core.historical_k import (
    anonymity_entropy,
    historical_anonymity_set,
    request_anonymity_set,
    satisfies_historical_k,
)
from repro.core.phl import PersonalHistory
from repro.core.requests import Request
from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox


def make_histories():
    """Users 1-3 visit both boxes; user 4 only the first; user 5 neither."""
    a = STBox(Rect(0, 0, 10, 10), Interval(0, 10))
    b = STBox(Rect(90, 90, 110, 110), Interval(90, 110))
    histories = {
        1: PersonalHistory(1, [STPoint(5, 5, 5), STPoint(100, 100, 100)]),
        2: PersonalHistory(2, [STPoint(6, 6, 6), STPoint(95, 95, 95)]),
        3: PersonalHistory(3, [STPoint(4, 4, 4), STPoint(105, 105, 105)]),
        4: PersonalHistory(4, [STPoint(5, 5, 5), STPoint(500, 500, 100)]),
        5: PersonalHistory(5, [STPoint(500, 500, 5)]),
    }
    return histories, a, b


class TestHistoricalAnonymitySet:
    def test_consistent_users_found(self):
        histories, a, b = make_histories()
        got = historical_anonymity_set([a, b], histories, exclude_user=1)
        assert sorted(got) == [2, 3]

    def test_exclusion(self):
        histories, a, b = make_histories()
        got = historical_anonymity_set([a, b], histories, exclude_user=None)
        assert sorted(got) == [1, 2, 3]

    def test_empty_contexts_match_everyone(self):
        histories, _a, _b = make_histories()
        got = historical_anonymity_set([], histories, exclude_user=1)
        assert len(got) == 4

    def test_single_context(self):
        histories, a, _b = make_histories()
        got = historical_anonymity_set([a], histories, exclude_user=1)
        assert sorted(got) == [2, 3, 4]


class TestSatisfiesHistoricalK:
    def make_requests(self, histories, a, b):
        return [
            Request.issue(1, 1, "p", STPoint(5, 5, 5)).with_context(a),
            Request.issue(2, 1, "p", STPoint(100, 100, 100)).with_context(b),
        ]

    def test_satisfied_at_k3(self):
        histories, a, b = make_histories()
        requests = self.make_requests(histories, a, b)
        assert satisfies_historical_k(requests, histories, k=3)

    def test_not_satisfied_at_k4(self):
        histories, a, b = make_histories()
        requests = self.make_requests(histories, a, b)
        assert not satisfies_historical_k(requests, histories, k=4)

    def test_monotone_in_k(self):
        histories, a, b = make_histories()
        requests = self.make_requests(histories, a, b)
        satisfied = [
            satisfies_historical_k(requests, histories, k=k)
            for k in range(1, 6)
        ]
        # Once false, stays false.
        assert satisfied == sorted(satisfied, reverse=True)

    def test_empty_request_set_vacuous(self):
        histories, _a, _b = make_histories()
        assert satisfies_historical_k([], histories, k=100)

    def test_k_one_always_satisfied(self):
        histories, a, b = make_histories()
        requests = self.make_requests(histories, a, b)
        assert satisfies_historical_k(requests, histories, k=1)

    def test_rejects_mixed_users(self):
        histories, a, b = make_histories()
        mixed = [
            Request.issue(1, 1, "p", STPoint(5, 5, 5)).with_context(a),
            Request.issue(2, 2, "q", STPoint(100, 100, 100)).with_context(b),
        ]
        with pytest.raises(ValueError):
            satisfies_historical_k(mixed, histories, k=2)

    def test_rejects_bad_k(self):
        histories, a, b = make_histories()
        with pytest.raises(ValueError):
            satisfies_historical_k([], histories, k=0)


class TestRequestAnonymitySet:
    def test_includes_all_present(self):
        histories, a, _b = make_histories()
        got = request_anonymity_set(a, histories)
        assert sorted(got) == [1, 2, 3, 4]

    def test_empty_region(self):
        histories, _a, _b = make_histories()
        box = STBox(Rect(900, 900, 910, 910), Interval(0, 10))
        assert request_anonymity_set(box, histories) == []


class TestVectorizedStorePath:
    """The duck-typed ``store`` fast path equals the python scans."""

    def make_store(self, histories):
        from repro.mod.store import TrajectoryStore

        return TrajectoryStore.from_histories(histories)

    def test_historical_set_matches_python_scan(self):
        histories, a, b = make_histories()
        store = self.make_store(histories)
        for contexts in ([], [a], [b], [a, b]):
            for exclude in (None, 1, 5):
                assert historical_anonymity_set(
                    contexts, histories, exclude_user=exclude,
                    store=store,
                ) == historical_anonymity_set(
                    contexts, histories, exclude_user=exclude
                )

    def test_request_set_matches_python_scan(self):
        histories, a, b = make_histories()
        store = self.make_store(histories)
        empty = STBox(Rect(900, 900, 910, 910), Interval(0, 10))
        for context in (a, b, empty):
            assert request_anonymity_set(
                context, histories, store=store
            ) == request_anonymity_set(context, histories)

    def test_satisfies_k_matches_python_scan(self):
        histories, a, b = make_histories()
        store = self.make_store(histories)
        requests = [
            Request.issue(1, 1, "p", STPoint(5, 5, 5)).with_context(a),
            Request.issue(2, 1, "p", STPoint(100, 100, 100))
            .with_context(b),
        ]
        for k in range(1, 6):
            assert satisfies_historical_k(
                requests, histories, k=k, store=store
            ) == satisfies_historical_k(requests, histories, k=k)

    def test_order_follows_histories_mapping(self):
        # Insertion order of the mapping, not sorted user ids.
        histories, a, _b = make_histories()
        reordered = {uid: histories[uid] for uid in (4, 2, 1, 3, 5)}
        store = self.make_store(reordered)
        got = request_anonymity_set(a, reordered, store=store)
        assert got == [4, 2, 1, 3]


class TestEntropy:
    def test_uniform_set(self):
        assert anonymity_entropy([8]) == pytest.approx(3.0)

    def test_mean_over_requests(self):
        assert anonymity_entropy([2, 8]) == pytest.approx(2.0)

    def test_empty(self):
        assert anonymity_entropy([]) == 0.0

    def test_zero_size_contributes_nothing(self):
        assert anonymity_entropy([0, 4]) == pytest.approx(1.0)
