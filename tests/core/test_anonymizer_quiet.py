"""Unit tests for the post-unlinking quiet period (Section 6.3)."""

import pytest

from repro.core.anonymizer import Decision, TrustedAnonymizer
from repro.core.generalization import ToleranceConstraint
from repro.core.lbqid import commute_lbqid
from repro.core.policy import PolicyTable, PrivacyProfile
from repro.core.unlinking import AlwaysUnlink
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.granularity.timeline import time_at
from repro.mod.store import TrajectoryStore

HOME = Rect(0, 0, 100, 100)
OFFICE = Rect(900, 900, 1000, 1000)
USER = 1
TIGHT = ToleranceConstraint.square(1.0, 1.0)


def make_ts(quiet_period):
    ts = TrustedAnonymizer(
        TrajectoryStore(),
        policy=PolicyTable(
            default_profile=PrivacyProfile(k=3),
            default_tolerance=TIGHT,
        ),
        unlinker=AlwaysUnlink(),
        quiet_period=quiet_period,
    )
    ts.register_lbqid(USER, commute_lbqid(HOME, OFFICE, name="commute"))
    return ts


class TestQuietPeriod:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TrustedAnonymizer(TrajectoryStore(), quiet_period=-1.0)

    def test_requests_in_window_silenced(self):
        ts = make_ts(quiet_period=1800.0)
        # Generalization fails (tight tolerance, no neighbours) ->
        # unlink succeeds -> quiet window opens.
        first = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert first.decision is Decision.UNLINKED
        during = ts.request(USER, STPoint(60, 50, time_at(hour=7.6)))
        assert during.decision is Decision.QUIET
        assert not during.forwarded

    def test_window_expires(self):
        ts = make_ts(quiet_period=600.0)
        ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        later = ts.request(
            USER, STPoint(500, 500, time_at(hour=9.0))
        )
        assert later.decision is not Decision.QUIET

    def test_zero_quiet_never_silences(self):
        ts = make_ts(quiet_period=0.0)
        ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        after = ts.request(USER, STPoint(60, 50, time_at(hour=7.51)))
        assert after.decision is not Decision.QUIET

    def test_quiet_requests_still_ingested(self):
        ts = make_ts(quiet_period=1800.0)
        ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        ts.request(USER, STPoint(60, 50, time_at(hour=7.6)))
        assert len(ts.store.history(USER)) == 2

    def test_quiet_not_in_sp_log(self):
        ts = make_ts(quiet_period=1800.0)
        ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        ts.request(USER, STPoint(60, 50, time_at(hour=7.6)))
        msgids = {request.msgid for request in ts.sp_log()}
        assert msgids == {1}  # only the unlinked request went out

    def test_other_users_unaffected(self):
        ts = make_ts(quiet_period=1800.0)
        ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        other = ts.request(2, STPoint(500, 500, time_at(hour=7.6)))
        assert other.decision is Decision.FORWARDED
