"""Unit tests for request types and the trust boundary."""

import pytest

from repro.core.requests import Request
from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox


def make_request():
    return Request.issue(
        msgid=1,
        user_id=42,
        pseudonym="p001",
        location=STPoint(10, 20, 300),
        service="poi",
        data={"query": "pharmacy"},
    )


class TestIssue:
    def test_initial_context_is_exact(self):
        request = make_request()
        assert request.context.volume == 0.0
        assert request.context.contains(request.location)

    def test_t_property(self):
        assert make_request().t == 300

    def test_default_data_empty(self):
        request = Request.issue(1, 1, "p", STPoint(0, 0, 0))
        assert dict(request.data) == {}


class TestWithContext:
    def test_replaces_context(self):
        request = make_request()
        box = STBox(Rect(0, 0, 100, 100), Interval(200, 400))
        widened = request.with_context(box)
        assert widened.context == box
        assert widened.location == request.location

    def test_rejects_context_excluding_location(self):
        request = make_request()
        bad = STBox(Rect(500, 500, 600, 600), Interval(200, 400))
        with pytest.raises(ValueError):
            request.with_context(bad)

    def test_rejects_context_excluding_time(self):
        request = make_request()
        bad = STBox(Rect(0, 0, 100, 100), Interval(400, 500))
        with pytest.raises(ValueError):
            request.with_context(bad)


class TestWithPseudonym:
    def test_changes_only_pseudonym(self):
        request = make_request()
        rotated = request.with_pseudonym("p002")
        assert rotated.pseudonym == "p002"
        assert rotated.user_id == request.user_id
        assert rotated.context == request.context


class TestSPView:
    def test_ground_truth_stripped(self):
        view = make_request().sp_view()
        assert not hasattr(view, "user_id")
        assert not hasattr(view, "location")

    def test_observable_fields_preserved(self):
        request = make_request()
        view = request.sp_view()
        assert view.msgid == request.msgid
        assert view.pseudonym == request.pseudonym
        assert view.context == request.context
        assert view.service == request.service
        assert view.data == request.data
