"""Property-based tests for the LBQID monitor."""

from hypothesis import given, settings, strategies as st

from repro.core.lbqid import LBQID, LBQIDElement, commute_lbqid
from repro.core.matching import LBQIDMonitor
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.granularity.timeline import DAY, HOUR
from repro.granularity.unanchored import UnanchoredInterval

HOME = Rect(0, 0, 100, 100)
OFFICE = Rect(900, 900, 1000, 1000)

LBQIDS = st.sampled_from(
    [
        commute_lbqid(HOME, OFFICE, name="commute"),
        commute_lbqid(HOME, OFFICE, name="weekly", recurrence="2.Weekdays"),
        LBQID(
            "home-once",
            [LBQIDElement(HOME, UnanchoredInterval.from_hours(7, 9))],
        ),
        LBQID(
            "home-daily",
            [LBQIDElement(HOME, UnanchoredInterval.from_hours(7, 9))],
            "2.Days",
        ),
    ]
)


@st.composite
def location_streams(draw):
    """Time-ordered streams biased toward the anchor areas/windows."""
    count = draw(st.integers(min_value=0, max_value=60))
    events = []
    for _ in range(count):
        day = draw(st.integers(min_value=0, max_value=20))
        hour = draw(
            st.sampled_from([7.5, 8.5, 12.0, 17.0, 18.0, 21.0])
        ) + draw(st.floats(min_value=0.0, max_value=0.4))
        area = draw(st.sampled_from(["home", "office", "away"]))
        if area == "home":
            x, y = 50.0, 50.0
        elif area == "office":
            x, y = 950.0, 950.0
        else:
            x, y = 500.0, 500.0
        events.append(STPoint(x, y, day * DAY + hour * HOUR))
    events.sort(key=lambda p: p.t)
    return events


class TestMonitorProperties:
    @settings(max_examples=80, deadline=None)
    @given(LBQIDS, location_streams())
    def test_matched_is_monotone_in_prefix(self, lbqid, stream):
        """Once matched, feeding more requests never unmatches."""
        monitor = LBQIDMonitor(lbqid)
        was_matched = False
        for point in stream:
            monitor.feed(point)
            if was_matched:
                assert monitor.matched
            was_matched = monitor.matched

    @settings(max_examples=80, deadline=None)
    @given(LBQIDS, location_streams())
    def test_observations_are_well_formed(self, lbqid, stream):
        """Every recorded observation has one timestamp per element,
        non-decreasing, drawn from the fed stream, and confined to a
        single G1 granule when the recurrence demands it."""
        monitor = LBQIDMonitor(lbqid)
        fed_times = set()
        for point in stream:
            fed_times.add(point.t)
            monitor.feed(point)
        for observation in monitor.observations:
            assert len(observation) == len(lbqid.elements)
            assert list(observation) == sorted(observation)
            assert set(observation) <= fed_times
            if not lbqid.recurrence.is_empty:
                g1 = lbqid.recurrence.terms[0].granularity
                granules = {g1.granule_containing(t) for t in observation}
                assert len(granules) == 1
                assert None not in granules

    @settings(max_examples=80, deadline=None)
    @given(LBQIDS, location_streams())
    def test_matched_iff_recurrence_satisfied(self, lbqid, stream):
        monitor = LBQIDMonitor(lbqid)
        for point in stream:
            monitor.feed(point)
        assert monitor.matched == lbqid.recurrence.satisfied_by(
            monitor.observations
        )

    @settings(max_examples=80, deadline=None)
    @given(LBQIDS, location_streams())
    def test_observation_timestamps_match_elements(self, lbqid, stream):
        """Each observation timestamp falls inside the window of the
        element at its position (the Definition 2 condition)."""
        monitor = LBQIDMonitor(lbqid)
        for point in stream:
            monitor.feed(point)
        for observation in monitor.observations:
            for element, t in zip(lbqid.elements, observation):
                assert element.window.contains(t)

    @settings(max_examples=50, deadline=None)
    @given(LBQIDS, location_streams())
    def test_reset_restores_initial_state(self, lbqid, stream):
        monitor = LBQIDMonitor(lbqid)
        for point in stream:
            monitor.feed(point)
        monitor.reset()
        fresh = LBQIDMonitor(lbqid)
        assert monitor.matched == fresh.matched == False  # noqa: E712
        assert monitor.partials == fresh.partials == []
        assert monitor.observations == fresh.observations == []
