"""Property-based tests for the framework's core invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.generalization import (
    SpatioTemporalGeneralizer,
    ToleranceConstraint,
)
from repro.core.historical_k import historical_anonymity_set
from repro.core.phl import PersonalHistory
from repro.geometry.point import STPoint
from repro.geometry.region import STBox
from repro.mod.store import TrajectoryStore

coords = st.floats(
    min_value=0.0, max_value=10_000.0, allow_nan=False, allow_infinity=False
)
times = st.floats(
    min_value=0.0, max_value=86_400.0, allow_nan=False, allow_infinity=False
)
st_points = st.builds(STPoint, coords, coords, times)


@st.composite
def stores(draw):
    """A store with 2-8 users, each with 1-12 samples."""
    n_users = draw(st.integers(min_value=2, max_value=8))
    store = TrajectoryStore()
    for user_id in range(n_users):
        samples = draw(
            st.lists(st_points, min_size=1, max_size=12)
        )
        store.add_points(user_id, samples)
    return store


tolerances = st.builds(
    ToleranceConstraint.square,
    st.floats(min_value=1.0, max_value=20_000.0),
    st.floats(min_value=1.0, max_value=100_000.0),
)


class TestAlgorithm1Invariants:
    @settings(max_examples=60, deadline=None)
    @given(stores(), st_points, st.integers(min_value=1, max_value=6),
           tolerances)
    def test_box_always_contains_request(self, store, location, k, tol):
        """The forwarded context always contains the exact request,
        whether or not the tolerance forced a shrink."""
        generalizer = SpatioTemporalGeneralizer(store)
        result = generalizer.generalize_initial(
            location, k, tol, requester=0
        )
        assert result.box.contains(location)

    @settings(max_examples=60, deadline=None)
    @given(stores(), st_points, st.integers(min_value=1, max_value=6),
           tolerances)
    def test_final_box_respects_tolerance(self, store, location, k, tol):
        generalizer = SpatioTemporalGeneralizer(store)
        result = generalizer.generalize_initial(
            location, k, tol, requester=0
        )
        slack = 1e-6
        assert result.box.rect.width <= tol.max_width + slack
        assert result.box.rect.height <= tol.max_height + slack
        assert result.box.interval.duration <= tol.max_duration + slack

    @settings(max_examples=60, deadline=None)
    @given(stores(), st_points, st.integers(min_value=1, max_value=6))
    def test_success_box_contains_k_minus_one_other_users(
        self, store, location, k
    ):
        """On success (unbounded tolerance) the box provably holds k-1
        other users' PHL points: LT-consistency by construction."""
        tol = ToleranceConstraint.unbounded()
        generalizer = SpatioTemporalGeneralizer(store)
        result = generalizer.generalize_initial(
            location, k, tol, requester=0
        )
        if result.hk_anonymity:
            others = {
                user_id
                for user_id in store.user_ids()
                if user_id != 0
                and store.history(user_id).visits_box(result.box)
            }
            assert len(others) >= k - 1

    @settings(max_examples=40, deadline=None)
    @given(stores(), st_points, st_points,
           st.integers(min_value=2, max_value=5))
    def test_subsequent_preserves_id_containment(
        self, store, first, second, k
    ):
        """When the subsequent step succeeds, every reused id's chosen
        point lies in the new box."""
        tol = ToleranceConstraint.unbounded()
        generalizer = SpatioTemporalGeneralizer(store)
        initial = generalizer.generalize_initial(
            first, k, tol, requester=0
        )
        if not initial.hk_anonymity:
            return
        result = generalizer.generalize_subsequent(
            second, initial.selected_ids, tol
        )
        assert result.hk_anonymity
        assert set(result.anonymity_ids) == set(initial.selected_ids)


class TestLTConsistencyMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st_points, min_size=1, max_size=10),
        st.lists(st_points, min_size=1, max_size=5),
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=3600.0),
    )
    def test_enlarging_contexts_preserves_consistency(
        self, samples, request_points, margin, t_margin
    ):
        """Definition 7 is monotone: growing a context never breaks
        LT-consistency — the soundness of generalization itself."""
        history = PersonalHistory(1, samples)
        contexts = [STBox.from_st_point(p) for p in samples[: len(
            request_points)]]
        if not contexts:
            return
        assert history.lt_consistent_with(contexts)
        grown = [c.expanded(margin, t_margin) for c in contexts]
        assert history.lt_consistent_with(grown)


class TestHistoricalKMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(stores(), st.lists(st_points, min_size=1, max_size=4),
           st.floats(min_value=1.0, max_value=2000.0))
    def test_anonymity_set_shrinks_with_more_contexts(
        self, store, centers, size
    ):
        """Adding a request context can only shrink the anonymity set."""
        contexts = [
            STBox.from_st_point(p).expanded(size, size) for p in centers
        ]
        histories = store.histories
        previous = None
        for i in range(1, len(contexts) + 1):
            consistent = set(
                historical_anonymity_set(contexts[:i], histories)
            )
            if previous is not None:
                assert consistent <= previous
            previous = consistent
