"""Unit tests for multiple LBQIDs per user and randomized forwarding.

The paper's Algorithm 1 is presented "for simplicity" under the
assumption that "each request can match an element in only one of the
LBQIDs defined for a certain user" and notes it "can be easily extended
to consider multiple LBQIDs"; these tests pin down the extension's
behaviour.
"""

import numpy as np

from repro.core.anonymizer import Decision, TrustedAnonymizer
from repro.core.generalization import ToleranceConstraint
from repro.core.lbqid import LBQID, LBQIDElement, commute_lbqid
from repro.core.policy import PolicyTable, PrivacyProfile
from repro.core.randomization import BoxRandomizer
from repro.core.unlinking import AlwaysUnlink
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.granularity.timeline import time_at
from repro.granularity.unanchored import UnanchoredInterval
from repro.mod.store import TrajectoryStore

HOME = Rect(0, 0, 100, 100)
OFFICE = Rect(900, 900, 1000, 1000)
USER = 1
LOOSE = ToleranceConstraint.square(5_000.0, 7_200.0)


def make_ts(randomizer=None, tolerance=LOOSE):
    policy = PolicyTable(
        default_profile=PrivacyProfile(k=3),
        default_tolerance=tolerance,
    )
    ts = TrustedAnonymizer(
        TrajectoryStore(),
        policy=policy,
        unlinker=AlwaysUnlink(),
        randomizer=randomizer,
    )
    # Neighbour presence around both anchors, repeated daily.
    for day in range(5):
        for user, jitter in ((2, 0.0), (3, 5.0), (4, 10.0)):
            ts.report_location(
                user, STPoint(40 + jitter, 40,
                              time_at(day=day, hour=7.4))
            )
            ts.report_location(
                user, STPoint(950 + jitter, 950,
                              time_at(day=day, hour=8.4))
            )
    return ts


def home_lbqid():
    return LBQID(
        "home-anytime",
        [LBQIDElement(HOME, UnanchoredInterval(0.0, 86_399.0))],
    )


class TestMultipleLBQIDs:
    def test_most_advanced_monitor_wins(self):
        """A request matching an intermediate element of one LBQID and
        the first element of another is attributed to the former."""
        ts = make_ts()
        ts.register_lbqid(USER, commute_lbqid(HOME, OFFICE, name="commute"))
        office_first = LBQID(
            "office-anytime",
            [LBQIDElement(OFFICE, UnanchoredInterval(0.0, 86_399.0))],
        )
        ts.register_lbqid(USER, office_first)
        ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        event = ts.request(USER, STPoint(950, 950, time_at(hour=8.5)))
        assert event.decision is Decision.GENERALIZED
        assert event.lbqid_name == "commute"

    def test_each_lbqid_keeps_its_own_anonymity_set(self):
        ts = make_ts()
        ts.register_lbqid(USER, commute_lbqid(HOME, OFFICE, name="commute"))
        ts.register_lbqid(USER, home_lbqid())
        ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        states = ts._states[USER]
        assert len(states) == 2
        # Both matched (home-anytime + commute E0); both cached a set.
        cached = [s.anonymity_ids for s in states]
        assert any(ids is not None for ids in cached)

    def test_unlink_resets_all_monitors(self):
        ts = make_ts(tolerance=ToleranceConstraint.square(1.0, 1.0))
        ts.register_lbqid(USER, commute_lbqid(HOME, OFFICE, name="commute"))
        ts.register_lbqid(USER, home_lbqid())
        event = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.UNLINKED
        for state in ts._states[USER]:
            assert not state.monitor.partials
            assert state.anonymity_ids is None

    def test_non_matching_other_users_unaffected(self):
        ts = make_ts()
        ts.register_lbqid(USER, home_lbqid())
        event = ts.request(2, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.FORWARDED


PARK = Rect(400, 0, 500, 100)
ALL_DAY = UnanchoredInterval(0.0, 86_399.0)


def two_step(name, first, second):
    """A two-element anytime LBQID ``first -> second``."""
    return LBQID(
        name,
        [LBQIDElement(first, ALL_DAY), LBQIDElement(second, ALL_DAY)],
    )


class TestMonitorTieBreaking:
    """Attribution when one request matches several LBQIDs at once.

    The selection rule (now ``MonitorMatch.select_match``): every
    monitor is fed, the most-advanced partial wins, and equal progress
    breaks deterministically toward the earliest-registered LBQID
    (the sort is stable).
    """

    def test_advanced_partial_beats_fresh_start(self):
        """OFFICE extends home->office (progress 2) and starts
        office->park (progress 1); the extension wins even though the
        fresh starter was registered first."""
        ts = make_ts()
        ts.register_lbqid(USER, two_step("office-park", OFFICE, PARK))
        ts.register_lbqid(USER, two_step("home-office", HOME, OFFICE))
        ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        event = ts.request(USER, STPoint(950, 950, time_at(hour=8.5)))
        assert event.decision is Decision.GENERALIZED
        assert event.lbqid_name == "home-office"

    def test_all_monitors_are_fed_even_when_losing(self):
        """The losing LBQID still advances its own automaton — the tie
        break picks the attribution, not which monitors observe."""
        ts = make_ts()
        ts.register_lbqid(USER, two_step("office-park", OFFICE, PARK))
        ts.register_lbqid(USER, two_step("home-office", HOME, OFFICE))
        ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        ts.request(USER, STPoint(950, 950, time_at(hour=8.5)))
        office_park = ts._states[USER][0]
        assert office_park.monitor.partials

    def test_equal_progress_attributed_to_earliest_registered(self):
        """HOME starts both patterns at progress 1; registration order
        decides, deterministically."""
        ts = make_ts()
        ts.register_lbqid(USER, two_step("alpha", HOME, OFFICE))
        ts.register_lbqid(USER, two_step("beta", HOME, PARK))
        event = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.GENERALIZED
        assert event.lbqid_name == "alpha"

    def test_equal_progress_tie_follows_registration_order(self):
        """Swapping the registration order swaps the attribution: the
        tie break is positional, not name- or content-based."""
        ts = make_ts()
        ts.register_lbqid(USER, two_step("beta", HOME, PARK))
        ts.register_lbqid(USER, two_step("alpha", HOME, OFFICE))
        event = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.lbqid_name == "beta"


class TestRandomizedForwarding:
    def test_randomized_context_contains_location(self):
        ts = make_ts(
            randomizer=BoxRandomizer(np.random.default_rng(0))
        )
        ts.register_lbqid(USER, home_lbqid())
        event = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.GENERALIZED
        assert event.request.context.contains(event.request.location)

    def test_randomized_context_within_tolerance(self):
        tolerance = ToleranceConstraint.square(2_000.0, 3_600.0)
        ts = make_ts(
            randomizer=BoxRandomizer(np.random.default_rng(0)),
            tolerance=tolerance,
        )
        ts.register_lbqid(USER, home_lbqid())
        for hour in (7.5, 9.5, 11.5):
            event = ts.request(USER, STPoint(50, 50, time_at(hour=hour)))
            if event.decision is Decision.GENERALIZED:
                assert tolerance.satisfied_by(event.request.context)

    def test_randomized_context_contains_algorithm_box(self):
        ts = make_ts(
            randomizer=BoxRandomizer(np.random.default_rng(0))
        )
        ts.register_lbqid(USER, home_lbqid())
        event = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.generalization is not None
        assert event.request.context.contains_box(
            event.generalization.box
        )
