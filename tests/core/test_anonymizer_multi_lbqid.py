"""Unit tests for multiple LBQIDs per user and randomized forwarding.

The paper's Algorithm 1 is presented "for simplicity" under the
assumption that "each request can match an element in only one of the
LBQIDs defined for a certain user" and notes it "can be easily extended
to consider multiple LBQIDs"; these tests pin down the extension's
behaviour.
"""

import numpy as np

from repro.core.anonymizer import Decision, TrustedAnonymizer
from repro.core.generalization import ToleranceConstraint
from repro.core.lbqid import LBQID, LBQIDElement, commute_lbqid
from repro.core.policy import PolicyTable, PrivacyProfile
from repro.core.randomization import BoxRandomizer
from repro.core.unlinking import AlwaysUnlink
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.granularity.timeline import time_at
from repro.granularity.unanchored import UnanchoredInterval
from repro.mod.store import TrajectoryStore

HOME = Rect(0, 0, 100, 100)
OFFICE = Rect(900, 900, 1000, 1000)
USER = 1
LOOSE = ToleranceConstraint.square(5_000.0, 7_200.0)


def make_ts(randomizer=None, tolerance=LOOSE):
    policy = PolicyTable(
        default_profile=PrivacyProfile(k=3),
        default_tolerance=tolerance,
    )
    ts = TrustedAnonymizer(
        TrajectoryStore(),
        policy=policy,
        unlinker=AlwaysUnlink(),
        randomizer=randomizer,
    )
    # Neighbour presence around both anchors, repeated daily.
    for day in range(5):
        for user, jitter in ((2, 0.0), (3, 5.0), (4, 10.0)):
            ts.report_location(
                user, STPoint(40 + jitter, 40,
                              time_at(day=day, hour=7.4))
            )
            ts.report_location(
                user, STPoint(950 + jitter, 950,
                              time_at(day=day, hour=8.4))
            )
    return ts


def home_lbqid():
    return LBQID(
        "home-anytime",
        [LBQIDElement(HOME, UnanchoredInterval(0.0, 86_399.0))],
    )


class TestMultipleLBQIDs:
    def test_most_advanced_monitor_wins(self):
        """A request matching an intermediate element of one LBQID and
        the first element of another is attributed to the former."""
        ts = make_ts()
        ts.register_lbqid(USER, commute_lbqid(HOME, OFFICE, name="commute"))
        office_first = LBQID(
            "office-anytime",
            [LBQIDElement(OFFICE, UnanchoredInterval(0.0, 86_399.0))],
        )
        ts.register_lbqid(USER, office_first)
        ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        event = ts.request(USER, STPoint(950, 950, time_at(hour=8.5)))
        assert event.decision is Decision.GENERALIZED
        assert event.lbqid_name == "commute"

    def test_each_lbqid_keeps_its_own_anonymity_set(self):
        ts = make_ts()
        ts.register_lbqid(USER, commute_lbqid(HOME, OFFICE, name="commute"))
        ts.register_lbqid(USER, home_lbqid())
        ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        states = ts._states[USER]
        assert len(states) == 2
        # Both matched (home-anytime + commute E0); both cached a set.
        cached = [s.anonymity_ids for s in states]
        assert any(ids is not None for ids in cached)

    def test_unlink_resets_all_monitors(self):
        ts = make_ts(tolerance=ToleranceConstraint.square(1.0, 1.0))
        ts.register_lbqid(USER, commute_lbqid(HOME, OFFICE, name="commute"))
        ts.register_lbqid(USER, home_lbqid())
        event = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.UNLINKED
        for state in ts._states[USER]:
            assert not state.monitor.partials
            assert state.anonymity_ids is None

    def test_non_matching_other_users_unaffected(self):
        ts = make_ts()
        ts.register_lbqid(USER, home_lbqid())
        event = ts.request(2, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.FORWARDED


class TestRandomizedForwarding:
    def test_randomized_context_contains_location(self):
        ts = make_ts(
            randomizer=BoxRandomizer(np.random.default_rng(0))
        )
        ts.register_lbqid(USER, home_lbqid())
        event = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.GENERALIZED
        assert event.request.context.contains(event.request.location)

    def test_randomized_context_within_tolerance(self):
        tolerance = ToleranceConstraint.square(2_000.0, 3_600.0)
        ts = make_ts(
            randomizer=BoxRandomizer(np.random.default_rng(0)),
            tolerance=tolerance,
        )
        ts.register_lbqid(USER, home_lbqid())
        for hour in (7.5, 9.5, 11.5):
            event = ts.request(USER, STPoint(50, 50, time_at(hour=hour)))
            if event.decision is Decision.GENERALIZED:
                assert tolerance.satisfied_by(event.request.context)

    def test_randomized_context_contains_algorithm_box(self):
        ts = make_ts(
            randomizer=BoxRandomizer(np.random.default_rng(0))
        )
        ts.register_lbqid(USER, home_lbqid())
        event = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.generalization is not None
        assert event.request.context.contains_box(
            event.generalization.box
        )
