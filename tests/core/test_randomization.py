"""Unit and property tests for randomized context placement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.generalization import ToleranceConstraint
from repro.core.randomization import BoxRandomizer
from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox

BOX = STBox(Rect(100, 100, 300, 300), Interval(1000, 1600))
ANCHOR = STPoint(150, 250, 1100)
TOLERANCE = ToleranceConstraint.square(1000.0, 3600.0)


def randomizer(seed=0, slack=1.0):
    return BoxRandomizer(np.random.default_rng(seed), slack=slack)


class TestValidation:
    def test_rejects_bad_slack(self):
        with pytest.raises(ValueError):
            BoxRandomizer(np.random.default_rng(0), slack=1.5)

    def test_rejects_anchor_outside(self):
        with pytest.raises(ValueError):
            randomizer().randomize(
                BOX, STPoint(0, 0, 0), TOLERANCE
            )


class TestInvariants:
    def test_result_contains_original_box(self):
        result = randomizer().randomize(BOX, ANCHOR, TOLERANCE)
        assert result.contains_box(BOX)

    def test_result_contains_anchor(self):
        result = randomizer().randomize(BOX, ANCHOR, TOLERANCE)
        assert result.contains(ANCHOR)

    def test_result_within_tolerance(self):
        for seed in range(20):
            result = randomizer(seed).randomize(BOX, ANCHOR, TOLERANCE)
            assert TOLERANCE.satisfied_by(result)

    def test_zero_slack_is_identity(self):
        result = randomizer(slack=0.0).randomize(BOX, ANCHOR, TOLERANCE)
        assert result == BOX

    def test_unbounded_tolerance_is_identity(self):
        result = randomizer().randomize(
            BOX, ANCHOR, ToleranceConstraint.unbounded()
        )
        assert result == BOX

    def test_box_at_tolerance_is_identity(self):
        tight = ToleranceConstraint(
            BOX.rect.width, BOX.rect.height, BOX.interval.duration
        )
        result = randomizer().randomize(BOX, ANCHOR, tight)
        assert result == BOX

    def test_randomization_varies(self):
        results = {
            randomizer(seed).randomize(BOX, ANCHOR, TOLERANCE)
            for seed in range(10)
        }
        assert len(results) > 5


class TestDebiasing:
    def test_anchor_position_spreads(self):
        """Over many draws the anchor's relative x-position inside the
        box covers a wide range, not a point mass."""
        rng = np.random.default_rng(3)
        r = BoxRandomizer(rng)
        positions = []
        for _ in range(300):
            result = r.randomize(BOX, ANCHOR, TOLERANCE)
            rect = result.rect
            positions.append((ANCHOR.x - rect.x_min) / rect.width)
        assert max(positions) - min(positions) > 0.5


class TestProperties:
    coords = st.floats(min_value=0, max_value=5000)

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=0, max_value=1000),
        st.floats(min_value=0, max_value=1000),
        st.floats(min_value=1, max_value=500),
        st.integers(min_value=0, max_value=1000),
    )
    def test_preserves_lt_consistency_witnesses(
        self, x, y, size, seed
    ):
        """Any point inside the original box stays inside the
        randomized one — so generalization witnesses (the k-1 users'
        PHL points) are never lost."""
        box = STBox(
            Rect(x, y, x + size, y + size), Interval(0, size)
        )
        anchor = STPoint(x + size / 2, y + size / 2, size / 2)
        witness = STPoint(x + size * 0.9, y + size * 0.1, size * 0.3)
        assert box.contains(witness)
        result = BoxRandomizer(np.random.default_rng(seed)).randomize(
            box, anchor, ToleranceConstraint.square(size * 3, size * 3)
        )
        assert result.contains(witness)
        assert result.contains(anchor)
