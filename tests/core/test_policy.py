"""Unit tests for privacy policies, profiles, and tolerance tables."""

import pytest

from repro.core.generalization import ToleranceConstraint
from repro.core.policy import (
    PolicyTable,
    PrivacyLevel,
    PrivacyProfile,
    RiskAction,
)


class TestPrivacyProfile:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            PrivacyProfile(k=0)

    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            PrivacyProfile(k=2, theta=1.5)

    def test_rejects_k_prime_below_k(self):
        with pytest.raises(ValueError):
            PrivacyProfile(k=5, k_prime_initial=3)

    def test_constant_requirement_without_schedule(self):
        profile = PrivacyProfile(k=5)
        assert [profile.required_k_at_step(j) for j in range(4)] == [5] * 4

    def test_schedule_decrements_to_k(self):
        profile = PrivacyProfile(k=5, k_prime_initial=9, k_prime_decrement=2)
        assert [profile.required_k_at_step(j) for j in range(5)] == [
            9, 7, 5, 5, 5,
        ]

    def test_schedule_never_below_k(self):
        profile = PrivacyProfile(k=5, k_prime_initial=6, k_prime_decrement=10)
        assert profile.required_k_at_step(100) == 5

    def test_rejects_negative_step(self):
        with pytest.raises(ValueError):
            PrivacyProfile(k=2).required_k_at_step(-1)


class TestLevels:
    def test_levels_ordered_by_strength(self):
        low = PrivacyProfile.from_level(PrivacyLevel.LOW)
        medium = PrivacyProfile.from_level(PrivacyLevel.MEDIUM)
        high = PrivacyProfile.from_level(PrivacyLevel.HIGH)
        assert low.k < medium.k < high.k
        assert low.theta > medium.theta > high.theta


class TestPolicyTable:
    def test_default_profile(self):
        table = PolicyTable()
        profile = table.profile_for(user_id=1, service="poi")
        assert profile.k == PrivacyProfile.from_level(PrivacyLevel.MEDIUM).k

    def test_user_profile_overrides_default(self):
        table = PolicyTable()
        table.set_user_profile(1, PrivacyProfile(k=12))
        assert table.profile_for(1, "poi").k == 12
        assert table.profile_for(2, "poi").k != 12

    def test_level_shorthand(self):
        table = PolicyTable()
        table.set_user_profile(1, PrivacyLevel.HIGH)
        assert table.profile_for(1, "poi").k == 10

    def test_rule_wins_over_user_profile(self):
        table = PolicyTable()
        table.set_user_profile(1, PrivacyProfile(k=3))
        table.add_rule(
            lambda user, service: PrivacyProfile(k=20)
            if service == "health"
            else None
        )
        assert table.profile_for(1, "health").k == 20
        assert table.profile_for(1, "poi").k == 3

    def test_first_matching_rule_wins(self):
        table = PolicyTable()
        table.add_rule(lambda u, s: PrivacyProfile(k=7))
        table.add_rule(lambda u, s: PrivacyProfile(k=9))
        assert table.profile_for(1, "poi").k == 7

    def test_service_tolerance(self):
        table = PolicyTable()
        tight = ToleranceConstraint.square(100.0, 60.0)
        table.set_service_tolerance("hospital", tight)
        assert table.tolerance_for("hospital") is tight
        assert table.tolerance_for("news") is table.default_tolerance

    def test_services_listing(self):
        table = PolicyTable()
        table.set_service_tolerance(
            "a", ToleranceConstraint.unbounded()
        )
        assert table.services() == ("a",)


class TestRiskAction:
    def test_default_is_suppress(self):
        assert PrivacyProfile(k=2).on_risk is RiskAction.SUPPRESS
