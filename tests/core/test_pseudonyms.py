"""Unit tests for pseudonym management."""

from repro.core.pseudonyms import PseudonymManager


class TestCurrent:
    def test_stable_until_rotation(self):
        manager = PseudonymManager()
        assert manager.current(1) == manager.current(1)

    def test_distinct_users_distinct_pseudonyms(self):
        manager = PseudonymManager()
        assert manager.current(1) != manager.current(2)

    def test_opaque(self):
        """The pseudonym string must not embed the user id."""
        manager = PseudonymManager()
        assert "42" not in manager.current(42)


class TestRotate:
    def test_rotation_changes_pseudonym(self):
        manager = PseudonymManager()
        old = manager.current(1)
        new = manager.rotate(1)
        assert new != old
        assert manager.current(1) == new

    def test_old_pseudonyms_never_reused(self):
        manager = PseudonymManager()
        seen = set()
        for _ in range(50):
            seen.add(manager.rotate(1))
            seen.add(manager.rotate(2))
        assert len(seen) == 100


class TestGroundTruth:
    def test_owner_of(self):
        manager = PseudonymManager()
        pseudonym = manager.current(7)
        manager.rotate(7)
        assert manager.owner_of(pseudonym) == 7

    def test_owner_of_unknown(self):
        assert PseudonymManager().owner_of("nope") is None

    def test_pseudonyms_of_in_order(self):
        manager = PseudonymManager()
        first = manager.current(1)
        second = manager.rotate(1)
        assert manager.pseudonyms_of(1) == [first, second]

    def test_issued_count(self):
        manager = PseudonymManager()
        manager.current(1)
        manager.rotate(1)
        manager.current(2)
        assert manager.issued_count == 3
