"""Unit tests for the abstract Unlinking providers."""

import numpy as np
import pytest

from repro.core.unlinking import (
    AlwaysUnlink,
    NeverUnlink,
    ProbabilisticUnlink,
)
from repro.geometry.point import STPoint

HERE = STPoint(0, 0, 0)


class TestAlwaysUnlink:
    def test_succeeds(self):
        outcome = AlwaysUnlink(theta=0.2).attempt_unlink(1, HERE)
        assert outcome.success
        assert outcome.theta == 0.2

    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            AlwaysUnlink(theta=2.0)


class TestNeverUnlink:
    def test_fails(self):
        assert not NeverUnlink().attempt_unlink(1, HERE).success


class TestProbabilisticUnlink:
    def test_extremes(self):
        rng = np.random.default_rng(0)
        always = ProbabilisticUnlink(1.0, rng)
        never = ProbabilisticUnlink(0.0, rng)
        assert always.attempt_unlink(1, HERE).success
        assert not never.attempt_unlink(1, HERE).success

    def test_rate_close_to_probability(self):
        rng = np.random.default_rng(7)
        provider = ProbabilisticUnlink(0.3, rng)
        successes = sum(
            provider.attempt_unlink(1, HERE).success for _ in range(2000)
        )
        assert 0.25 < successes / 2000 < 0.35

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            ProbabilisticUnlink(1.5, np.random.default_rng(0))

    def test_theta_reported_on_success(self):
        rng = np.random.default_rng(0)
        provider = ProbabilisticUnlink(1.0, rng, theta=0.1)
        assert provider.attempt_unlink(1, HERE).theta == 0.1
