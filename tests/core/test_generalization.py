"""Unit tests for Algorithm 1 (spatio-temporal generalization)."""

import pytest

from repro.core.generalization import (
    SpatioTemporalGeneralizer,
    ToleranceConstraint,
    default_context,
)
from repro.geometry.point import STPoint
from repro.mod.store import TrajectoryStore


def clustered_store():
    """Users 1-5 near the origin at t~100; user 9 far away."""
    store = TrajectoryStore()
    for user_id in range(1, 6):
        store.add_points(
            user_id,
            [
                STPoint(10.0 * user_id, 10.0 * user_id, 100.0),
                STPoint(10.0 * user_id, 10.0 * user_id, 200.0),
            ],
        )
    store.add_point(9, STPoint(5000.0, 5000.0, 100.0))
    return store


LOOSE = ToleranceConstraint.square(10_000.0, 10_000.0)
TIGHT = ToleranceConstraint.square(25.0, 50.0)


class TestToleranceConstraint:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ToleranceConstraint(-1, 1, 1)

    def test_satisfied_by(self):
        result = SpatioTemporalGeneralizer(
            clustered_store()
        ).generalize_initial(STPoint(0, 0, 100), 3, LOOSE, requester=0)
        assert LOOSE.satisfied_by(result.box)

    def test_unbounded_accepts_everything(self):
        tol = ToleranceConstraint.unbounded()
        result = SpatioTemporalGeneralizer(
            clustered_store()
        ).generalize_initial(STPoint(0, 0, 100), 6, tol, requester=0)
        assert tol.satisfied_by(result.box)

    def test_shrink_result_satisfies(self):
        store = clustered_store()
        generalizer = SpatioTemporalGeneralizer(store)
        result = generalizer.generalize_initial(
            STPoint(0, 0, 100), 5, TIGHT, requester=0
        )
        assert TIGHT.satisfied_by(result.box)
        assert not result.hk_anonymity


class TestInitialGeneralization:
    def test_box_contains_request_point(self):
        generalizer = SpatioTemporalGeneralizer(clustered_store())
        location = STPoint(0, 0, 100)
        result = generalizer.generalize_initial(
            location, 4, LOOSE, requester=0
        )
        assert result.box.contains(location)

    def test_selects_k_minus_one_distinct_users(self):
        generalizer = SpatioTemporalGeneralizer(clustered_store())
        result = generalizer.generalize_initial(
            STPoint(0, 0, 100), 4, LOOSE, requester=0
        )
        assert len(result.selected_ids) == 3
        assert len(set(result.selected_ids)) == 3

    def test_selects_nearest_users(self):
        generalizer = SpatioTemporalGeneralizer(clustered_store())
        result = generalizer.generalize_initial(
            STPoint(0, 0, 100), 4, LOOSE, requester=0
        )
        assert set(result.selected_ids) == {1, 2, 3}

    def test_requester_excluded_from_selection(self):
        generalizer = SpatioTemporalGeneralizer(clustered_store())
        result = generalizer.generalize_initial(
            STPoint(10, 10, 100), 3, LOOSE, requester=1
        )
        assert 1 not in result.selected_ids

    def test_k_one_degenerates(self):
        generalizer = SpatioTemporalGeneralizer(clustered_store())
        location = STPoint(0, 0, 100)
        result = generalizer.generalize_initial(
            location, 1, LOOSE, requester=0
        )
        assert result.hk_anonymity
        assert result.box.volume == 0.0

    def test_not_enough_users_fails(self):
        generalizer = SpatioTemporalGeneralizer(clustered_store())
        result = generalizer.generalize_initial(
            STPoint(0, 0, 100), 10, LOOSE, requester=0
        )
        assert not result.hk_anonymity

    def test_rejects_bad_k(self):
        generalizer = SpatioTemporalGeneralizer(clustered_store())
        with pytest.raises(ValueError):
            generalizer.generalize_initial(
                STPoint(0, 0, 100), 0, LOOSE, requester=0
            )

    def test_anonymity_ids_points_inside_box(self):
        store = clustered_store()
        generalizer = SpatioTemporalGeneralizer(store)
        location = STPoint(0, 0, 100)
        result = generalizer.generalize_initial(
            location, 4, LOOSE, requester=0
        )
        for user_id in result.anonymity_ids:
            closest = store.closest_point(user_id, location)
            assert result.box.contains(closest)


class TestSubsequentGeneralization:
    def test_reuses_given_users(self):
        store = clustered_store()
        generalizer = SpatioTemporalGeneralizer(store)
        result = generalizer.generalize_subsequent(
            STPoint(0, 0, 200), (1, 2, 3), LOOSE
        )
        assert result.hk_anonymity
        assert set(result.anonymity_ids) == {1, 2, 3}

    def test_missing_user_fails(self):
        generalizer = SpatioTemporalGeneralizer(clustered_store())
        result = generalizer.generalize_subsequent(
            STPoint(0, 0, 200), (1, 2, 77), LOOSE
        )
        assert not result.hk_anonymity

    def test_required_subsets_nearest(self):
        """With required < len(ids), only the nearest stored users are
        bounded (the k'-decrement heuristic)."""
        store = clustered_store()
        generalizer = SpatioTemporalGeneralizer(store)
        result = generalizer.generalize_subsequent(
            STPoint(0, 0, 200), (1, 2, 3, 4, 5), LOOSE, required=2
        )
        assert result.hk_anonymity
        assert set(result.anonymity_ids) == {1, 2}
        # The box is tighter than bounding all five users.
        full = generalizer.generalize_subsequent(
            STPoint(0, 0, 200), (1, 2, 3, 4, 5), LOOSE
        )
        assert result.box.rect.width <= full.box.rect.width

    def test_box_contains_request_point_even_after_shrink(self):
        store = clustered_store()
        generalizer = SpatioTemporalGeneralizer(store)
        location = STPoint(0, 0, 200)
        result = generalizer.generalize_subsequent(
            location, (1, 2, 3, 4, 5), TIGHT
        )
        assert result.box.contains(location)
        assert TIGHT.satisfied_by(result.box)


class TestDefaultContext:
    def test_exact_by_default(self):
        location = STPoint(3, 4, 5)
        box = default_context(location)
        assert box.volume == 0.0
        assert box.contains(location)

    def test_cloaked(self):
        location = STPoint(100, 100, 1000)
        box = default_context(
            location, ToleranceConstraint.square(200.0, 60.0)
        )
        assert box.contains(location)
        assert box.rect.width == pytest.approx(200.0)
        assert box.interval.duration == pytest.approx(60.0)
