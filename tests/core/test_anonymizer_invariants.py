"""Randomized-stream invariants of the Trusted Anonymizer.

Instead of scripting scenarios, these tests fire seeded random request
streams (mixed users, locations, and times) at a fully configured TS and
assert the properties every execution must satisfy, whatever happens:

* forwarded contexts always contain the exact request location;
* forwarded generalized contexts always satisfy the service tolerance;
* suppressed requests never reach the SP log;
* a GENERALIZED decision implies certified hk-anonymity and vice versa;
* pseudonyms never regress: once rotated, the old one is never reused;
* the store ingests exactly one point per request and location update.
"""

import numpy as np
import pytest

from repro.core.anonymizer import Decision, TrustedAnonymizer
from repro.core.generalization import ToleranceConstraint
from repro.core.lbqid import commute_lbqid
from repro.core.policy import PolicyTable, PrivacyProfile, RiskAction
from repro.core.unlinking import ProbabilisticUnlink
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.mod.store import TrajectoryStore

HOME = Rect(0, 0, 100, 100)
OFFICE = Rect(900, 900, 1000, 1000)
TOLERANCE = ToleranceConstraint.square(800.0, 1800.0)
N_USERS = 8


def run_random_stream(seed, on_risk):
    rng = np.random.default_rng(seed)
    ts = TrustedAnonymizer(
        TrajectoryStore(),
        policy=PolicyTable(
            default_profile=PrivacyProfile(k=3, on_risk=on_risk),
            default_tolerance=TOLERANCE,
        ),
        unlinker=ProbabilisticUnlink(0.5, rng),
    )
    for user_id in range(N_USERS):
        ts.register_lbqid(
            user_id, commute_lbqid(HOME, OFFICE, name=f"q{user_id}")
        )
    t = 0.0
    for _ in range(600):
        t += float(rng.exponential(300.0))
        user_id = int(rng.integers(N_USERS))
        anchor = rng.random()
        if anchor < 0.4:
            x, y = rng.uniform(0, 100, size=2)
        elif anchor < 0.8:
            x, y = rng.uniform(900, 1000, size=2)
        else:
            x, y = rng.uniform(0, 1000, size=2)
        # Timestamps are strictly increasing, per the monitor contract.
        point = STPoint(float(x), float(y), t)
        if rng.random() < 0.5:
            ts.request(user_id, point)
        else:
            ts.report_location(user_id, point)
    return ts


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize(
    "on_risk", [RiskAction.SUPPRESS, RiskAction.FORWARD]
)
class TestRandomStreamInvariants:
    def test_contexts_contain_locations(self, seed, on_risk):
        ts = run_random_stream(seed, on_risk)
        for event in ts.events:
            assert event.request.context.contains(event.request.location)

    def test_generalized_respects_tolerance(self, seed, on_risk):
        ts = run_random_stream(seed, on_risk)
        for event in ts.events:
            if event.lbqid_name is not None and event.forwarded:
                assert TOLERANCE.satisfied_by(event.request.context)

    def test_suppressed_not_in_sp_log(self, seed, on_risk):
        ts = run_random_stream(seed, on_risk)
        logged = {request.msgid for request in ts.sp_log()}
        for event in ts.events:
            if event.decision is Decision.SUPPRESSED:
                assert event.request.msgid not in logged

    def test_generalized_iff_certified(self, seed, on_risk):
        ts = run_random_stream(seed, on_risk)
        for event in ts.events:
            if event.decision is Decision.GENERALIZED:
                assert event.hk_anonymity
            if event.hk_anonymity:
                assert event.decision is Decision.GENERALIZED

    def test_pseudonyms_never_reused_after_rotation(self, seed, on_risk):
        ts = run_random_stream(seed, on_risk)
        last_seen: dict[int, list[str]] = {}
        for event in ts.events:
            user = event.request.user_id
            pseudonym = event.request.pseudonym
            chain = last_seen.setdefault(user, [])
            if chain and chain[-1] != pseudonym:
                assert pseudonym not in chain
            if not chain or chain[-1] != pseudonym:
                chain.append(pseudonym)

    def test_store_ingests_every_event(self, seed, on_risk):
        ts = run_random_stream(seed, on_risk)
        assert ts.store.total_points == 600

    def test_decision_counts_partition_events(self, seed, on_risk):
        ts = run_random_stream(seed, on_risk)
        assert sum(ts.decision_counts().values()) == len(ts.events)
