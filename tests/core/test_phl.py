"""Unit tests for Personal Histories of Locations (Definitions 6–7)."""

import pytest

from repro.core.phl import PersonalHistory
from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox


def history(points):
    return PersonalHistory(1, points)


class TestOrdering:
    def test_sorted_on_construction(self):
        h = history([STPoint(0, 0, 30), STPoint(0, 0, 10), STPoint(0, 0, 20)])
        assert [p.t for p in h] == [10, 20, 30]

    def test_add_keeps_order(self):
        h = history([STPoint(0, 0, 10), STPoint(0, 0, 30)])
        h.add(STPoint(0, 0, 20))
        assert [p.t for p in h] == [10, 20, 30]

    def test_extend(self):
        h = history([])
        h.extend([STPoint(0, 0, 5), STPoint(0, 0, 1)])
        assert [p.t for p in h] == [1, 5]

    def test_len_and_getitem(self):
        h = history([STPoint(1, 2, 3)])
        assert len(h) == 1
        assert h[0] == STPoint(1, 2, 3)


class TestWindows:
    h = history([STPoint(i, i, 10.0 * i) for i in range(10)])

    def test_points_between_inclusive(self):
        got = self.h.points_between(20.0, 40.0)
        assert [p.t for p in got] == [20.0, 30.0, 40.0]

    def test_points_between_empty(self):
        assert self.h.points_between(1000.0, 2000.0) == []

    def test_points_in_box(self):
        box = STBox(Rect(0, 0, 5, 5), Interval(0, 100))
        got = self.h.points_in_box(box)
        assert len(got) == 6  # points 0..5

    def test_visits_box(self):
        assert self.h.visits_box(
            STBox(Rect(4, 4, 5, 5), Interval(40, 50))
        )
        assert not self.h.visits_box(
            STBox(Rect(4, 4, 5, 5), Interval(60, 70))
        )


class TestLTConsistency:
    h = history([STPoint(0, 0, 0), STPoint(100, 100, 100)])

    def test_consistent_when_every_context_visited(self):
        contexts = [
            STBox(Rect(-1, -1, 1, 1), Interval(0, 10)),
            STBox(Rect(99, 99, 101, 101), Interval(90, 110)),
        ]
        assert self.h.lt_consistent_with(contexts)

    def test_one_unvisited_context_breaks_consistency(self):
        contexts = [
            STBox(Rect(-1, -1, 1, 1), Interval(0, 10)),
            STBox(Rect(500, 500, 600, 600), Interval(0, 200)),
        ]
        assert not self.h.lt_consistent_with(contexts)

    def test_vacuous_for_empty_context_set(self):
        assert self.h.lt_consistent_with([])

    def test_right_place_wrong_time(self):
        contexts = [STBox(Rect(-1, -1, 1, 1), Interval(50, 60))]
        assert not self.h.lt_consistent_with(contexts)


class TestClosestPoint:
    def test_empty_history(self):
        assert history([]).closest_point_to(STPoint(0, 0, 0)) is None

    def test_exact_hit(self):
        h = history([STPoint(5, 5, 50)])
        assert h.closest_point_to(STPoint(5, 5, 50)) == STPoint(5, 5, 50)

    def test_prefers_spatio_temporal_proximity(self):
        near_time_far_space = STPoint(1000, 0, 100)
        near_space_far_time = STPoint(0, 0, 100000)
        h = history([near_time_far_space, near_space_far_time])
        target = STPoint(0, 0, 100)
        assert h.closest_point_to(target, time_scale=1.0) == (
            near_time_far_space
        )

    def test_time_scale_zero_is_pure_spatial(self):
        near_time_far_space = STPoint(1000, 0, 100)
        near_space_far_time = STPoint(0, 0, 100000)
        h = history([near_time_far_space, near_space_far_time])
        target = STPoint(0, 0, 100)
        assert h.closest_point_to(target, time_scale=0.0) == (
            near_space_far_time
        )

    def test_matches_brute_force(self):
        import numpy as np

        from repro.geometry.distance import st_distance

        rng = np.random.default_rng(0)
        points = [
            STPoint(
                float(rng.uniform(0, 1000)),
                float(rng.uniform(0, 1000)),
                float(rng.uniform(0, 86400)),
            )
            for _ in range(200)
        ]
        h = history(points)
        for _ in range(20):
            target = STPoint(
                float(rng.uniform(0, 1000)),
                float(rng.uniform(0, 1000)),
                float(rng.uniform(0, 86400)),
            )
            expected = min(
                points, key=lambda p: st_distance(p, target, 1.5)
            )
            got = h.closest_point_to(target, time_scale=1.5)
            assert st_distance(got, target, 1.5) == pytest.approx(
                st_distance(expected, target, 1.5)
            )
