"""Unit tests for the LBQID monitor (Definitions 2–3, Section 4)."""

from repro.core.lbqid import LBQID, LBQIDElement, commute_lbqid
from repro.core.matching import (
    LBQIDMonitor,
    first_match_time,
    request_set_matches,
)
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.granularity.timeline import time_at
from repro.granularity.unanchored import UnanchoredInterval

HOME = Rect(0, 0, 100, 100)
OFFICE = Rect(900, 900, 1000, 1000)
COMMUTE = commute_lbqid(HOME, OFFICE)


def home_at(week, day, hour):
    return STPoint(50, 50, time_at(week=week, day=day, hour=hour))


def office_at(week, day, hour):
    return STPoint(950, 950, time_at(week=week, day=day, hour=hour))


def full_day(week, day):
    return [
        home_at(week, day, 7.5),
        office_at(week, day, 8.5),
        office_at(week, day, 17.0),
        home_at(week, day, 18.0),
    ]


class TestSequenceProgress:
    def test_first_element_starts_partial(self):
        monitor = LBQIDMonitor(COMMUTE)
        event = monitor.feed(home_at(0, 0, 7.5))
        assert event.started is not None
        assert event.started.is_initial
        assert not event.advanced

    def test_nonmatching_request_does_nothing(self):
        monitor = LBQIDMonitor(COMMUTE)
        monitor.feed(home_at(0, 0, 7.5))
        event = monitor.feed(STPoint(500, 500, time_at(hour=12)))
        assert not event.matched_any_element
        assert len(monitor.partials) == 1

    def test_sequence_completes_within_day(self):
        monitor = LBQIDMonitor(COMMUTE)
        events = [monitor.feed(p) for p in full_day(0, 0)]
        assert events[-1].completed
        assert len(monitor.observations) == 1

    def test_partial_expires_across_days(self):
        monitor = LBQIDMonitor(COMMUTE)
        monitor.feed(home_at(0, 0, 7.5))
        monitor.feed(office_at(0, 0, 8.5))
        # Next morning: the old partial is gone, a fresh one starts.
        event = monitor.feed(home_at(0, 1, 7.5))
        assert event.started is not None
        assert all(p.is_initial for p in monitor.partials)

    def test_out_of_order_element_does_not_advance(self):
        monitor = LBQIDMonitor(COMMUTE)
        monitor.feed(home_at(0, 0, 7.5))
        event = monitor.feed(office_at(0, 0, 17.0))  # expects E1, got E2
        assert not event.advanced

    def test_intermediate_element_without_prefix_ignored(self):
        monitor = LBQIDMonitor(COMMUTE)
        event = monitor.feed(office_at(0, 0, 8.5))
        assert not event.matched_any_element

    def test_weekend_start_is_dead(self):
        monitor = LBQIDMonitor(COMMUTE)
        event = monitor.feed(home_at(0, 5, 7.5))  # Saturday
        assert event.started is not None
        assert event.started.dead
        assert not monitor.partials

    def test_repeated_first_element_tracks_both(self):
        monitor = LBQIDMonitor(COMMUTE)
        monitor.feed(home_at(0, 0, 7.2))
        monitor.feed(home_at(0, 0, 7.8))
        assert len(monitor.partials) == 2


class TestRecurrenceIntegration:
    def test_full_pattern_matches(self):
        monitor = LBQIDMonitor(COMMUTE)
        matched = False
        for week in range(2):
            for day in range(3):
                for point in full_day(week, day):
                    matched = monitor.feed(point).lbqid_matched
        assert matched
        assert monitor.matched

    def test_five_observations_do_not_match(self):
        monitor = LBQIDMonitor(COMMUTE)
        days = [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)]
        for week, day in days:
            for point in full_day(week, day):
                monitor.feed(point)
        assert not monitor.matched
        assert len(monitor.observations) == 5

    def test_matched_flag_is_sticky(self):
        monitor = LBQIDMonitor(COMMUTE)
        for week in range(2):
            for day in range(3):
                for point in full_day(week, day):
                    monitor.feed(point)
        assert monitor.matched
        monitor.feed(STPoint(500, 500, time_at(week=3, hour=12)))
        assert monitor.matched

    def test_reset_clears_everything(self):
        monitor = LBQIDMonitor(COMMUTE)
        for week in range(2):
            for day in range(3):
                for point in full_day(week, day):
                    monitor.feed(point)
        monitor.reset()
        assert not monitor.matched
        assert not monitor.observations
        assert not monitor.partials


class TestSingleElementLBQID:
    lbqid = LBQID(
        "home-once",
        [LBQIDElement(HOME, UnanchoredInterval.from_hours(7, 8))],
    )

    def test_single_request_matches(self):
        monitor = LBQIDMonitor(self.lbqid)
        event = monitor.feed(home_at(0, 0, 7.5))
        assert event.completed
        assert event.lbqid_matched

    def test_with_recurrence(self):
        lbqid = LBQID(
            "home-daily",
            [LBQIDElement(HOME, UnanchoredInterval.from_hours(7, 8))],
            "2.Days",
        )
        monitor = LBQIDMonitor(lbqid)
        assert not monitor.feed(home_at(0, 0, 7.5)).lbqid_matched
        assert not monitor.feed(home_at(0, 0, 7.9)).lbqid_matched
        assert monitor.feed(home_at(0, 1, 7.5)).lbqid_matched


class TestSetLevelAPI:
    def test_request_set_matches_unordered_input(self):
        points = []
        for week in range(2):
            for day in range(3):
                points.extend(full_day(week, day))
        assert request_set_matches(COMMUTE, reversed(points))

    def test_request_set_too_small(self):
        assert not request_set_matches(COMMUTE, full_day(0, 0))

    def test_first_match_time(self):
        points = []
        for week in range(2):
            for day in range(3):
                points.extend(full_day(week, day))
        t = first_match_time(COMMUTE, points)
        assert t == points[-1].t

    def test_first_match_time_none(self):
        assert first_match_time(COMMUTE, full_day(0, 0)) is None
