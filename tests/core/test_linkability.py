"""Unit tests for linkability (Definitions 4–5)."""

import pytest

from repro.core.linkability import (
    CompositeMaxLink,
    GroundTruthLink,
    PseudonymLink,
    is_link_connected,
    link_function_is_correct,
    pairwise_links,
    theta_components,
)
from repro.core.requests import Request
from repro.geometry.point import STPoint


def request(msgid, user_id, pseudonym, t=0.0):
    return Request.issue(
        msgid=msgid,
        user_id=user_id,
        pseudonym=pseudonym,
        location=STPoint(0, 0, t),
    )


R = [
    request(1, 1, "a"),
    request(2, 1, "a"),
    request(3, 1, "b"),
    request(4, 2, "c"),
    request(5, 2, "c"),
]


class TestPseudonymLink:
    link = PseudonymLink()

    def test_same_pseudonym_links(self):
        assert self.link.link(R[0], R[1]) == 1.0

    def test_different_pseudonym_does_not(self):
        assert self.link.link(R[0], R[2]) == 0.0

    def test_reflexive(self):
        assert self.link.link(R[0], R[0]) == 1.0

    def test_symmetric(self):
        assert self.link.link(R[0], R[3]) == self.link.link(R[3], R[0])


class TestGroundTruthLink:
    link = GroundTruthLink()

    def test_same_user_across_pseudonyms(self):
        assert self.link.link(R[1], R[2]) == 1.0

    def test_different_users(self):
        assert self.link.link(R[2], R[3]) == 0.0

    def test_requires_ts_requests(self):
        with pytest.raises(TypeError):
            self.link.link(R[0].sp_view(), R[1].sp_view())


class TestCompositeMaxLink:
    def test_takes_maximum(self):
        class Half:
            def link(self, a, b):
                return 0.5

        combined = CompositeMaxLink([PseudonymLink(), Half()])
        assert combined.link(R[0], R[2]) == 0.5
        assert combined.link(R[0], R[1]) == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CompositeMaxLink([])


class TestLinkConnected:
    def test_empty_and_singleton_vacuously_connected(self):
        assert is_link_connected([], PseudonymLink(), 0.5)
        assert is_link_connected([R[0]], PseudonymLink(), 0.5)

    def test_same_pseudonym_connected(self):
        assert is_link_connected([R[0], R[1]], PseudonymLink(), 1.0)

    def test_cross_pseudonym_not_connected(self):
        assert not is_link_connected([R[0], R[2]], PseudonymLink(), 0.5)

    def test_chain_connectivity(self):
        """Connectivity is via chains, not direct links (Definition 5)."""

        class ChainLink:
            def link(self, a, b):
                return 1.0 if abs(a.msgid - b.msgid) <= 1 else 0.0

        assert is_link_connected([R[0], R[1], R[2]], ChainLink(), 1.0)

    def test_theta_monotone(self):
        """Raising theta can only disconnect, never connect."""

        class Gradient:
            def link(self, a, b):
                return 0.6

        requests = [R[0], R[2], R[3]]
        assert is_link_connected(requests, Gradient(), 0.5)
        assert not is_link_connected(requests, Gradient(), 0.7)

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            is_link_connected(R, PseudonymLink(), 1.5)


class TestComponents:
    def test_partition_by_pseudonym(self):
        components = theta_components(R, PseudonymLink(), 1.0)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2, 2]

    def test_components_cover_all(self):
        components = theta_components(R, PseudonymLink(), 1.0)
        assert sum(len(c) for c in components) == len(R)

    def test_theta_zero_single_component(self):
        components = theta_components(R, PseudonymLink(), 0.0)
        assert len(components) == 1


class TestCorrectness:
    def test_ground_truth_is_correct(self):
        assert link_function_is_correct(R, GroundTruthLink())

    def test_pseudonym_link_not_correct_after_rotation(self):
        """The same user under two pseudonyms breaks the 'only if'."""
        assert not link_function_is_correct(R, PseudonymLink())

    def test_pseudonym_link_correct_without_rotation(self):
        stable = [R[0], R[1], R[3], R[4]]
        assert link_function_is_correct(stable, PseudonymLink())


class TestPairwise:
    def test_yields_all_pairs(self):
        pairs = list(pairwise_links(R, PseudonymLink()))
        assert len(pairs) == len(R) * (len(R) - 1) // 2
