"""Unit tests for LBQIDs (Definitions 1–2)."""

import pytest

from repro.core.lbqid import LBQID, LBQIDElement, commute_lbqid
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.granularity.timeline import time_at
from repro.granularity.unanchored import UnanchoredInterval

HOME = Rect(0, 0, 100, 100)
OFFICE = Rect(900, 900, 1000, 1000)


class TestElementMatching:
    element = LBQIDElement(HOME, UnanchoredInterval.from_hours(7, 8))

    def test_matches_inside_area_and_window(self):
        assert self.element.matches(STPoint(50, 50, time_at(hour=7.5)))

    def test_rejects_outside_area(self):
        assert not self.element.matches(STPoint(500, 50, time_at(hour=7.5)))

    def test_rejects_outside_window(self):
        assert not self.element.matches(STPoint(50, 50, time_at(hour=9)))

    def test_window_recurs_daily(self):
        assert self.element.matches(
            STPoint(50, 50, time_at(week=2, day=3, hour=7.5))
        )

    def test_area_boundary_inclusive(self):
        assert self.element.matches(STPoint(100, 100, time_at(hour=7)))


class TestLBQIDConstruction:
    def test_requires_elements(self):
        with pytest.raises(ValueError):
            LBQID("empty", [])

    def test_recurrence_from_string(self):
        lbqid = LBQID(
            "q",
            [LBQIDElement(HOME, UnanchoredInterval.from_hours(7, 8))],
            "3.Weekdays * 2.Weeks",
        )
        assert lbqid.recurrence.terms[0].count == 3

    def test_default_recurrence_is_empty(self):
        lbqid = LBQID(
            "q", [LBQIDElement(HOME, UnanchoredInterval.from_hours(7, 8))]
        )
        assert lbqid.recurrence.is_empty

    def test_trailing_one_term_normalized(self):
        lbqid = LBQID(
            "q",
            [LBQIDElement(HOME, UnanchoredInterval.from_hours(7, 8))],
            "3.Weekdays * 1.Weeks",
        )
        assert len(lbqid.recurrence.terms) == 1

    def test_len(self):
        assert len(commute_lbqid(HOME, OFFICE)) == 4

    def test_str_mentions_labels(self):
        text = str(commute_lbqid(HOME, OFFICE))
        assert "home-morning" in text
        assert "3.Weekdays" in text


class TestElementMatchingIndex:
    lbqid = commute_lbqid(HOME, OFFICE)

    def test_first_element(self):
        index = self.lbqid.element_matching(
            STPoint(50, 50, time_at(hour=7.5))
        )
        assert index == 0

    def test_no_element(self):
        assert self.lbqid.element_matching(
            STPoint(500, 500, time_at(hour=12))
        ) is None

    def test_overlapping_windows_first_wins(self):
        """At 5:30pm an office point matches office-leave (E2), the
        earlier of the overlapping windows."""
        index = self.lbqid.element_matching(
            STPoint(950, 950, time_at(hour=17.5))
        )
        assert index == 2


class TestCommuteFactory:
    def test_example_2_shape(self):
        lbqid = commute_lbqid(HOME, OFFICE)
        labels = [e.label for e in lbqid.elements]
        assert labels == [
            "home-morning",
            "office-arrive",
            "office-leave",
            "home-evening",
        ]
        assert lbqid.elements[0].area == HOME
        assert lbqid.elements[1].area == OFFICE

    def test_custom_recurrence(self):
        lbqid = commute_lbqid(HOME, OFFICE, recurrence="2.Weekdays")
        assert str(lbqid.recurrence) == "2.Weekdays"
