"""Unit tests for the Section 6.1 preservation strategy."""

from repro.core.anonymizer import (
    AnonymitySetScope,
    Decision,
    TrustedAnonymizer,
)
from repro.core.generalization import ToleranceConstraint
from repro.core.lbqid import commute_lbqid
from repro.core.policy import (
    PolicyTable,
    PrivacyProfile,
    RiskAction,
)
from repro.core.unlinking import AlwaysUnlink, NeverUnlink
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.granularity.timeline import time_at
from repro.mod.store import TrajectoryStore

HOME = Rect(0, 0, 100, 100)
OFFICE = Rect(900, 900, 1000, 1000)
USER = 1
NEIGHBOURS = (2, 3, 4, 5, 6)

LOOSE = ToleranceConstraint.square(5_000.0, 7_200.0)
TIGHT = ToleranceConstraint.square(10.0, 10.0)


def neighbour_points(week, day):
    """One commute-shaped day of samples for each neighbour."""
    for offset, user_id in enumerate(NEIGHBOURS):
        jitter = 2.0 * offset
        yield user_id, STPoint(
            40 + jitter, 40, time_at(week=week, day=day, hour=7.4)
        )
        yield user_id, STPoint(
            950 + jitter, 950, time_at(week=week, day=day, hour=8.4)
        )
        yield user_id, STPoint(
            950 + jitter, 950, time_at(week=week, day=day, hour=17.1)
        )
        yield user_id, STPoint(
            40 + jitter, 40, time_at(week=week, day=day, hour=18.1)
        )


def commute_requests(week, day):
    """User 1's four anchor requests on one day."""
    return [
        STPoint(50, 50, time_at(week=week, day=day, hour=7.5)),
        STPoint(950, 950, time_at(week=week, day=day, hour=8.5)),
        STPoint(950, 950, time_at(week=week, day=day, hour=17.2)),
        STPoint(50, 50, time_at(week=week, day=day, hour=18.2)),
    ]


def make_anonymizer(
    k=3,
    tolerance=LOOSE,
    unlinker=None,
    scope=AnonymitySetScope.PER_LBQID,
    on_risk=RiskAction.SUPPRESS,
    k_prime_initial=None,
):
    policy = PolicyTable(
        default_profile=PrivacyProfile(
            k=k, k_prime_initial=k_prime_initial, on_risk=on_risk
        ),
        default_tolerance=tolerance,
    )
    ts = TrustedAnonymizer(
        TrajectoryStore(),
        policy=policy,
        unlinker=unlinker or NeverUnlink(),
        scope=scope,
    )
    ts.register_lbqid(USER, commute_lbqid(HOME, OFFICE, name="commute"))
    return ts


def feed_day(ts, week, day, stop_after=None):
    """Interleave neighbour updates and user requests for one day."""
    for user_id, point in neighbour_points(week, day):
        ts.report_location(user_id, point)
    events = []
    for i, point in enumerate(commute_requests(week, day)):
        if stop_after is not None and i >= stop_after:
            break
        events.append(ts.request(USER, point))
    return events


class TestPlainForwarding:
    def test_non_matching_request_forwarded_exact(self):
        ts = make_anonymizer()
        event = ts.request(USER, STPoint(500, 500, time_at(hour=12)))
        assert event.decision is Decision.FORWARDED
        assert event.forwarded
        assert event.request.context.volume == 0.0

    def test_unregistered_user_never_generalized(self):
        ts = make_anonymizer()
        event = ts.request(99, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.FORWARDED

    def test_request_ingested_into_store(self):
        ts = make_anonymizer()
        ts.request(USER, STPoint(500, 500, time_at(hour=12)))
        assert len(ts.store.history(USER)) == 1


class TestGeneralization:
    def test_first_element_generalized(self):
        ts = make_anonymizer()
        for user_id, point in neighbour_points(0, 0):
            ts.report_location(user_id, point)
        event = ts.request(
            USER, STPoint(50, 50, time_at(hour=7.5))
        )
        assert event.decision is Decision.GENERALIZED
        assert event.hk_anonymity
        assert event.lbqid_name == "commute"
        assert event.step == 0

    def test_context_contains_exact_location(self):
        ts = make_anonymizer()
        events = feed_day(ts, 0, 0)
        for event in events:
            assert event.request.context.contains(event.request.location)

    def test_anonymity_set_stable_across_trace(self):
        """PER_LBQID scope: one id set for the whole pattern."""
        ts = make_anonymizer(k=3)
        all_events = feed_day(ts, 0, 0) + feed_day(ts, 0, 1)
        id_sets = {
            event.generalization.anonymity_ids for event in all_events
        }
        assert len(id_sets) == 1

    def test_steps_increment(self):
        ts = make_anonymizer()
        events = feed_day(ts, 0, 0)
        assert [event.step for event in events] == [0, 1, 2, 3]

    def test_per_observation_scope_reselects(self):
        ts = make_anonymizer(scope=AnonymitySetScope.PER_OBSERVATION)
        first = feed_day(ts, 0, 0)
        second = feed_day(ts, 0, 1)
        assert first[0].step == 0
        # A new observation began on day 1: its first request is another
        # initial selection, not a continuation of day 0's set.
        assert second[0].generalization.selected_ids is not None
        assert second[0].decision is Decision.GENERALIZED


class TestFailureHandling:
    def test_unlink_on_failure(self):
        ts = make_anonymizer(tolerance=TIGHT, unlinker=AlwaysUnlink())
        for user_id, point in neighbour_points(0, 0):
            ts.report_location(user_id, point)
        old_pseudonym = ts.pseudonyms.current(USER)
        event = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.UNLINKED
        assert event.forwarded
        assert event.pseudonym_rotated
        # Forwarded under the old pseudonym; future requests use a new one.
        assert event.request.pseudonym == old_pseudonym
        assert ts.pseudonyms.current(USER) != old_pseudonym

    def test_unlink_resets_monitors(self):
        ts = make_anonymizer(tolerance=TIGHT, unlinker=AlwaysUnlink())
        ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        state = ts._states[USER][0]
        assert not state.monitor.partials
        assert state.anonymity_ids is None
        assert state.steps == 0

    def test_suppress_without_unlinking(self):
        ts = make_anonymizer(tolerance=TIGHT, unlinker=NeverUnlink())
        event = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.SUPPRESSED
        assert not event.forwarded
        assert not event.pseudonym_rotated

    def test_forward_at_risk_policy(self):
        ts = make_anonymizer(
            tolerance=TIGHT,
            unlinker=NeverUnlink(),
            on_risk=RiskAction.FORWARD,
        )
        event = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.AT_RISK_FORWARDED
        assert event.forwarded

    def test_suppressed_requests_not_in_sp_log(self):
        ts = make_anonymizer(tolerance=TIGHT, unlinker=NeverUnlink())
        ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert ts.sp_log() == []

    def test_shrunk_context_respects_tolerance(self):
        ts = make_anonymizer(tolerance=TIGHT, unlinker=NeverUnlink())
        for user_id, point in neighbour_points(0, 0):
            ts.report_location(user_id, point)
        event = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert TIGHT.satisfied_by(event.request.context)


class TestTooLateToUnlink:
    def make_matched(self, unlinker):
        """Drive the pattern to completion with an easy tolerance."""
        ts = make_anonymizer(
            k=3, tolerance=LOOSE, unlinker=unlinker
        )
        for week in range(2):
            for day in range(3):
                feed_day(ts, week, day)
        state = ts._states[USER][0]
        assert state.monitor.matched
        return ts

    def test_failure_after_match_is_suppressed_not_unlinked(self):
        ts = self.make_matched(AlwaysUnlink())
        # Shrink the tolerance: the next generalization will fail.
        ts.policy.default_tolerance = TIGHT
        event = ts.request(
            USER, STPoint(50, 50, time_at(week=2, day=0, hour=7.5))
        )
        assert event.decision is Decision.SUPPRESSED
        assert event.pseudonym_rotated  # the future is still protected
        assert not event.forwarded


class TestDecisionCounts:
    def test_counts_cover_all_events(self):
        ts = make_anonymizer()
        feed_day(ts, 0, 0)
        ts.request(USER, STPoint(500, 500, time_at(hour=12)))
        counts = ts.decision_counts()
        assert sum(counts.values()) == len(ts.events)
