"""Unit tests for the commuter mobility model."""

import numpy as np
import pytest

from repro.core.matching import request_set_matches
from repro.granularity.timeline import DAY, day_of_week
from repro.mobility.commuter import Commuter, CommuterSchedule
from repro.mobility.network import RoadNetwork


def make_commuter(skip_probability=0.0, departure_std_hours=0.05):
    net = RoadNetwork(10, 10, block_size=200.0)
    schedule = CommuterSchedule(
        skip_probability=skip_probability,
        departure_std_hours=departure_std_hours,
    )
    return Commuter(1, net, home=(1, 1), work=(8, 8), schedule=schedule)


class TestSchedule:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            CommuterSchedule(skip_probability=1.5)

    def test_rejects_negative_std(self):
        with pytest.raises(ValueError):
            CommuterSchedule(departure_std_hours=-0.1)


class TestAnchors:
    def test_home_area_contains_home(self):
        commuter = make_commuter()
        assert commuter.home_area().contains(commuter.home_point)

    def test_work_area_contains_work(self):
        commuter = make_commuter()
        assert commuter.work_area().contains(commuter.work_point)

    def test_lbqid_is_example_2_shaped(self):
        lbqid = make_commuter().lbqid()
        assert len(lbqid) == 4
        assert str(lbqid.recurrence) == "3.Weekdays * 2.Weeks"


class TestTrajectory:
    def test_chronological(self):
        commuter = make_commuter()
        points = commuter.trajectory(7, np.random.default_rng(0))
        times = [p.t for p in points]
        assert times == sorted(times)

    def test_weekend_stays_home(self):
        commuter = make_commuter()
        points = commuter.trajectory(7, np.random.default_rng(0))
        for p in points:
            if day_of_week(p.t) >= 5:
                assert commuter.home_area().contains(p.point)

    def test_workdays_reach_office(self):
        commuter = make_commuter()
        points = commuter.trajectory(5, np.random.default_rng(0))
        by_day = {}
        for p in points:
            by_day.setdefault(int(p.t // DAY), []).append(p)
        for day, samples in by_day.items():
            if day_of_week(day * DAY) < 5:
                assert any(
                    commuter.work_area().contains(p.point) for p in samples
                )

    def test_skip_days_never_leave_home(self):
        commuter = make_commuter(skip_probability=1.0)
        points = commuter.trajectory(5, np.random.default_rng(0))
        assert all(
            commuter.home_area().contains(p.point) for p in points
        )

    def test_two_weeks_matches_own_lbqid(self):
        commuter = make_commuter()
        points = commuter.trajectory(14, np.random.default_rng(3))
        assert request_set_matches(commuter.lbqid(), points)

    def test_one_week_does_not_match(self):
        commuter = make_commuter()
        points = commuter.trajectory(7, np.random.default_rng(3))
        assert not request_set_matches(commuter.lbqid(), points)

    def test_deterministic_given_seed(self):
        commuter = make_commuter()
        a = commuter.trajectory(3, np.random.default_rng(5))
        b = commuter.trajectory(3, np.random.default_rng(5))
        assert a == b

    def test_start_day_offsets_timeline(self):
        commuter = make_commuter()
        points = commuter.trajectory(
            2, np.random.default_rng(0), start_day=7
        )
        assert all(p.t >= 7 * DAY for p in points)
