"""Unit tests for the grid road network."""

import pytest

from repro.geometry.point import Point
from repro.mobility.network import RoadNetwork


class TestConstruction:
    def test_dimensions(self):
        net = RoadNetwork(4, 3, block_size=100.0)
        assert net.width == 400.0
        assert net.height == 300.0

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            RoadNetwork(0, 3)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            RoadNetwork(2, 2, block_size=-1.0)

    def test_node_count(self):
        net = RoadNetwork(4, 3)
        assert net.graph.number_of_nodes() == 5 * 4


class TestGeometry:
    net = RoadNetwork(10, 10, block_size=200.0)

    def test_node_position(self):
        assert self.net.node_position((3, 4)) == Point(600, 800)

    def test_nearest_node_rounds(self):
        assert self.net.nearest_node(Point(590, 790)) == (3, 4)

    def test_nearest_node_clamps(self):
        assert self.net.nearest_node(Point(-500, 99999)) == (0, 10)


class TestRouting:
    net = RoadNetwork(10, 10, block_size=200.0)

    def test_route_endpoints(self):
        route = self.net.route((0, 0), (3, 2))
        assert route[0] == Point(0, 0)
        assert route[-1] == Point(600, 400)

    def test_route_length_is_manhattan(self):
        route = self.net.route((0, 0), (3, 2))
        assert self.net.route_length(route) == pytest.approx(5 * 200.0)

    def test_route_to_self(self):
        route = self.net.route((2, 2), (2, 2))
        assert route == [Point(400, 400)]


class TestWalkRoute:
    net = RoadNetwork(10, 10, block_size=200.0)

    def test_samples_cover_trip(self):
        route = self.net.route((0, 0), (2, 0))  # 400 m
        samples = self.net.walk_route(
            route, depart_at=1000.0, speed=10.0, sample_period=10.0
        )
        assert samples[0] == (Point(0, 0), 1000.0)
        assert samples[-1][0] == Point(400, 0)
        assert samples[-1][1] == pytest.approx(1040.0)

    def test_positions_progress_monotonically(self):
        route = self.net.route((0, 0), (3, 3))
        samples = self.net.walk_route(route, 0.0, 5.0, 30.0)
        times = [t for _p, t in samples]
        assert times == sorted(times)

    def test_positions_on_streets(self):
        """Every sample lies on a grid line (Manhattan movement)."""
        route = self.net.route((0, 0), (3, 3))
        samples = self.net.walk_route(route, 0.0, 5.0, 30.0)
        for point, _t in samples:
            on_street = (
                point.x % 200.0 < 1e-6
                or abs(point.x % 200.0 - 200.0) < 1e-6
                or point.y % 200.0 < 1e-6
                or abs(point.y % 200.0 - 200.0) < 1e-6
            )
            assert on_street

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            self.net.walk_route([Point(0, 0)], 0.0, 0.0, 10.0)

    def test_empty_route(self):
        assert self.net.walk_route([], 0.0, 5.0, 10.0) == []
