"""Unit tests for random-waypoint and Gauss-Markov mobility."""

import numpy as np
import pytest

from repro.geometry.region import Rect
from repro.mobility.gauss_markov import gauss_markov_trajectory
from repro.mobility.random_waypoint import random_waypoint_trajectory

BOUNDS = Rect(0, 0, 1000, 1000)


class TestRandomWaypoint:
    def run(self, **kwargs):
        return random_waypoint_trajectory(
            BOUNDS, 0.0, 3600.0, np.random.default_rng(1), **kwargs
        )

    def test_stays_in_bounds(self):
        for p in self.run():
            assert BOUNDS.contains(p.point)

    def test_chronological_fixed_period(self):
        points = self.run(sample_period=60.0)
        times = [p.t for p in points]
        assert times == sorted(times)
        deltas = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert deltas == {60.0}

    def test_deterministic(self):
        a = random_waypoint_trajectory(
            BOUNDS, 0, 1800, np.random.default_rng(9)
        )
        b = random_waypoint_trajectory(
            BOUNDS, 0, 1800, np.random.default_rng(9)
        )
        assert a == b

    def test_speed_bounded(self):
        points = self.run(
            speed_range=(5.0, 5.0), pause_range=(0.0, 0.0),
            sample_period=10.0,
        )
        for a, b in zip(points, points[1:]):
            moved = a.spatial_distance_to(b)
            assert moved <= 5.0 * (b.t - a.t) + 1e-6

    def test_rejects_bad_speed_range(self):
        with pytest.raises(ValueError):
            self.run(speed_range=(10.0, 1.0))

    def test_rejects_bad_pause_range(self):
        with pytest.raises(ValueError):
            self.run(pause_range=(-1.0, 0.0))

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            self.run(sample_period=0.0)


class TestGaussMarkov:
    def run(self, **kwargs):
        return gauss_markov_trajectory(
            BOUNDS, 0.0, 3600.0, np.random.default_rng(2), **kwargs
        )

    def test_stays_in_bounds(self):
        for p in self.run():
            assert BOUNDS.contains(p.point)

    def test_sample_count(self):
        points = self.run(sample_period=60.0)
        assert len(points) == 61

    def test_deterministic(self):
        a = gauss_markov_trajectory(BOUNDS, 0, 600, np.random.default_rng(4))
        b = gauss_markov_trajectory(BOUNDS, 0, 600, np.random.default_rng(4))
        assert a == b

    def test_alpha_one_is_straight_until_reflection(self):
        points = self.run(alpha=1.0, sample_period=30.0)
        # Constant velocity: consecutive displacements are equal until a
        # boundary reflection; check the first few steps.
        d1 = (points[1].x - points[0].x, points[1].y - points[0].y)
        d2 = (points[2].x - points[1].x, points[2].y - points[1].y)
        inside = all(
            100 < p.x < 900 and 100 < p.y < 900 for p in points[:3]
        )
        if inside:
            assert d1 == pytest.approx(d2)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            self.run(alpha=1.5)

    def test_rejects_bad_mean_speed(self):
        with pytest.raises(ValueError):
            self.run(mean_speed=0.0)

    def test_momentum_smoother_than_rwp(self):
        """Gauss-Markov heading changes are smaller on average than
        random-waypoint's (the tracker-relevant contrast)."""
        import math

        def mean_turn(points):
            headings = []
            for a, b in zip(points, points[1:]):
                if a.spatial_distance_to(b) > 1e-9:
                    headings.append(
                        math.atan2(b.y - a.y, b.x - a.x)
                    )
            turns = [
                abs(
                    (h2 - h1 + math.pi) % (2 * math.pi) - math.pi
                )
                for h1, h2 in zip(headings, headings[1:])
            ]
            return sum(turns) / len(turns)

        gm = gauss_markov_trajectory(
            BOUNDS, 0, 7200, np.random.default_rng(0),
            alpha=0.9, sample_period=60.0,
        )
        rwp = random_waypoint_trajectory(
            BOUNDS, 0, 7200, np.random.default_rng(0),
            sample_period=60.0, pause_range=(0.0, 0.0),
        )
        assert mean_turn(gm) < mean_turn(rwp)
