"""Unit tests for synthetic city generation."""

import pytest

from repro.mobility.population import CityConfig, SyntheticCity


class TestConfig:
    def test_rejects_negative_population(self):
        with pytest.raises(ValueError):
            CityConfig(n_commuters=-1)

    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            CityConfig(days=0)

    def test_rejects_zero_districts(self):
        with pytest.raises(ValueError):
            CityConfig(office_districts=0)


class TestGeneration:
    def test_population_ids(self, city):
        config = city.config
        expected = config.n_commuters + config.n_wanderers
        assert len(city.all_user_ids) == expected
        assert len(city.store) == expected

    def test_commuter_ids_are_prefix(self, city):
        ids = [c.user_id for c in city.commuters]
        assert ids == list(range(city.config.n_commuters))

    def test_all_points_in_bounds(self, city):
        bounds = city.bounds.expanded(1.0)
        for user_id in city.all_user_ids:
            for p in city.store.history(user_id):
                assert bounds.contains(p.point)

    def test_home_locations_oracle(self, city):
        homes = city.home_locations()
        assert len(homes) == city.config.n_commuters
        for commuter in city.commuters:
            assert homes[commuter.user_id] == commuter.home_point

    def test_overrides(self):
        city = SyntheticCity.generate(
            n_commuters=3, n_wanderers=1, days=2, seed=5,
            nx_blocks=4, ny_blocks=4,
        )
        assert city.config.n_commuters == 3
        assert len(city.store) == 4

    def test_deterministic_in_seed(self):
        a = SyntheticCity.generate(
            n_commuters=3, n_wanderers=0, days=2, seed=5,
            nx_blocks=4, ny_blocks=4,
        )
        b = SyntheticCity.generate(
            n_commuters=3, n_wanderers=0, days=2, seed=5,
            nx_blocks=4, ny_blocks=4,
        )
        assert a.store.history(0).points == b.store.history(0).points

    def test_different_seeds_differ(self):
        a = SyntheticCity.generate(
            n_commuters=3, n_wanderers=0, days=2, seed=5,
            nx_blocks=4, ny_blocks=4,
        )
        b = SyntheticCity.generate(
            n_commuters=3, n_wanderers=0, days=2, seed=6,
            nx_blocks=4, ny_blocks=4,
        )
        assert a.store.history(0).points != b.store.history(0).points

    def test_home_distinct_from_work(self, city):
        for commuter in city.commuters:
            assert commuter.home != commuter.work

    def test_offices_clustered(self, city):
        works = {c.work for c in city.commuters}
        assert len(works) <= city.config.office_districts
