"""Shared fixtures.

City generation is the expensive part of the suite, so the synthetic
cities are session-scoped; tests must treat them as read-only (anything
mutating a store builds its own).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.workloads import small_city
from repro.geometry.point import STPoint
from repro.mod.store import TrajectoryStore


@pytest.fixture(scope="session")
def city():
    """A read-only test city: 30 commuters, 10 wanderers, 14 days."""
    return small_city(seed=11)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def uniform_store(rng):
    """A small store: 20 users x 50 samples uniform over 1 km, 1 day."""
    store = TrajectoryStore()
    for user_id in range(20):
        times = np.sort(rng.uniform(0.0, 86_400.0, size=50))
        xs = rng.uniform(0.0, 1000.0, size=50)
        ys = rng.uniform(0.0, 1000.0, size=50)
        store.add_points(
            user_id,
            [STPoint(float(x), float(y), float(t)) for x, y, t in
             zip(xs, ys, times)],
        )
    return store
