"""Unit tests for anchor-place detection."""

import numpy as np
import pytest

from repro.core.phl import PersonalHistory
from repro.geometry.point import Point, STPoint
from repro.granularity.timeline import time_at
from repro.mining.anchors import (
    classify_home_work,
    find_anchors,
    span_days,
)


def dwell(x, y, day, hours):
    """Samples at (x, y) at the given hours-of-day."""
    return [STPoint(x, y, time_at(day=day % 7, hour=h) + (day // 7) *
                    7 * 86400.0) for h in hours]


def commuter_history(days=10):
    """Home (0,0) mornings/evenings, work (1000,1000) daytime."""
    points = []
    for day in range(days):
        if day % 7 >= 5:
            points += dwell(0, 0, day, [9.0, 12.0, 15.0, 20.0])
            continue
        points += dwell(0, 0, day, [6.0, 7.0, 7.5])
        points += dwell(1000, 1000, day, [8.5, 10.0, 12.0, 14.0, 16.5])
        points += dwell(0, 0, day, [18.0, 20.0, 22.0])
    return PersonalHistory(1, points)


class TestFindAnchors:
    def test_finds_both_anchors(self):
        anchors = find_anchors(commuter_history())
        assert len(anchors) == 2

    def test_most_visited_first(self):
        anchors = find_anchors(commuter_history())
        assert anchors[0].samples >= anchors[1].samples

    def test_areas_contain_centers(self):
        for anchor in find_anchors(commuter_history()):
            assert anchor.area.contains(anchor.center)

    def test_windows_reflect_presence(self):
        anchors = find_anchors(commuter_history())
        work = next(
            a for a in anchors if a.area.contains(Point(1000, 1000))
        )
        start, end = work.window_hours
        assert 8.0 <= start <= 10.5
        assert 13.5 <= end <= 17.0

    def test_min_days_filters_one_offs(self):
        history = commuter_history()
        history.extend(dwell(5000, 5000, 2, [13.0] * 7))
        anchors = find_anchors(history, min_days=3)
        assert not any(
            a.area.contains(Point(5000, 5000)) for a in anchors
        )

    def test_empty_history(self):
        assert find_anchors(PersonalHistory(1)) == []

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            find_anchors(commuter_history(), cell_size=0.0)

    def test_noise_tolerated_by_margin(self):
        rng = np.random.default_rng(0)
        points = []
        for day in range(6):
            for h in (6.0, 7.0, 20.0, 22.0):
                points.append(
                    STPoint(
                        float(rng.normal(0, 20)),
                        float(rng.normal(0, 20)),
                        time_at(day=day % 7, hour=h),
                    )
                )
        anchors = find_anchors(PersonalHistory(1, points), cell_size=150.0)
        assert anchors
        assert anchors[0].area.expanded(50).contains(Point(0, 0))


class TestClassifyHomeWork:
    def test_classification(self):
        anchors = find_anchors(commuter_history())
        home, work = classify_home_work(anchors)
        assert home is not None and work is not None
        assert home.area.contains(Point(0, 0))
        assert work.area.contains(Point(1000, 1000))

    def test_no_anchors(self):
        assert classify_home_work([]) == (None, None)


class TestSpanDays:
    def test_span(self):
        assert span_days(commuter_history(days=10)) == 10

    def test_empty(self):
        assert span_days(PersonalHistory(1)) == 0
