"""Unit tests for LBQID mining and distinctiveness scoring."""

import numpy as np
import pytest

from repro.core.matching import request_set_matches
from repro.core.phl import PersonalHistory
from repro.mining.patterns import mine_commute_lbqid
from repro.mining.scoring import distinctiveness, score_candidates
from repro.mobility.commuter import Commuter, CommuterSchedule
from repro.mobility.network import RoadNetwork
from repro.mod.store import TrajectoryStore


@pytest.fixture(scope="module")
def network():
    return RoadNetwork(10, 10, block_size=200.0)


def make_history(network, user_id, home, work, seed, days=14,
                 skip=0.05):
    commuter = Commuter(
        user_id,
        network,
        home,
        work,
        schedule=CommuterSchedule(
            skip_probability=skip, departure_std_hours=0.15
        ),
    )
    return PersonalHistory(
        user_id,
        commuter.trajectory(days, np.random.default_rng(seed)),
    )


class TestMineCommuteLBQID:
    def test_mined_pattern_matches_owner(self, network):
        history = make_history(network, 1, (1, 1), (8, 8), seed=3)
        mined = mine_commute_lbqid(history)
        assert mined is not None
        assert request_set_matches(mined.lbqid, history.points)

    def test_anchors_identified(self, network):
        history = make_history(network, 1, (1, 1), (8, 8), seed=3)
        mined = mine_commute_lbqid(history)
        assert mined.home.area.contains(
            network.node_position((1, 1))
        )
        assert mined.work.area.contains(
            network.node_position((8, 8))
        )

    def test_recurrence_is_weekday_weekly(self, network):
        history = make_history(network, 1, (1, 1), (8, 8), seed=3)
        mined = mine_commute_lbqid(history)
        names = [t.granularity.name for t in mined.lbqid.recurrence.terms]
        assert names[0] == "Weekdays"

    def test_supported_flag(self, network):
        history = make_history(network, 1, (1, 1), (8, 8), seed=3)
        mined = mine_commute_lbqid(history)
        assert mined.supported

    def test_no_pattern_for_homebody(self, network):
        """A user who never leaves home has no commute LBQID."""
        home_point = network.node_position((2, 2))
        points = [
            # stationary pings, every day
            *(
                [home_point] * 0
            ),
        ]
        from repro.geometry.point import STPoint
        from repro.granularity.timeline import time_at

        points = [
            STPoint(home_point.x, home_point.y,
                    time_at(day=d % 7, hour=h) + (d // 7) * 7 * 86400.0)
            for d in range(10)
            for h in (7.0, 12.0, 18.0, 22.0)
        ]
        mined = mine_commute_lbqid(PersonalHistory(1, points))
        assert mined is None

    def test_empty_history(self):
        assert mine_commute_lbqid(PersonalHistory(1)) is None

    def test_custom_name(self, network):
        history = make_history(network, 1, (1, 1), (8, 8), seed=3)
        mined = mine_commute_lbqid(history, name="alice")
        assert mined.lbqid.name == "alice"


class TestDistinctiveness:
    def build_store(self, network):
        store = TrajectoryStore()
        layouts = [((1, 1), (8, 8)), ((9, 2), (3, 7)), ((5, 9), (0, 4))]
        for user_id, (home, work) in enumerate(layouts):
            history = make_history(
                network, user_id, home, work, seed=10 + user_id
            )
            store.add_points(user_id, history.points)
        return store

    def test_unique_pattern_identifies(self, network):
        store = self.build_store(network)
        mined = mine_commute_lbqid(store.history(0))
        score = distinctiveness(mined.lbqid, store)
        assert score.matching_users == 1
        assert score.is_quasi_identifier

    def test_shared_pattern_scores_high(self, network):
        """Two users on an identical schedule share the pattern."""
        store = TrajectoryStore()
        for user_id in (0, 1):
            history = make_history(
                network, user_id, (1, 1), (8, 8), seed=20, skip=0.0
            )
            store.add_points(user_id, history.points)
        mined = mine_commute_lbqid(store.history(0))
        score = distinctiveness(mined.lbqid, store)
        assert score.matching_users == 2
        assert not score.is_quasi_identifier

    def test_score_candidates_filters_common(self, network):
        store = TrajectoryStore()
        for user_id in range(4):
            history = make_history(
                network, user_id, (1, 1), (8, 8), seed=20, skip=0.0
            )
            store.add_points(user_id, history.points)
        mined = mine_commute_lbqid(store.history(0))
        kept = score_candidates(
            [mined], store, max_matching_fraction=0.25
        )
        assert kept == []

    def test_score_candidates_keeps_distinctive(self, network):
        store = self.build_store(network)
        mined = mine_commute_lbqid(store.history(0))
        kept = score_candidates([mined], store)
        assert len(kept) == 1
        assert kept[0][1].matching_users == 1
