"""Unit tests for the Gedik-Liu CliqueCloak engine."""

import pytest

from repro.baselines.clique_cloak import CliqueCloak, CliqueRequest
from repro.geometry.point import STPoint


def request(msgid, user_id, x, t, k=3, spatial=1000.0, temporal=600.0):
    return CliqueRequest(
        msgid=msgid,
        user_id=user_id,
        location=STPoint(x, 0.0, t),
        k=k,
        spatial_tolerance=spatial,
        temporal_tolerance=temporal,
    )


class TestRequestValidation:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            request(1, 1, 0, 0, k=0)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            request(1, 1, 0, 0, spatial=-1.0)

    def test_constraint_box_contains_location(self):
        r = request(1, 1, 100, 50)
        assert r.constraint_box().contains(r.location)


class TestCliqueFormation:
    def test_clique_of_three_releases(self):
        engine = CliqueCloak()
        assert engine.submit(request(1, 1, 0, 0)) is None
        assert engine.submit(request(2, 2, 50, 10)) is None
        batch = engine.submit(request(3, 3, 100, 20))
        assert batch is not None
        assert len(batch.members) == 3

    def test_released_context_contains_members(self):
        engine = CliqueCloak()
        engine.submit(request(1, 1, 0, 0))
        engine.submit(request(2, 2, 50, 10))
        batch = engine.submit(request(3, 3, 100, 20))
        for member in batch.members:
            assert batch.context.contains(member.location)

    def test_far_requests_do_not_form(self):
        engine = CliqueCloak()
        engine.submit(request(1, 1, 0, 0))
        engine.submit(request(2, 2, 50_000, 10))
        assert engine.submit(request(3, 3, 100_000, 20)) is None

    def test_max_k_in_clique_governs(self):
        """A member demanding k=4 cannot be served in a clique of 3; the
        k=3 members are served without it and it keeps waiting."""
        engine = CliqueCloak()
        engine.submit(request(1, 1, 0, 0, k=4))
        engine.submit(request(2, 2, 50, 10))
        assert engine.submit(request(3, 3, 100, 20)) is None
        batch = engine.submit(request(4, 4, 150, 30))
        assert batch is not None
        assert all(member.k <= len(batch.members) for member in
                   batch.members)
        assert 1 in {p.msgid for p in engine.pending}

    def test_served_requests_leave_buffer(self):
        engine = CliqueCloak()
        engine.submit(request(1, 1, 0, 0))
        engine.submit(request(2, 2, 50, 10))
        engine.submit(request(3, 3, 100, 20))
        assert engine.pending == []


class TestExpiry:
    def test_deadline_drop(self):
        engine = CliqueCloak()
        engine.submit(request(1, 1, 0, 0, temporal=100.0))
        engine.submit(request(2, 2, 50, 500))  # past msgid 1's deadline
        assert engine.stats.dropped == 1

    def test_flush_drops_pending(self):
        engine = CliqueCloak()
        engine.submit(request(1, 1, 0, 0))
        engine.flush()
        assert engine.stats.dropped == 1
        assert engine.pending == []


class TestStats:
    def test_drop_rate_and_delay(self):
        engine = CliqueCloak()
        engine.submit(request(1, 1, 0, 0))
        engine.submit(request(2, 2, 50, 10))
        engine.submit(request(3, 3, 100, 20))
        engine.submit(request(4, 4, 90_000, 30))
        engine.flush()
        stats = engine.stats
        assert stats.served == 3
        assert stats.dropped == 1
        assert stats.drop_rate == pytest.approx(0.25)
        # Delays: released at t=20; members waited 20, 10, 0.
        assert stats.mean_delay == pytest.approx(10.0)

    def test_empty_engine_stats(self):
        stats = CliqueCloak().stats
        assert stats.drop_rate == 0.0
        assert stats.mean_delay == 0.0
