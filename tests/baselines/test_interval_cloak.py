"""Unit tests for Gruteser-Grunwald interval cloaking."""

import pytest

from repro.baselines.interval_cloak import IntervalCloak
from repro.baselines.no_protection import NoProtection
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.mod.store import TrajectoryStore

AREA = Rect(0, 0, 1024, 1024)


def store_with_cluster(n_users, x=100.0, y=100.0, t=1000.0):
    store = TrajectoryStore()
    for user_id in range(n_users):
        store.add_point(user_id, STPoint(x + user_id, y, t))
    return store


class TestNoProtection:
    def test_exact_context(self):
        box = NoProtection().cloak(1, STPoint(5, 6, 7))
        assert box.volume == 0.0
        assert box.contains(STPoint(5, 6, 7))


class TestIntervalCloakConstruction:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            IntervalCloak(TrajectoryStore(), AREA, k=0)

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            IntervalCloak(
                TrajectoryStore(), AREA, window=600.0, max_window=300.0
            )


class TestSpatialCloaking:
    def test_cloak_contains_request(self):
        store = store_with_cluster(10)
        cloak = IntervalCloak(store, AREA, k=5)
        box = cloak.cloak(0, STPoint(100, 100, 1000))
        assert box is not None
        assert box.rect.contains(STPoint(100, 100, 1000).point)

    def test_cloak_holds_k_users(self):
        store = store_with_cluster(10)
        cloak = IntervalCloak(store, AREA, k=5)
        box = cloak.cloak(0, STPoint(100, 100, 1000))
        assert len(store.users_in_box(box)) >= 5

    def test_dense_cluster_gives_small_box(self):
        store = store_with_cluster(20)
        cloak = IntervalCloak(store, AREA, k=5, max_depth=12)
        box = cloak.cloak(0, STPoint(100, 100, 1000))
        assert box.rect.width <= AREA.width / 8

    def test_sparse_population_gives_big_box(self):
        store = TrajectoryStore()
        # Five users spread to the four corners and the center.
        spots = [(10, 10), (1000, 10), (10, 1000), (1000, 1000), (512, 512)]
        for user_id, (x, y) in enumerate(spots):
            store.add_point(user_id, STPoint(x, y, 1000))
        cloak = IntervalCloak(store, AREA, k=5)
        box = cloak.cloak(0, STPoint(10, 10, 1000))
        assert box.rect == AREA

    def test_anonymity_decreasing_in_k(self):
        store = store_with_cluster(30)
        widths = []
        for k in (2, 5, 10, 20):
            cloak = IntervalCloak(store, AREA, k=k)
            box = cloak.cloak(0, STPoint(100, 100, 1000))
            widths.append(box.rect.width)
        assert widths == sorted(widths)


class TestTemporalCloaking:
    def test_window_widens_when_needed(self):
        store = TrajectoryStore()
        for user_id in range(5):
            # Users present only 40 minutes before the request.
            store.add_point(user_id, STPoint(100, 100, 1000.0))
        cloak = IntervalCloak(
            store, AREA, k=5, window=300.0, max_window=7200.0
        )
        box = cloak.cloak(0, STPoint(100, 100, 3400.0))
        assert box is not None
        assert box.interval.duration > 300.0

    def test_gives_up_at_max_window(self):
        store = store_with_cluster(2)
        cloak = IntervalCloak(
            store, AREA, k=5, window=300.0, max_window=600.0
        )
        assert cloak.cloak(0, STPoint(100, 100, 1000.0)) is None
