"""The staged engine: builder operations, custom stages, batch replay.

Covers the PipelineBuilder contract (stages addressed by name, chained
mutators, bind-once), stage swapping as the supported extension point
(ablating unlinking, inserting a policy stage), the per-stage telemetry
(``engine.stage_ms`` / ``engine.stage_decisions``), and the equivalence
of :meth:`Engine.process_batch` with one-at-a-time processing.
"""

import pytest

from repro.core.anonymizer import Decision, TrustedAnonymizer
from repro.core.generalization import ToleranceConstraint
from repro.core.lbqid import LBQID, LBQIDElement
from repro.core.policy import PolicyTable, PrivacyProfile
from repro.core.unlinking import AlwaysUnlink
from repro.engine.pipeline import BatchItem, Engine, PipelineBuilder
from repro.engine.stages import (
    Audit,
    Generalize,
    MonitorMatch,
    QuietGate,
    RiskPolicy,
    Stage,
    Unlink,
)
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.granularity.timeline import time_at
from repro.granularity.unanchored import UnanchoredInterval
from repro.mod.store import TrajectoryStore
from repro.obs.config import TelemetryConfig

HOME = Rect(0, 0, 100, 100)
USER = 1
LOOSE = ToleranceConstraint.square(5_000.0, 7_200.0)
TIGHT = ToleranceConstraint.square(1.0, 1.0)

DEFAULT_ORDER = [
    "quiet_gate",
    "monitor_match",
    "generalize",
    "unlink",
    "risk_policy",
    "audit",
]


def neighbour_updates(days=3):
    """Background presence near HOME from three other users."""
    return [
        (user, STPoint(40.0 + jitter, 40.0, time_at(day=day, hour=7.4)))
        for day in range(days)
        for user, jitter in ((2, 0.0), (3, 5.0), (4, 10.0))
    ]


def seeded_store():
    store = TrajectoryStore()
    for user, point in neighbour_updates():
        store.add_point(user, point)
    return store


def home_lbqid():
    return LBQID(
        "home-anytime",
        [LBQIDElement(HOME, UnanchoredInterval(0.0, 86_399.0))],
    )


def commute_2step():
    """A two-element pattern: incomplete after its first match, so a
    successful unlinking is not "too late" and reports UNLINKED."""
    office = Rect(900, 900, 1000, 1000)
    all_day = UnanchoredInterval(0.0, 86_399.0)
    return LBQID(
        "home-office",
        [LBQIDElement(HOME, all_day), LBQIDElement(office, all_day)],
    )


def make_engine(tolerance=LOOSE, store=None, **kwargs):
    policy = PolicyTable(
        default_profile=PrivacyProfile(k=3),
        default_tolerance=tolerance,
    )
    kwargs.setdefault("unlinker", AlwaysUnlink())
    return Engine(
        store if store is not None else seeded_store(),
        policy=policy,
        **kwargs,
    )


class Blocklist(Stage):
    """A toy policy stage: suppress one service outright."""

    name = "blocklist"

    def __init__(self, service: str) -> None:
        super().__init__()
        self.service = service

    def handle(self, ctx):
        if ctx.service == self.service:
            ctx.forwarded = False
            return Decision.SUPPRESSED
        return None


class TestPipelineBuilder:
    def test_default_order(self):
        assert PipelineBuilder.default().stage_names == DEFAULT_ORDER

    def test_mutators_chain_and_reorder(self):
        builder = (
            PipelineBuilder.default()
            .remove("unlink")
            .insert_before("generalize", Blocklist("spam"))
            .insert_after("blocklist", QuietGate())
            .replace("risk_policy", Blocklist("other"))
            .add(Blocklist("tail"))
        )
        assert builder.stage_names == [
            "quiet_gate",
            "monitor_match",
            "blocklist",
            "quiet_gate",
            "generalize",
            "blocklist",
            "audit",
            "blocklist",
        ]

    def test_unknown_stage_name_raises_keyerror(self):
        builder = PipelineBuilder.default()
        with pytest.raises(KeyError, match="no_such_stage"):
            builder.remove("no_such_stage")
        with pytest.raises(KeyError):
            builder.insert_before("no_such_stage", QuietGate())
        with pytest.raises(KeyError):
            builder.replace("no_such_stage", QuietGate())

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            make_engine(pipeline=PipelineBuilder())

    def test_stages_cannot_be_rebound_across_engines(self):
        builder = PipelineBuilder.default()
        make_engine(pipeline=builder)
        with pytest.raises(ValueError, match="already bound"):
            make_engine(pipeline=builder)

    def test_rebuilding_for_the_same_engine_is_fine(self):
        engine = make_engine()
        assert PipelineBuilder(engine.stages).build(engine)

    def test_plain_stage_sequence_accepted(self):
        engine = make_engine(
            pipeline=[
                QuietGate(),
                MonitorMatch(),
                Generalize(),
                Unlink(),
                RiskPolicy(),
                Audit(),
            ]
        )
        assert [s.name for s in engine.stages] == DEFAULT_ORDER


class TestCustomPipelines:
    def test_blocklist_stage_suppresses_before_matching(self):
        engine = make_engine(
            pipeline=PipelineBuilder.default().insert_before(
                "monitor_match", Blocklist("blocked")
            )
        )
        engine.register_lbqid(USER, home_lbqid())
        event = engine.process(
            USER, STPoint(50, 50, time_at(hour=7.5)), "blocked"
        )
        assert event.decision is Decision.SUPPRESSED
        assert not event.forwarded
        # The monitor never saw the request.
        assert not engine.session(USER).lbqids[0].monitor.partials
        # The audit tail still ran: tallied, retained, not forwarded.
        assert engine.decision_counts()[Decision.SUPPRESSED] == 1
        assert engine.events[-1] is event
        assert engine.sp_log() == []

    def test_removing_unlink_ablates_section_6_3(self):
        engine = make_engine(
            tolerance=TIGHT,
            pipeline=PipelineBuilder.default().remove("unlink"),
        )
        engine.register_lbqid(USER, commute_2step())
        event = engine.process(USER, STPoint(50, 50, time_at(hour=7.5)))
        # Generalization fails under the 1m tolerance; without the
        # unlink stage the always-willing unlinker is never consulted.
        assert event.decision is Decision.SUPPRESSED
        assert not event.pseudonym_rotated
        assert engine.sessions.pseudonyms_of(USER) == [
            engine.sessions.pseudonym(USER)
        ]

    def test_with_unlink_the_same_request_rotates(self):
        engine = make_engine(tolerance=TIGHT)
        engine.register_lbqid(USER, commute_2step())
        event = engine.process(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.UNLINKED
        assert event.pseudonym_rotated

    def test_facade_passes_the_builder_through(self):
        ts = TrustedAnonymizer(
            seeded_store(),
            policy=PolicyTable(
                default_profile=PrivacyProfile(k=3),
                default_tolerance=TIGHT,
            ),
            unlinker=AlwaysUnlink(),
            pipeline=PipelineBuilder.default().remove("unlink"),
        )
        ts.register_lbqid(USER, home_lbqid())
        event = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.SUPPRESSED

    def test_pipeline_without_audit_stage_is_an_error(self):
        engine = make_engine(
            pipeline=PipelineBuilder.default().remove("audit")
        )
        with pytest.raises(AssertionError, match="Audit"):
            engine.process(USER, STPoint(50, 50, time_at(hour=7.5)))


class TestStageTelemetry:
    def test_stage_ms_and_stage_decisions_recorded(self):
        engine = make_engine(telemetry=TelemetryConfig(enabled=True))
        engine.register_lbqid(USER, home_lbqid())
        engine.process(USER, STPoint(50, 50, time_at(hour=7.5)))
        engine.process(9, STPoint(2_000, 2_000, time_at(hour=9.0)))
        snapshot = engine.telemetry.snapshot()
        for stage in ("quiet_gate", "monitor_match", "audit"):
            summary = snapshot.histogram_summary(
                "engine.stage_ms", stage=stage
            )
            assert summary is not None and summary.count == 2, stage
        # The matched request resolved in generalize, the unmatched one
        # in monitor_match — one decision counter tick each.
        assert snapshot.counter_value(
            "engine.stage_decisions",
            stage="generalize",
            decision="generalized",
        ) == 1
        assert snapshot.counter_value(
            "engine.stage_decisions",
            stage="monitor_match",
            decision="forwarded",
        ) == 1
        # Skipped stages record nothing: unlink never ran.
        assert snapshot.histogram_summary(
            "engine.stage_ms", stage="unlink"
        ) is None

    def test_disabled_telemetry_walks_without_instrumentation(self):
        engine = make_engine()
        engine.register_lbqid(USER, home_lbqid())
        event = engine.process(USER, STPoint(50, 50, time_at(hour=7.5)))
        assert event.decision is Decision.GENERALIZED
        assert not engine.telemetry.enabled


class TestBatchProcessing:
    def timeline(self):
        """Neighbour updates then one request, all inside the batch."""
        items = [
            BatchItem(user_id=user, location=point)
            for user, point in neighbour_updates()
        ]
        items.append(
            BatchItem(
                user_id=USER,
                location=STPoint(50, 50, time_at(day=2, hour=7.5)),
                service="poi",
            )
        )
        return items

    def test_batch_item_flags_requests(self):
        update = BatchItem(user_id=1, location=STPoint(0, 0, 0))
        request = BatchItem(
            user_id=1, location=STPoint(0, 0, 0), service="poi"
        )
        assert not update.is_request
        assert request.is_request

    def test_requests_see_earlier_updates_of_the_same_batch(self):
        engine = make_engine(store=TrajectoryStore())
        engine.register_lbqid(USER, home_lbqid())
        events = engine.process_batch(self.timeline())
        # Only the request yields an event, and its anonymity set could
        # only have come from updates flushed earlier in this batch.
        assert len(events) == 1
        assert events[0].decision is Decision.GENERALIZED

    def test_batch_matches_one_at_a_time_processing(self):
        items = self.timeline()

        batch = make_engine(store=TrajectoryStore())
        batch.register_lbqid(USER, home_lbqid())
        batch_events = batch.process_batch(items)

        sequential = make_engine(store=TrajectoryStore())
        sequential.register_lbqid(USER, home_lbqid())
        sequential_events = []
        for item in items:
            if item.is_request:
                sequential_events.append(
                    sequential.process(
                        item.user_id, item.location, item.service
                    )
                )
            else:
                sequential.report_location(item.user_id, item.location)

        assert len(batch_events) == len(sequential_events)
        for got, want in zip(batch_events, sequential_events):
            assert got.decision is want.decision
            assert got.request.msgid == want.request.msgid
            assert got.request.pseudonym == want.request.pseudonym
            assert got.request.context == want.request.context
        assert batch.store.total_points == sequential.store.total_points

    def test_batch_bumps_store_version_once_per_user_flush(self):
        items = self.timeline()
        engine = make_engine(store=TrajectoryStore())
        engine.register_lbqid(USER, home_lbqid())
        engine.process_batch(items)
        # One flush of three users' buffered updates (3 bumps) plus the
        # request's own ingest (1 bump) — not one bump per point.
        assert engine.store.version == 4
        n_updates = sum(1 for item in items if not item.is_request)
        assert engine.store.total_points == n_updates + 1

    def test_trailing_updates_are_flushed(self):
        engine = make_engine(store=TrajectoryStore())
        events = engine.process_batch(
            BatchItem(user_id=user, location=point)
            for user, point in neighbour_updates(days=1)
        )
        assert events == []
        assert engine.store.total_points == 3
        assert engine.store.version == 3  # one bump per user's run

    def test_batch_flush_telemetry(self):
        engine = make_engine(
            store=TrajectoryStore(),
            telemetry=TelemetryConfig(enabled=True),
        )
        engine.register_lbqid(USER, home_lbqid())
        engine.process_batch(self.timeline())
        snapshot = engine.telemetry.snapshot()
        assert snapshot.counter_value("engine.batch_flushes") == 1
        n_updates = len(neighbour_updates())
        # Buffered updates counted in bulk + the request's own ingest.
        assert (
            snapshot.counter_value("ts.location_updates")
            == n_updates + 1
        )
