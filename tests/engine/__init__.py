"""Tests for the staged request engine (``repro.engine``)."""
