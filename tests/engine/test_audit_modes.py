"""Bounded audit-trail retention (``audit="full" | "counts"``).

``"counts"`` mode is the ROADMAP's memory valve for million-user runs:
per-request ground-truth events are dropped while the O(decisions)
tally and the SP-visible log — all that the attacker-side evaluation
sees — stay exact.
"""

import pytest

from repro.core.anonymizer import Decision, TrustedAnonymizer
from repro.core.generalization import ToleranceConstraint
from repro.core.policy import PolicyTable, PrivacyProfile
from repro.core.requests import Request
from repro.core.unlinking import AlwaysUnlink
from repro.engine.audit import AUDIT_MODES, AuditTrail
from repro.engine.context import AnonymizerEvent
from repro.geometry.point import STPoint
from repro.granularity.timeline import time_at
from repro.mod.store import TrajectoryStore
from tests.engine.test_pipeline import USER, home_lbqid, seeded_store
from tests.engine.workload import build_city, build_simulation
from repro.core.anonymizer import AnonymitySetScope


def make_ts(audit="full"):
    ts = TrustedAnonymizer(
        seeded_store(),
        policy=PolicyTable(
            default_profile=PrivacyProfile(k=3),
            default_tolerance=ToleranceConstraint.square(5_000.0, 7_200.0),
        ),
        unlinker=AlwaysUnlink(),
        audit=audit,
    )
    ts.register_lbqid(USER, home_lbqid())
    return ts


def drive(ts):
    """One generalized and one plainly forwarded request."""
    first = ts.request(USER, STPoint(50, 50, time_at(hour=7.5)))
    second = ts.request(9, STPoint(2_000, 2_000, time_at(hour=9.0)))
    return first, second


def stub_event(forwarded=True, decision=Decision.FORWARDED):
    request = Request.issue(
        msgid=1,
        user_id=USER,
        pseudonym="p1",
        location=STPoint(50, 50, 100.0),
        service="poi",
    )
    return AnonymizerEvent(
        request=request, decision=decision, forwarded=forwarded
    )


class TestAuditTrail:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="counts"):
            AuditTrail(mode="verbose")
        assert AUDIT_MODES == ("full", "counts")

    def test_full_mode_retains_everything(self):
        trail = AuditTrail()
        assert trail.retains_events
        event = stub_event()
        trail.record(event)
        assert trail.events == [event]
        assert trail.decision_counts()[Decision.FORWARDED] == 1
        assert len(trail.sp_log()) == 1
        assert trail.forwarded_requests() == [event.request]

    def test_counts_mode_drops_events_keeps_tallies(self):
        trail = AuditTrail(mode="counts")
        assert not trail.retains_events
        trail.record(stub_event())
        trail.record(
            stub_event(forwarded=False, decision=Decision.SUPPRESSED)
        )
        assert trail.events == []
        counts = trail.decision_counts()
        assert counts[Decision.FORWARDED] == 1
        assert counts[Decision.SUPPRESSED] == 1
        # The SP-visible log still accumulates forwarded traffic only.
        sp_log = trail.sp_log()
        assert [sp.msgid for sp in sp_log] == [1]

    def test_counts_mode_refuses_ts_side_ground_truth(self):
        trail = AuditTrail(mode="counts")
        trail.record(stub_event())
        with pytest.raises(RuntimeError, match="sp_log"):
            trail.forwarded_requests()

    def test_sp_log_filters_by_service(self):
        trail = AuditTrail()
        trail.record(stub_event())
        assert trail.sp_log("poi")
        assert trail.sp_log("weather") == []


class TestAnonymizerAuditModes:
    def test_default_is_full_retention(self):
        ts = make_ts()
        first, second = drive(ts)
        assert ts.events == [first, second]
        assert len(ts.forwarded_requests()) == 2

    def test_counts_mode_end_to_end(self):
        full = make_ts()
        bounded = make_ts(audit="counts")
        drive(full)
        bounded_first, bounded_second = drive(bounded)
        # Decisions are unaffected by the retention policy...
        assert bounded_first.decision is Decision.GENERALIZED
        assert bounded_second.decision is Decision.FORWARDED
        assert bounded.decision_counts() == full.decision_counts()
        # ...the caller still gets each event, but nothing is retained.
        assert bounded.events == []
        sp = bounded.sp_log()
        assert [r.msgid for r in sp] == [r.msgid for r in full.sp_log()]
        with pytest.raises(RuntimeError):
            bounded.forwarded_requests()

    def test_invalid_mode_rejected_at_construction(self):
        with pytest.raises(ValueError):
            make_ts(audit="everything")


class TestSimulationAuditModes:
    def test_counts_mode_simulation_still_reports(self):
        simulation = build_simulation(
            build_city(), AnonymitySetScope.PER_LBQID, audit="counts"
        )
        report = simulation.run()
        assert report.events == []
        assert report.requests_issued > 0
        counts = report.decision_counts()
        assert sum(counts.values()) == report.requests_issued
        provider = report.providers["poi"]
        assert len(provider.log) == len(report.anonymizer.sp_log())
