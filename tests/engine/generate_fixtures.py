"""Regenerate the engine-equivalence golden fixtures.

Run from the repo root::

    PYTHONPATH=src:tests/engine python tests/engine/generate_fixtures.py

The committed fixtures were produced by the pre-refactor
``TrustedAnonymizer._process`` monolith (commit 58784ca); regenerating
them against the staged engine is only legitimate when a *deliberate*
semantic change has been reviewed and documented — the whole point of
the fixture is to catch accidental drift.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.core.anonymizer import AnonymitySetScope

import workload

FIXTURE_DIR = Path(__file__).parent / "fixtures"


def main() -> None:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for scope in AnonymitySetScope:
        record = workload.run_workload(scope)
        path = FIXTURE_DIR / f"equivalence_{scope.value}.json.gz"
        payload = json.dumps(record, indent=1, sort_keys=True) + "\n"
        # mtime=0 keeps the archive byte-stable across regenerations,
        # so an unchanged fixture produces no diff.
        with open(path, "wb") as fh:
            with gzip.GzipFile(fileobj=fh, mode="wb", mtime=0) as gz:
                gz.write(payload.encode("utf-8"))
        print(f"wrote {path} ({len(record['events'])} events)")


if __name__ == "__main__":
    main()
