"""Session-store backends: in-memory vs sharded equivalence.

The Section 6.1 strategy reads only the requester's own session, so
partitioning users across shards must be invisible to every decision.
The end-to-end test runs the E1 service-model workload (``k=5``,
``AlwaysUnlink``) through both backends and asserts identical decision
sequences and forwarded contexts; pseudonym *strings* differ by design
(each shard issues under its own ``p<i>.`` prefix so pseudonyms stay
globally unique without cross-shard coordination).
"""

import pytest

from repro.core.anonymizer import AnonymitySetScope
from repro.core.unlinking import AlwaysUnlink
from repro.engine.session import (
    InMemorySessionStore,
    SessionStore,
    ShardedSessionStore,
    UserSession,
)
from repro.experiments.workloads import make_policy
from repro.mobility.population import CityConfig, SyntheticCity
from repro.obs.config import TelemetryConfig
from repro.ts.simulation import LBSSimulation

E1_CITY = CityConfig(seed=7, n_commuters=30, n_wanderers=12)
N_SHARDS = 4


def run_e1(session_store=None, telemetry=None):
    """The E1 service-model workload on a smoke-sized city."""
    simulation = LBSSimulation(
        SyntheticCity.generate(E1_CITY),
        policy=make_policy(k=5),
        unlinker=AlwaysUnlink(),
        scope=AnonymitySetScope.PER_LBQID,
        session_store=session_store,
        telemetry=telemetry,
        seed=97,
    )
    return simulation.run()


def decision_trace(report):
    """Everything a backend could plausibly perturb, except pseudonyms."""
    return [
        (
            event.request.user_id,
            event.request.t,
            event.decision,
            event.forwarded,
            event.lbqid_name,
            event.step,
            event.required_k,
            event.pseudonym_rotated,
            (
                event.request.context.rect.x_min,
                event.request.context.rect.y_min,
                event.request.context.rect.x_max,
                event.request.context.rect.y_max,
                event.request.context.interval.start,
                event.request.context.interval.end,
            ),
        )
        for event in report.events
    ]


class TestShardedEquivalence:
    def test_sharded_store_matches_in_memory_on_e1(self):
        baseline = run_e1()
        sharded = run_e1(
            session_store=ShardedSessionStore(n_shards=N_SHARDS)
        )
        assert decision_trace(sharded) == decision_trace(baseline)
        assert sharded.decision_counts() == baseline.decision_counts()

    def test_sharded_pseudonyms_are_globally_unique(self):
        report = run_e1(
            session_store=ShardedSessionStore(n_shards=N_SHARDS)
        )
        store = report.anonymizer.engine.sessions
        issued = [
            pseudonym
            for user_id in store.users()
            for pseudonym in store.pseudonyms_of(user_id)
        ]
        assert len(issued) == len(set(issued))
        assert len(issued) == store.pseudonyms_issued


class TestShardedRouting:
    def test_routing_is_user_id_modulo_shards(self):
        store = ShardedSessionStore(n_shards=4)
        for user_id in (0, 1, 5, 42, 103):
            shard = store.shard_for(user_id)
            assert shard is store.shards[user_id % 4]
            assert store.session(user_id) is shard.session(user_id)

    def test_every_operation_stays_on_one_shard(self):
        store = ShardedSessionStore(n_shards=4)
        store.session(6)
        store.pseudonym(6)
        store.rotate_pseudonym(6)
        assert len(store.shards[2]) == 1
        assert all(
            len(shard) == 0
            for index, shard in enumerate(store.shards)
            if index != 2
        )

    def test_shard_prefixes_label_the_owning_shard(self):
        store = ShardedSessionStore(n_shards=4)
        assert store.pseudonym(9).startswith("p1.")
        assert store.rotate_pseudonym(9).startswith("p1.")

    def test_pseudonym_owner_searches_all_shards(self):
        store = ShardedSessionStore(n_shards=4)
        pseudonyms = {store.pseudonym(user): user for user in range(8)}
        for pseudonym, user in pseudonyms.items():
            assert store.pseudonym_owner(pseudonym) == user
        assert store.pseudonym_owner("p0.nope") is None

    def test_len_and_users_span_shards(self):
        store = ShardedSessionStore(n_shards=3)
        for user in range(7):
            store.session(user)
        assert len(store) == 7
        assert sorted(store.users()) == list(range(7))

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ValueError):
            ShardedSessionStore(n_shards=0)


class TestSessionStoreProtocol:
    @pytest.mark.parametrize(
        "store",
        [InMemorySessionStore(), ShardedSessionStore(n_shards=2)],
        ids=["in-memory", "sharded"],
    )
    def test_backends_satisfy_the_protocol(self, store):
        assert isinstance(store, SessionStore)

    def test_session_created_on_first_access(self):
        store = InMemorySessionStore()
        assert store.get(3) is None
        session = store.session(3)
        assert isinstance(session, UserSession)
        assert session.user_id == 3
        assert store.get(3) is session
        assert session.lbqids == []
        assert session.quiet_until is None


class TestStageTelemetryInSummary:
    def test_stage_ms_histograms_reach_the_report_summary(self):
        report = run_e1(telemetry=TelemetryConfig(enabled=True))
        summary = report.summary()
        assert "engine.stage_ms" in summary
        snapshot = report.metrics_snapshot()
        for stage in (
            "quiet_gate",
            "monitor_match",
            "generalize",
            "audit",
        ):
            histogram = snapshot.histogram_summary(
                "engine.stage_ms", stage=stage
            )
            assert histogram is not None, stage
            assert histogram.count > 0
