"""Unit tests for service providers."""

from repro.core.requests import Request
from repro.geometry.point import STPoint
from repro.ts.providers import ServiceProvider


def sp_request(msgid=1, pseudonym="p1"):
    return Request.issue(
        msgid, 42, pseudonym, STPoint(100, 200, 300), service="poi"
    ).sp_view()


class TestServiceProvider:
    def test_answers_carry_msgid(self):
        provider = ServiceProvider("poi")
        answer = provider.receive(sp_request(msgid=7))
        assert answer.msgid == 7

    def test_log_accumulates(self):
        provider = ServiceProvider("poi")
        provider.receive(sp_request(1))
        provider.receive(sp_request(2))
        assert provider.request_count == 2

    def test_pseudonyms_seen(self):
        provider = ServiceProvider("poi")
        provider.receive(sp_request(1, "a"))
        provider.receive(sp_request(2, "a"))
        provider.receive(sp_request(3, "b"))
        assert provider.pseudonyms_seen() == {"a", "b"}

    def test_answer_mentions_context(self):
        provider = ServiceProvider("poi")
        answer = provider.receive(sp_request())
        assert "poi" in answer.payload
        assert "100" in answer.payload
