"""Integration-grade unit tests for the LBS simulation."""

import pytest

from repro.core.anonymizer import Decision
from repro.core.unlinking import AlwaysUnlink
from repro.experiments.workloads import (
    DEFAULT_TOLERANCE,
    make_policy,
    small_city,
)
from repro.ts.simulation import LBSSimulation, RequestProfile


@pytest.fixture(scope="module")
def report(city):
    simulation = LBSSimulation(
        city,
        policy=make_policy(k=3),
        unlinker=AlwaysUnlink(),
        seed=5,
    )
    return simulation.run()


# Reuse the session city fixture under a module-scoped name.
@pytest.fixture(scope="module")
def city():
    return small_city(seed=11)


class TestRun:
    def test_every_sample_processed(self, city, report):
        total = report.requests_issued + report.location_updates
        assert total == city.store.total_points

    def test_store_mirrors_city(self, city, report):
        assert report.store.total_points == city.store.total_points

    def test_events_match_requests(self, report):
        assert len(report.events) == report.requests_issued

    def test_provider_got_only_forwarded(self, report):
        provider = report.providers["poi"]
        forwarded = sum(1 for e in report.events if e.forwarded)
        assert provider.request_count == forwarded

    def test_some_generalization_happened(self, report):
        counts = report.decision_counts()
        assert counts[Decision.GENERALIZED] > 0

    def test_generalized_events_have_lbqid(self, report):
        for event in report.generalized_events():
            assert event.lbqid_name is not None


class TestRequestProfile:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            RequestProfile(background_probability=2.0)

    def test_zero_probability_produces_no_requests(self, city):
        simulation = LBSSimulation(
            city,
            register_lbqids=False,
            request_profile=RequestProfile(
                background_probability=0.0,
                anchor_request_probability=0.0,
            ),
        )
        report = simulation.run()
        assert report.requests_issued == 0

    def test_without_lbqids_no_generalization(self, city):
        simulation = LBSSimulation(
            city,
            register_lbqids=False,
            request_profile=RequestProfile(background_probability=0.05),
            seed=3,
        )
        report = simulation.run()
        assert report.requests_issued > 0
        assert not report.generalized_events()


class TestTelemetry:
    @pytest.fixture(scope="class")
    def telemetry_report(self, city):
        from repro.obs import TelemetryConfig

        simulation = LBSSimulation(
            city,
            policy=make_policy(k=3),
            unlinker=AlwaysUnlink(),
            telemetry=TelemetryConfig(enabled=True),
            seed=5,
        )
        return simulation.run()

    def test_decision_counters_match_audit_trail(self, telemetry_report):
        snapshot = telemetry_report.metrics_snapshot()
        audit = telemetry_report.decision_counts()
        for decision in Decision:
            assert snapshot.counter_value(
                "ts.decisions", decision=decision.value
            ) == audit[decision], decision

    def test_request_and_update_counters(self, telemetry_report):
        snapshot = telemetry_report.metrics_snapshot()
        assert (
            snapshot.counter_value("ts.requests")
            == telemetry_report.requests_issued
        )
        # Every request doubles as a location update, so the PHL-ingest
        # counter covers both streams.
        assert snapshot.counter_value("ts.location_updates") == (
            telemetry_report.requests_issued
            + telemetry_report.location_updates
        )

    def test_summary_renders(self, telemetry_report):
        text = telemetry_report.summary()
        assert "== simulation ==" in text
        assert "== telemetry ==" in text
        assert "ts.decisions" in text

    def test_disabled_by_default(self, city):
        report = LBSSimulation(
            city,
            policy=make_policy(k=3),
            unlinker=AlwaysUnlink(),
            seed=5,
        ).run()
        assert report.metrics_snapshot() is None
        assert "== telemetry ==" not in report.summary()


class TestDeterminism:
    def test_same_seed_same_outcome(self, city):
        def run():
            return LBSSimulation(
                city,
                policy=make_policy(k=3, tolerance=DEFAULT_TOLERANCE),
                unlinker=AlwaysUnlink(),
                seed=17,
            ).run()

        a, b = run(), run()
        assert a.requests_issued == b.requests_issued
        assert a.decision_counts() == b.decision_counts()
