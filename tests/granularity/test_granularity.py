"""Unit tests for granularities and the standard calendar instances."""

import pytest

from repro.granularity.calendar import (
    DAYS,
    HOURS,
    MONDAYS,
    WEEKDAYS,
    WEEKEND_DAYS,
    WEEKS,
    granularity_by_name,
    weekday_granularity,
)
from repro.granularity.granularity import UniformGranularity
from repro.granularity.timeline import DAY, time_at


class TestUniformGranularity:
    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            UniformGranularity("bad", 0.0)

    def test_granule_indexing(self):
        g = UniformGranularity("tens", 10.0)
        assert g.granule_containing(0.0) == 0
        assert g.granule_containing(9.999) == 0
        assert g.granule_containing(10.0) == 1
        assert g.granule_containing(-0.5) == -1

    def test_offset(self):
        g = UniformGranularity("offset", 10.0, offset=5.0)
        assert g.granule_containing(4.9) == -1
        assert g.granule_containing(5.0) == 0

    def test_granule_interval_roundtrip(self):
        g = UniformGranularity("tens", 10.0)
        interval = g.granule_interval(3)
        assert interval.start == 30.0
        assert g.granule_containing(interval.start) == 3

    def test_same_granule(self):
        assert DAYS.same_granule(time_at(hour=1), time_at(hour=23))
        assert not DAYS.same_granule(time_at(hour=23), time_at(day=1))

    def test_covers_everything(self):
        assert HOURS.covers(12345.6)


class TestWeekdays:
    def test_weekday_covered(self):
        assert WEEKDAYS.covers(time_at(day=0, hour=9))
        assert WEEKDAYS.covers(time_at(day=4, hour=9))

    def test_weekend_is_gap(self):
        assert not WEEKDAYS.covers(time_at(day=5, hour=9))
        assert not WEEKDAYS.covers(time_at(day=6, hour=9))

    def test_same_granule_within_one_day(self):
        assert WEEKDAYS.same_granule(
            time_at(day=1, hour=8), time_at(day=1, hour=18)
        )

    def test_different_weekdays_different_granules(self):
        assert not WEEKDAYS.same_granule(
            time_at(day=1, hour=8), time_at(day=2, hour=8)
        )

    def test_gap_instant_never_shares_granule(self):
        saturday = time_at(day=5, hour=9)
        assert not WEEKDAYS.same_granule(saturday, saturday)

    def test_granule_interval_is_the_day(self):
        interval = WEEKDAYS.granule_interval(8)  # Tuesday of week 1
        assert interval.start == 8 * DAY
        assert interval.duration == DAY

    def test_granule_interval_rejects_weekend_day(self):
        with pytest.raises(ValueError):
            WEEKDAYS.granule_interval(5)  # Saturday of week 0

    def test_weekend_days_complement(self):
        for day in range(7):
            t = time_at(day=day, hour=12)
            assert WEEKDAYS.covers(t) != WEEKEND_DAYS.covers(t)


class TestWeekdayGranularity:
    def test_mondays(self):
        assert MONDAYS.covers(time_at(week=3, day=0, hour=1))
        assert not MONDAYS.covers(time_at(week=3, day=1, hour=1))

    def test_rejects_bad_day(self):
        with pytest.raises(ValueError):
            weekday_granularity(7)

    def test_names(self):
        assert weekday_granularity(3).name == "Thursdays"


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert granularity_by_name("weekdays") is WEEKDAYS
        assert granularity_by_name("Weeks") is WEEKS

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            granularity_by_name("Fortnights")


class TestNesting:
    def test_weekday_granule_within_week_granule(self):
        """Every weekday granule starts inside exactly one week granule."""
        for day in (0, 1, 2, 3, 4, 7, 8, 11):
            if not WEEKDAYS._day_predicate(day % 7):
                continue
            start = WEEKDAYS.granule_interval(day).start
            assert WEEKS.granule_containing(start) == day // 7
