"""Property-based tests for recurrence satisfaction.

The key invariant is monotonicity: adding observations can only move a
formula toward satisfaction, never away from it; removing observations
can never create satisfaction.
"""

from hypothesis import given, strategies as st

from repro.granularity.recurrence import RecurrenceFormula
from repro.granularity.timeline import DAY, HOUR

formulas = st.sampled_from(
    [
        RecurrenceFormula.parse(""),
        RecurrenceFormula.parse("2.Days"),
        RecurrenceFormula.parse("3.Weekdays * 2.Weeks"),
        RecurrenceFormula.parse("2.Days * 2.Weeks"),
        RecurrenceFormula.parse("1.Mondays * 3.Weeks"),
        RecurrenceFormula.parse("2.Weekdays * 2.Weeks * 2.Months"),
    ]
)


@st.composite
def observations(draw):
    """Observation lists: each a small timestamp batch inside one day."""
    count = draw(st.integers(min_value=0, max_value=30))
    result = []
    for _ in range(count):
        day = draw(st.integers(min_value=0, max_value=80))
        hours = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=23.9),
                min_size=1,
                max_size=4,
            )
        )
        result.append([day * DAY + h * HOUR for h in hours])
    return result


class TestMonotonicity:
    @given(formulas, observations(), observations())
    def test_adding_observations_preserves_satisfaction(
        self, formula, base, extra
    ):
        if formula.satisfied_by(base):
            assert formula.satisfied_by(base + extra)

    @given(formulas, observations(), st.data())
    def test_removing_observations_never_creates_satisfaction(
        self, formula, base, data
    ):
        if not base:
            return
        keep = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(base) - 1),
                unique=True,
            )
        )
        subset = [base[i] for i in keep]
        if formula.satisfied_by(subset):
            assert formula.satisfied_by(base)

    @given(formulas, observations())
    def test_satisfaction_level_monotone_in_observations(
        self, formula, base
    ):
        """The level over a growing prefix never decreases."""
        if formula.is_empty:
            return
        previous = 0
        for i in range(len(base) + 1):
            level = formula.satisfaction_level(base[:i])
            assert level >= previous
            previous = level


class TestLevelConsistency:
    @given(formulas, observations())
    def test_satisfied_iff_full_level(self, formula, base):
        if formula.is_empty:
            return
        satisfied = formula.satisfied_by(base)
        level = formula.satisfaction_level(base)
        assert satisfied == (level >= len(formula.terms))

    @given(formulas, observations())
    def test_minimum_observations_is_a_lower_bound(self, formula, base):
        valid = [
            o
            for o in base
            if formula.observation_granule(o) is not None
        ]
        distinct = {
            formula.observation_granule(o) for o in valid
        }
        if formula.satisfied_by(base):
            assert len(distinct) >= (
                formula.terms[0].count if formula.terms else 1
            )
