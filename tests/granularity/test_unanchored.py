"""Unit tests for unanchored time intervals."""

import pytest

from repro.granularity.timeline import DAY, HOUR, time_at
from repro.granularity.unanchored import UnanchoredInterval


class TestConstruction:
    def test_from_hours(self):
        window = UnanchoredInterval.from_hours(7, 9)
        assert window.start_offset == 7 * HOUR
        assert window.end_offset == 9 * HOUR

    def test_pm_hours(self):
        window = UnanchoredInterval.from_hours(16, 18)
        assert window.start_offset == 16 * HOUR

    def test_rejects_out_of_range_offsets(self):
        with pytest.raises(ValueError):
            UnanchoredInterval(-1.0, 100.0)
        with pytest.raises(ValueError):
            UnanchoredInterval(0.0, DAY)

    def test_24_wraps_to_midnight(self):
        window = UnanchoredInterval.from_hours(23, 24)
        assert window.end_offset == 0.0
        assert window.wraps_midnight


class TestContains:
    def test_recurs_daily(self):
        window = UnanchoredInterval.from_hours(7, 9)
        for day in range(10):
            assert window.contains(time_at(day=day % 7, hour=8))

    def test_excludes_outside(self):
        window = UnanchoredInterval.from_hours(7, 9)
        assert not window.contains(time_at(hour=6.99))
        assert not window.contains(time_at(hour=9.01))

    def test_boundaries_inclusive(self):
        window = UnanchoredInterval.from_hours(7, 9)
        assert window.contains(time_at(hour=7))
        assert window.contains(time_at(hour=9))

    def test_wrapping_window(self):
        window = UnanchoredInterval.from_hours(23, 1)
        assert window.contains(time_at(hour=23.5))
        assert window.contains(time_at(day=1, hour=0.5))
        assert not window.contains(time_at(hour=12))


class TestDuration:
    def test_simple(self):
        assert UnanchoredInterval.from_hours(7, 9).duration == 2 * HOUR

    def test_wrapping(self):
        assert UnanchoredInterval.from_hours(23, 1).duration == 2 * HOUR


class TestAnchoring:
    def test_anchored_on_day(self):
        window = UnanchoredInterval.from_hours(7, 9)
        occurrence = window.anchored_on_day(3)
        assert occurrence.start == 3 * DAY + 7 * HOUR
        assert occurrence.duration == 2 * HOUR

    def test_anchored_around_finds_occurrence(self):
        window = UnanchoredInterval.from_hours(7, 9)
        t = time_at(day=2, hour=8)
        occurrence = window.anchored_around(t)
        assert occurrence is not None
        assert occurrence.contains(t)

    def test_anchored_around_none_outside(self):
        window = UnanchoredInterval.from_hours(7, 9)
        assert window.anchored_around(time_at(hour=12)) is None

    def test_anchored_around_wrapping_past_midnight(self):
        window = UnanchoredInterval.from_hours(23, 1)
        t = time_at(day=1, hour=0.5)  # belongs to day 0's occurrence
        occurrence = window.anchored_around(t)
        assert occurrence is not None
        assert occurrence.contains(t)
        assert occurrence.start == 23 * HOUR
