"""Unit tests for recurrence formulas (Definition 1 semantics)."""

import pytest

from repro.granularity.calendar import WEEKDAYS, WEEKS
from repro.granularity.recurrence import RecurrenceFormula, RecurrenceTerm
from repro.granularity.timeline import time_at


def obs(week: int, day: int, hours=(7.5, 8.5, 17.0, 18.0)):
    """One commute-shaped observation on a given day."""
    return [time_at(week=week, day=day, hour=h) for h in hours]


class TestParsing:
    def test_example_2(self):
        formula = RecurrenceFormula.parse("3.Weekdays * 2.Weeks")
        assert len(formula.terms) == 2
        assert formula.terms[0].count == 3
        assert formula.terms[0].granularity is WEEKDAYS
        assert formula.terms[1].count == 2
        assert formula.terms[1].granularity is WEEKS

    def test_whitespace_separator(self):
        formula = RecurrenceFormula.parse("2.Days 3.Weeks")
        assert [t.count for t in formula.terms] == [2, 3]

    def test_empty_string(self):
        assert RecurrenceFormula.parse("").is_empty
        assert RecurrenceFormula.parse("   ").is_empty

    def test_malformed_term(self):
        with pytest.raises(ValueError):
            RecurrenceFormula.parse("3Weekdays")

    def test_malformed_count(self):
        with pytest.raises(ValueError):
            RecurrenceFormula.parse("x.Weekdays")

    def test_unknown_granularity(self):
        with pytest.raises(KeyError):
            RecurrenceFormula.parse("3.Moons")

    def test_str_round_trip(self):
        text = "3.Weekdays * 2.Weeks"
        assert str(RecurrenceFormula.parse(text)) == text

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            RecurrenceTerm(0, WEEKDAYS)


class TestNormalization:
    def test_trailing_one_dropped(self):
        formula = RecurrenceFormula.parse("3.Weekdays * 1.Weeks")
        assert len(formula.normalized().terms) == 1

    def test_single_one_term_kept(self):
        """``1.G`` alone still bounds observation duration."""
        formula = RecurrenceFormula.parse("1.Weekdays")
        assert len(formula.normalized().terms) == 1


class TestEmptyFormula:
    def test_single_observation_satisfies(self):
        formula = RecurrenceFormula()
        assert formula.satisfied_by([obs(0, 0)])

    def test_no_observations_does_not(self):
        assert not RecurrenceFormula().satisfied_by([])

    def test_minimum_observations(self):
        assert RecurrenceFormula().minimum_observations == 1


class TestExample2Semantics:
    formula = RecurrenceFormula.parse("3.Weekdays * 2.Weeks")

    def test_minimum_observations(self):
        assert self.formula.minimum_observations == 6

    def test_canonical_satisfaction(self):
        observations = [
            obs(w, d) for w in range(2) for d in range(3)
        ]
        assert self.formula.satisfied_by(observations)

    def test_one_week_insufficient(self):
        observations = [obs(0, d) for d in range(5)]
        assert not self.formula.satisfied_by(observations)

    def test_two_days_per_week_insufficient(self):
        observations = [obs(w, d) for w in range(3) for d in range(2)]
        assert not self.formula.satisfied_by(observations)

    def test_weeks_need_not_be_consecutive(self):
        observations = [obs(0, d) for d in range(3)] + [
            obs(5, d) for d in range(3)
        ]
        assert self.formula.satisfied_by(observations)

    def test_weekend_observations_do_not_count(self):
        observations = [
            obs(w, d) for w in range(2) for d in (2, 5, 6)  # Wed, Sat, Sun
        ]
        assert not self.formula.satisfied_by(observations)

    def test_same_day_duplicates_collapse(self):
        """Two observations on the same weekday count once (distinct
        granules are required at level 1)."""
        observations = [o for w in range(2) for o in (
            obs(w, 0), obs(w, 0, hours=(7.6, 8.6, 17.1, 18.1)),
            obs(w, 1),
        )]
        assert not self.formula.satisfied_by(observations)

    def test_observation_spanning_days_invalid(self):
        spanning = [time_at(day=0, hour=23), time_at(day=1, hour=1)]
        assert self.formula.observation_granule(spanning) is None

    def test_satisfaction_level_progression(self):
        observations = []
        assert self.formula.satisfaction_level(observations) == 0
        observations = [obs(0, d) for d in range(3)]
        assert self.formula.satisfaction_level(observations) == 1
        observations += [obs(1, d) for d in range(3)]
        assert self.formula.satisfaction_level(observations) == 2


class TestMondaysPattern:
    """"Same weekday for at least 3 weeks" via the Mondays granularity."""

    formula = RecurrenceFormula.parse("1.Mondays * 3.Weeks")

    def test_three_mondays_satisfy(self):
        observations = [obs(w, 0) for w in range(3)]
        assert self.formula.satisfied_by(observations)

    def test_tuesdays_do_not(self):
        observations = [obs(w, 1) for w in range(3)]
        assert not self.formula.satisfied_by(observations)

    def test_two_mondays_insufficient(self):
        observations = [obs(w, 0) for w in range(2)]
        assert not self.formula.satisfied_by(observations)


class TestDaysWeeks:
    def test_two_days_per_week_pattern(self):
        formula = RecurrenceFormula.parse("2.Days * 2.Weeks")
        observations = [obs(w, d) for w in (0, 1) for d in (2, 5)]
        assert formula.satisfied_by(observations)

    def test_weekends_count_for_days(self):
        formula = RecurrenceFormula.parse("2.Days * 1.Weeks")
        observations = [obs(0, 5), obs(0, 6)]
        assert formula.normalized().satisfied_by(observations)
