"""Unit tests for the timeline and calendar arithmetic."""

import pytest

from repro.granularity.timeline import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    day_index,
    day_of_week,
    format_time,
    seconds_of_day,
    time_at,
    week_index,
)


class TestConstants:
    def test_nesting(self):
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY


class TestTimeAt:
    def test_origin(self):
        assert time_at() == 0.0

    def test_composition(self):
        t = time_at(week=1, day=2, hour=3, minute=4, second=5)
        assert t == WEEK + 2 * DAY + 3 * HOUR + 4 * MINUTE + 5

    def test_rejects_bad_day(self):
        with pytest.raises(ValueError):
            time_at(day=7)

    def test_fractional_hours(self):
        assert time_at(hour=7.5) == 7.5 * HOUR


class TestCalendarQueries:
    def test_origin_is_monday(self):
        assert day_of_week(0.0) == 0

    def test_sunday(self):
        assert day_of_week(time_at(day=6, hour=12)) == 6

    def test_week_wraps(self):
        assert day_of_week(time_at(week=3, day=1)) == 1

    def test_seconds_of_day(self):
        assert seconds_of_day(time_at(week=2, day=3, hour=5)) == 5 * HOUR

    def test_day_index(self):
        assert day_index(time_at(week=1, day=2, hour=23)) == 9

    def test_week_index(self):
        assert week_index(time_at(week=4, day=6, hour=23)) == 4

    def test_day_boundary_belongs_to_new_day(self):
        assert day_index(DAY) == 1
        assert seconds_of_day(DAY) == 0.0


class TestFormatTime:
    def test_renders_components(self):
        text = format_time(time_at(week=1, day=2, hour=7, minute=30))
        assert "week 1" in text
        assert "Wednesday" in text
        assert "07:30" in text
