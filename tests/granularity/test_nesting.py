"""Unit tests for the recurrence nesting validator."""

from repro.granularity.recurrence import RecurrenceFormula


class TestNestingViolations:
    def test_calendar_formulas_nest(self):
        for text in (
            "3.Weekdays * 2.Weeks",
            "2.Days * 2.Weeks",
            "1.Mondays * 3.Weeks",
            "5.Days * 2.Months",
        ):
            formula = RecurrenceFormula.parse(text)
            assert formula.nesting_violations() == [], text

    def test_weeks_into_months_misaligned(self):
        formula = RecurrenceFormula.parse("2.Weeks * 2.Months")
        violations = formula.nesting_violations()
        assert violations
        assert all(
            fine == "Weeks" and coarse == "Months"
            for fine, coarse, _granule in violations
        )

    def test_empty_and_single_term_trivially_nest(self):
        assert RecurrenceFormula().nesting_violations() == []
        assert RecurrenceFormula.parse("3.Weekdays").nesting_violations() \
            == []

    def test_three_level_formula_checks_both_pairs(self):
        formula = RecurrenceFormula.parse(
            "2.Weekdays * 2.Weeks * 2.Months"
        )
        violations = formula.nesting_violations()
        # Weekdays nest in Weeks; Weeks straddle Months.
        pairs = {(fine, coarse) for fine, coarse, _g in violations}
        assert ("Weekdays", "Weeks") not in pairs
        assert ("Weeks", "Months") in pairs
