"""E15 — ablations of the reproduction's own design choices.

DESIGN.md introduces two tunables the paper does not fix, and this
bench measures both so their defaults are evidence-based rather than
folklore:

* **time scale** — Algorithm 1 needs a combined spatio-temporal
  distance; we convert seconds to meters at a reference speed
  (DESIGN.md substitution table; default 1.5 m/s).  Too small and the
  k nearest "neighbours" are stale samples from far in the past whose
  positions no longer correlate with anyone's presence; too large and
  only exactly-synchronous samples qualify, starving the selection.
  The sweep reports generalization failure rate and box shape across
  four orders of magnitude.
* **grid cell size** — the moving-object index (E9) trades ring-search
  fan-out against per-cell scan length.  The sweep runs Algorithm 1
  line-5 queries at three cell sizes over the same 100k-point store and
  reads the per-query latency from the obs layer's ``store.query_ms``
  histogram instead of timing by hand.
"""

import numpy as np

from repro.core.unlinking import AlwaysUnlink
from repro.experiments.harness import Table
from repro.experiments.workloads import make_policy
from repro.geometry.point import STPoint
from repro.metrics.qos import qos_summary
from repro.mod.store import TrajectoryStore
from repro.obs import TelemetryConfig
from repro.ts.simulation import LBSSimulation

TIME_SCALES = (0.015, 0.15, 1.5, 15.0)
CELL_SIZES = (125.0, 500.0, 2000.0)


def run_e15a(city):
    rows = []
    for time_scale in TIME_SCALES:
        simulation = LBSSimulation(
            city,
            policy=make_policy(k=5),
            unlinker=AlwaysUnlink(),
            seed=97,
        )
        simulation.anonymizer.store.time_scale = time_scale
        report = simulation.run()
        qos = qos_summary(report.events)
        attempted = sum(
            1 for e in report.events if e.lbqid_name is not None
        )
        failed = sum(
            1
            for e in report.events
            if e.lbqid_name is not None and not e.hk_anonymity
        )
        rows.append(
            (
                time_scale,
                failed / attempted if attempted else 0.0,
                qos.mean_width_m,
                qos.mean_duration_s,
            )
        )
    return rows


def _uniform_store(cell_size, n_points=100_000):
    rng = np.random.default_rng(17)
    # This ablation measures the *grid index*, so the python backend
    # is pinned — the suite-wide REPRO_STORE_BACKEND matrix would
    # otherwise reroute the queries through the columnar path.
    store = TrajectoryStore(
        index_cell_size=cell_size,
        telemetry=TelemetryConfig(enabled=True),
        backend="python",
    )
    n_users = n_points // 500
    for user_id in range(n_users):
        times = np.sort(rng.uniform(0.0, 14 * 86_400.0, size=500))
        xs = rng.uniform(0.0, 4000.0, size=500)
        ys = rng.uniform(0.0, 4000.0, size=500)
        store.add_points(
            user_id,
            [
                STPoint(float(x), float(y), float(t))
                for x, y, t in zip(xs, ys, times)
            ],
        )
    return store


def run_e15b():
    rng = np.random.default_rng(5)
    targets = [
        STPoint(
            float(rng.uniform(0, 4000)),
            float(rng.uniform(0, 4000)),
            float(rng.uniform(0, 14 * 86_400.0)),
        )
        for _ in range(30)
    ]
    rows = []
    for cell_size in CELL_SIZES:
        store = _uniform_store(cell_size)
        for target in targets:
            store.nearest_users(target, 10)
        summary = store.telemetry.snapshot().histogram_summary(
            "store.query_ms", query="nearest_users", method="grid"
        )
        rows.append((cell_size, summary.mean))
    return rows


def test_e15a_time_scale(benchmark, bench_city, bench_export):
    rows = benchmark.pedantic(
        run_e15a, args=(bench_city,), rounds=1, iterations=1
    )
    table = Table(
        "E15a: spatio-temporal distance time scale (k=5)",
        [
            "time scale m/s",
            "failure rate",
            "mean width m",
            "mean interval s",
        ],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    bench_export(
        "e15a",
        table.metrics(),
        workload={"time_scales": list(TIME_SCALES)},
    )

    by_scale = {row[0]: row for row in rows}
    # Near-zero weighting of time picks stale neighbours: the boxes'
    # temporal extents explode.
    assert by_scale[0.015][3] > by_scale[1.5][3]
    # Over-weighting time starves the spatial neighbourhood: failures
    # rise relative to the default.
    assert by_scale[15.0][1] >= by_scale[1.5][1]


def test_e15b_cell_size(benchmark, bench_export):
    rows = benchmark.pedantic(run_e15b, rounds=1, iterations=1)
    table = Table(
        "E15b: grid-index cell size (100k points, k=10, 30 queries)",
        ["cell size m", "ms per query"],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    # Per-query latency is machine-dependent: informational only.
    bench_export(
        "e15b",
        {"cell_sizes": float(len(CELL_SIZES))},
        workload={"cell_sizes": list(CELL_SIZES)},
        latency={
            f"cell={size:g}": {"query_ms": ms} for size, ms in rows
        },
    )

    # All three settings answer in interactive time; the default (500 m)
    # is not the worst of the sweep.
    times = {row[0]: row[1] for row in rows}
    assert all(ms < 50.0 for ms in times.values())
    assert times[500.0] <= max(times.values())
