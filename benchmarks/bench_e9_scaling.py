"""E9 — Algorithm 1's cost and the moving-object-index speed-up.

Reproduces: Section 6.2's complexity discussion — "the most time
consuming step is the one at line 5 … the worst case complexity of this
step is O(k·n) where n is the number of location points in the TS.
Optimizations may be inspired by the work on indexing moving objects."

Three measurements (the *backend dimension*):

* the brute-force line-5 selection (scan every user's PHL) at growing
  store sizes n — its cost should scale roughly linearly in n;
* the same queries against the uniform grid index — roughly flat in n,
  giving a growing speed-up;
* the same queries against the columnar numpy backend
  (``TrajectoryStore(backend="numpy")``) — decision-equivalent to
  brute (same tuples, same tie-breaks) but answered with vectorized
  array ops; gated at ≥ 5× over brute at the largest n.

The python arms pin ``backend="python"`` explicitly so the comparison
stays meaningful when the whole suite runs under
``REPRO_STORE_BACKEND=numpy``.

This is the one experiment where the *timing* is the result, so the
stores run with telemetry enabled and the reported ms/query are the
means of the ``store.query_ms`` latency histograms the instrumented
query paths record (see :mod:`repro.obs`).
"""

import numpy as np

from repro.core.generalization import ToleranceConstraint
from repro.core.lbqid import LBQID, LBQIDElement
from repro.core.policy import PolicyTable, PrivacyProfile
from repro.core.unlinking import AlwaysUnlink
from repro.engine.pipeline import Engine
from repro.experiments.harness import Table
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.granularity.unanchored import UnanchoredInterval
from repro.mod.store import TrajectoryStore
from repro.obs import TelemetryConfig

STORE_SIZES = (10_000, 30_000, 100_000)
K = 10
QUERIES = 30
AREA = 4000.0
SPAN = 14 * 86_400.0
#: The acceptance bar: numpy ``nearest_users`` over python brute at the
#: largest store size.
NUMPY_SPEEDUP_FLOOR = 5.0
#: A user id outside every generated store population, used to drive
#: the stage-breakdown requests.
REQUESTER = 10_000_000


def _build_stores(n_points):
    """Brute, grid-indexed, and columnar stores over identical data."""
    rng = np.random.default_rng(n_points)
    n_users = max(20, n_points // 500)
    brute = TrajectoryStore(
        telemetry=TelemetryConfig(enabled=True), backend="python"
    )
    indexed = TrajectoryStore(
        index_cell_size=500.0,
        telemetry=TelemetryConfig(enabled=True),
        backend="python",
    )
    columnar = TrajectoryStore(
        telemetry=TelemetryConfig(enabled=True), backend="numpy"
    )
    per_user = n_points // n_users
    for user_id in range(n_users):
        times = np.sort(rng.uniform(0.0, SPAN, size=per_user))
        xs = rng.uniform(0.0, AREA, size=per_user)
        ys = rng.uniform(0.0, AREA, size=per_user)
        points = [
            STPoint(float(x), float(y), float(t))
            for x, y, t in zip(xs, ys, times)
        ]
        brute.add_points(user_id, points)
        indexed.add_points(user_id, points)
        columnar.add_points(user_id, points)
    return brute, indexed, columnar


def _query_points(seed):
    rng = np.random.default_rng(seed)
    return [
        STPoint(
            float(rng.uniform(0.0, AREA)),
            float(rng.uniform(0.0, AREA)),
            float(rng.uniform(0.0, SPAN)),
        )
        for _ in range(QUERIES)
    ]


def _mean_query_ms(store, method):
    """Mean latency of the store's instrumented line-5 queries."""
    summary = store.telemetry.snapshot().histogram_summary(
        "store.query_ms", query="nearest_users", method=method
    )
    return summary.mean


def _stage_breakdown(store):
    """Mean per-stage latency of the full pipeline over ``store``.

    Every request matches an area-wide anytime LBQID, so the walk
    exercises quiet_gate -> monitor_match -> generalize -> audit and
    the Algorithm 1 call dominates — this shows *where* in the pipeline
    the line-5 cost measured above actually lands.
    """
    engine = Engine(
        store,
        policy=PolicyTable(
            default_profile=PrivacyProfile(k=K),
            default_tolerance=ToleranceConstraint.square(AREA, SPAN),
        ),
        unlinker=AlwaysUnlink(),
        telemetry=TelemetryConfig(enabled=True),
    )
    engine.register_lbqid(
        REQUESTER,
        LBQID(
            "area-anytime",
            [
                LBQIDElement(
                    Rect(0.0, 0.0, AREA, AREA),
                    UnanchoredInterval(0.0, 86_399.0),
                )
            ],
        ),
    )
    for target in _query_points(seed=5):
        engine.process(REQUESTER, target, "poi")
    snapshot = engine.telemetry.snapshot()
    breakdown = {}
    for stage in engine.stages:
        summary = snapshot.histogram_summary(
            "engine.stage_ms", stage=stage.name
        )
        if summary is not None:
            breakdown[stage.name] = summary
    return breakdown


def run_e9():
    rows = []
    targets = _query_points(seed=3)
    indexed = None
    for n_points in STORE_SIZES:
        brute, indexed, columnar = _build_stores(n_points)

        for target in targets:
            brute.nearest_users_brute(target, K)
        for target in targets:
            indexed.nearest_users(target, K)
        for target in targets:
            columnar.nearest_users(target, K)

        brute_ms = _mean_query_ms(brute, "brute")
        grid_ms = _mean_query_ms(indexed, "grid")
        numpy_ms = _mean_query_ms(columnar, "numpy")
        rows.append(
            (
                n_points,
                K,
                brute_ms,
                grid_ms,
                brute_ms / grid_ms if grid_ms > 0 else float("inf"),
                numpy_ms,
                brute_ms / numpy_ms if numpy_ms > 0 else float("inf"),
            )
        )
    # Stage breakdown over the largest indexed store (informational).
    breakdown = _stage_breakdown(indexed)
    return rows, breakdown


def test_e9_scaling(benchmark, bench_export):
    rows, breakdown = benchmark.pedantic(run_e9, rounds=1, iterations=1)

    table = Table(
        f"E9: Algorithm 1 line-5 cost, k={K}, {QUERIES} queries/cell",
        [
            "points in TS (n)",
            "k",
            "brute ms/query",
            "grid ms/query",
            "grid speedup",
            "numpy ms/query",
            "numpy speedup",
        ],
    )
    for row in rows:
        table.add_row(row)
    table.print()

    stage_table = Table(
        f"E9b: engine.stage_ms breakdown, n={STORE_SIZES[-1]} (grid)",
        ["stage", "requests", "mean ms", "p95 ms", "max ms"],
    )
    for stage, summary in breakdown.items():
        stage_table.add_row(
            (
                stage,
                summary.count,
                summary.mean,
                summary.p95,
                summary.maximum,
            )
        )
    stage_table.print()

    # The timings ARE this experiment's result, and timings are
    # machine-dependent — they go in the artifact's informational
    # latency section, never the gated metrics.
    latency = {
        f"n={n}": {
            "brute_ms": brute,
            "grid_ms": grid,
            "grid_speedup": grid_speedup,
            "numpy_ms": numpy_ms,
            "numpy_speedup": numpy_speedup,
        }
        for (
            n,
            _k,
            brute,
            grid,
            grid_speedup,
            numpy_ms,
            numpy_speedup,
        ) in rows
    }
    latency["stage_ms"] = {
        stage: summary.mean for stage, summary in breakdown.items()
    }
    bench_export(
        "e9",
        {"k": float(K), "queries": float(QUERIES)},
        workload={
            "store_sizes": list(STORE_SIZES),
            "backends": ["python", "python+grid", "numpy"],
        },
        latency=latency,
    )

    # Brute force grows with n …
    brute_times = [row[2] for row in rows]
    assert brute_times[-1] > brute_times[0] * 2
    # … the index is faster at scale, increasingly so …
    assert rows[-1][4] > rows[0][4]
    assert rows[-1][4] > 2.0
    # … and the columnar backend clears the acceptance bar.
    assert rows[-1][6] >= NUMPY_SPEEDUP_FLOOR, (
        f"numpy speedup {rows[-1][6]:.2f}x below "
        f"{NUMPY_SPEEDUP_FLOOR}x at n={rows[-1][0]}"
    )
