"""E14 — LBQID derivation from movement history (Section 4).

Reproduces: the derivation process the paper defers — "based on
statistical analysis of the data about users movement history: If a
certain pattern turns out to be very common for many users, it is
unlikely to be useful for identifying any one of them" — as a measured
pipeline over the benchmark city:

* **yield** — for how many commuters a commute-shaped candidate can be
  mined at all;
* **validity** — whether the fitted windows/recurrence match the
  owner's own history (a pattern the owner doesn't exhibit is useless);
* **distinctiveness** — how many users in the whole city match each
  candidate: a true quasi-identifier is matched by (almost) only its
  owner, which is precisely what makes protecting it worthwhile.
"""

import statistics

from repro.core.matching import request_set_matches
from repro.experiments.harness import Table
from repro.mining import mine_commute_lbqid, score_candidates


def run_e14(city):
    store = city.store
    mined = []
    self_matches = 0
    for commuter in city.commuters:
        history = store.history(commuter.user_id)
        candidate = mine_commute_lbqid(history)
        if candidate is None:
            continue
        mined.append((commuter, candidate))
        if request_set_matches(candidate.lbqid, history.points):
            self_matches += 1
    kept = score_candidates([c for _u, c in mined], store)
    matching_counts = [score.matching_users for _c, score in kept]
    anchors_correct = 0
    for commuter, candidate in mined:
        if candidate.home.area.expanded(100).contains(
            commuter.home_point
        ):
            anchors_correct += 1
    return {
        "commuters": len(city.commuters),
        "mined": len(mined),
        "self_matches": self_matches,
        "anchors_correct": anchors_correct,
        "kept": len(kept),
        "median_matching": (
            statistics.median(matching_counts) if matching_counts else 0
        ),
        "max_matching": max(matching_counts, default=0),
        "unique": sum(1 for m in matching_counts if m == 1),
    }


def test_e14_mining(benchmark, bench_city, bench_export):
    result = benchmark.pedantic(
        run_e14, args=(bench_city,), rounds=1, iterations=1
    )

    table = Table(
        "E14: LBQID derivation over the benchmark city "
        f"({result['commuters']} commuters, "
        f"{len(bench_city.store)} users total)",
        ["metric", "value"],
    )
    table.add_row(["candidates mined", result["mined"]])
    table.add_row(["match owner's own history", result["self_matches"]])
    table.add_row(
        ["home anchor agrees with ground truth", result["anchors_correct"]]
    )
    table.add_row(["kept after distinctiveness filter", result["kept"]])
    table.add_row(
        ["median users matching a candidate", result["median_matching"]]
    )
    table.add_row(
        ["max users matching a candidate", result["max_matching"]]
    )
    table.add_row(
        ["candidates matched by exactly 1 user", result["unique"]]
    )
    table.print()
    bench_export("e14", table.metrics())

    # Mining works on the vast majority of commuters...
    assert result["mined"] >= 0.9 * result["commuters"]
    # ...its candidates describe their owners...
    assert result["self_matches"] >= 0.9 * result["mined"]
    assert result["anchors_correct"] >= 0.9 * result["mined"]
    # ...and they are true quasi-identifiers: matched by very few users.
    assert result["median_matching"] <= 2
    assert result["unique"] >= 0.5 * result["kept"]
