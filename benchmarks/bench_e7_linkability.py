"""E7 — service-request linkability via multi-target tracking.

Reproduces: Section 5.2's premise that request streams are linkable even
without pseudonyms — "the issue has been investigated in [12] considering
multi target tracking techniques to associate the location of a new
request with an existing trace" — and the implicit dependence of Link()
on sampling rate and movement regularity.

Workload: users move under three mobility models; every sample becomes a
request under a FRESH pseudonym (so pseudonym linking gives the attacker
nothing).  The tracker stitches requests into tracks; pairwise
precision/recall are scored against ground truth.  Expected shape:
linkability is near-perfect at fine sampling intervals and decays as the
interval grows; smooth (Gauss-Markov) movement stays linkable longer
than random-waypoint; the paper's TS is therefore right to assume "the
TS can replicate the techniques used by a possible attacker".
"""

import numpy as np

from repro.attack.linker import TrackerLink, link_accuracy
from repro.core.requests import Request
from repro.experiments.harness import Table
from repro.geometry.region import Rect
from repro.mobility.gauss_markov import gauss_markov_trajectory
from repro.mobility.random_waypoint import random_waypoint_trajectory

BOUNDS = Rect(0.0, 0.0, 2000.0, 2000.0)
N_USERS = 8
SAMPLES_PER_USER = 60
INTERVALS = (60.0, 300.0, 900.0)


def _trajectory(model, user_id, interval, rng):
    t_end = interval * SAMPLES_PER_USER
    if model == "random-waypoint":
        return random_waypoint_trajectory(
            BOUNDS, 0.0, t_end - 1, rng, sample_period=interval,
            pause_range=(0.0, 120.0),
        )
    return gauss_markov_trajectory(
        BOUNDS, 0.0, t_end - 1, rng, sample_period=interval, alpha=0.85
    )


def _requests(model, interval, seed):
    rng = np.random.default_rng(seed)
    requests = []
    msgid = 0
    for user_id in range(N_USERS):
        for point in _trajectory(model, user_id, interval, rng):
            msgid += 1
            requests.append(
                Request.issue(msgid, user_id, f"anon-{msgid}", point)
            )
    return requests


def run_e7():
    rows = []
    for model in ("random-waypoint", "gauss-markov"):
        for interval in INTERVALS:
            requests = _requests(model, interval, seed=3)
            link = TrackerLink.from_requests(
                [r.sp_view() for r in requests],
                max_speed=12.0,
                track_timeout=3.0 * interval,
            )
            accuracy = link_accuracy(requests, link)
            rows.append(
                (
                    model,
                    int(interval),
                    accuracy.precision,
                    accuracy.recall,
                    accuracy.f1,
                )
            )
    return rows


def test_e7_linkability(benchmark, bench_export):
    rows = benchmark.pedantic(run_e7, rounds=1, iterations=1)

    table = Table(
        "E7: tracker linkability of fully anonymized request streams "
        f"({N_USERS} users, fresh pseudonym per request)",
        ["mobility", "interval s", "precision", "recall", "f1"],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    bench_export(
        "e7",
        table.metrics(key_columns=2),
        workload={"n_users": N_USERS, "samples": SAMPLES_PER_USER},
    )

    by_cell = {(r[0], r[1]): r for r in rows}
    chance = 1.0 / N_USERS
    for model in ("random-waypoint", "gauss-markov"):
        # Fine sampling is dangerous: linkability far above the 1/N
        # chance level at 60 s.
        assert by_cell[(model, 60)][4] > 3 * chance
        # Linkability decays with the sampling interval (down to the
        # chance plateau, where ordering is noise — hence the slack).
        f1s = [by_cell[(model, int(i))][4] for i in INTERVALS]
        for earlier, later in zip(f1s, f1s[1:]):
            assert later <= earlier + 0.03
    # Smooth (momentum-bearing) movement is more linkable than
    # random-waypoint at fine sampling.
    assert (
        by_cell[("gauss-markov", 60)][4]
        > by_cell[("random-waypoint", 60)][4]
    )
