"""E16 — unlinking efficacy against the tracker (Section 6.3).

Reproduces: the *outcome* definition of Unlinking — after it,
"Link(r1, r2) < Θ for all requests r1 and r2" under the old/new
pseudonyms — measured against an actual adversary rather than assumed.
The TS rotates pseudonyms when generalization fails; the multi-target
tracker then tries to bridge each rotation by movement continuity.  The
fraction of rotations bridged is the achieved Θ̂.

Two findings the paper's mix-zone discussion predicts:

* a **quiet period** (suppressing service after a rotation — "temporarily
  disabling the use of the service … for the time sufficient to confuse
  the SP") unlinks users who are *moving*: they emerge somewhere else
  and the track is lost;
* it does nothing for rotations at **dwell anchors**: the user
  resurfaces at the same place, and the place itself re-links — exactly
  the LBQID thesis, and why dwell anchors must be protected by
  generalization (declared LBQIDs, E6), not by silence.
"""

from repro.core.unlinking import AlwaysUnlink
from repro.experiments.harness import Table
from repro.experiments.workloads import make_policy
from repro.metrics.unlinking import audit_unlinking, split_by_motion
from repro.ts.simulation import LBSSimulation, RequestProfile

QUIET_PERIODS = (0.0, 900.0, 1800.0, 3600.0)


def run_e16(city):
    profile = RequestProfile(
        background_probability=0.5, anchor_request_probability=0.9
    )
    rows = []
    for quiet in QUIET_PERIODS:
        simulation = LBSSimulation(
            city,
            policy=make_policy(k=5),
            unlinker=AlwaysUnlink(),
            quiet_period=quiet,
            request_profile=profile,
            seed=23,
        )
        report = simulation.run()
        audit = audit_unlinking(report.events)
        by_motion = split_by_motion(audit, report.store.histories)
        suppressed_quiet = sum(
            1 for e in report.events if e.decision.value == "quiet"
        )
        rows.append(
            (
                quiet,
                audit.rotations,
                audit.relink_rate,
                by_motion[True].relink_rate,
                by_motion[False].relink_rate,
                suppressed_quiet,
            )
        )
    return rows


def test_e16_unlinking_efficacy(benchmark, bench_city, bench_export):
    rows = benchmark.pedantic(
        run_e16, args=(bench_city,), rounds=1, iterations=1
    )

    table = Table(
        "E16: tracker re-linking across pseudonym rotations "
        "(achieved theta-hat, dense request stream)",
        [
            "quiet period s",
            "rotations",
            "theta-hat overall",
            "theta-hat moving",
            "theta-hat stationary",
            "requests silenced",
        ],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    bench_export(
        "e16",
        table.metrics(),
        workload={"quiet_periods": list(QUIET_PERIODS)},
    )

    by_quiet = {row[0]: row for row in rows}
    # A long quiet period makes moving rotations hard to bridge …
    assert by_quiet[3600.0][3] < by_quiet[0.0][3] * 0.6
    # … but cannot hide a dwell anchor: stationary re-linking barely
    # responds to silence.
    assert by_quiet[3600.0][4] > by_quiet[3600.0][3]
    assert by_quiet[3600.0][4] > 0.5 * by_quiet[0.0][4]
    # Silence costs service: suppressed requests grow with the window.
    silenced = [row[5] for row in rows]
    assert silenced == sorted(silenced)
