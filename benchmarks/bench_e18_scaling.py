"""E18 — sharded serving scale-out: capacity, durability, restore.

The sharded stack (``repro.serve.shard`` / ``repro.serve.supervisor``)
against the single-sequencer frontend of E17 measures:

* **single-sequencer capacity** — the E17 capacity-arm methodology,
  replicated within-run: open-loop loadgen over TCP, 8 clients,
  effectively infinite offered rate, requests only, telemetry off.
  This is the per-request cost of the one-dispatcher-one-engine
  architecture: every frame crosses the strict codec, the asyncio
  transport, and the single sequencer queue (clients share the same
  core, as in E17);
* **sharded firehose** — the full mixed timeline (updates + requests)
  through ``ShardRouter.serve_lines``: wire bytes in, wire bytes out,
  fast codec at both boundaries, synchronous per-shard sequencing
  against the shard runtimes.  This is the data-plane capacity with
  the event-loop machinery factored out — the router→worker internal
  hop.  **Gated**: the 4-shard arm must clear ``SCALING_FLOOR`` (10x)
  the single-sequencer capacity arm, and its per-user decision
  streams must equal the offline replay exactly;
* **sharded + WAL** — the firehose with per-shard write-ahead logging
  (``fsync="batch"``): the durability tax.  After the pass, a fresh
  router recovers the WAL directories and must reconstruct every
  shard's state fingerprint byte-equivalently (**gated**);
* **supervised 2x4** — two worker subprocesses over four durable
  shards behind ``WorkerSupervisor``, driven by the verifying loadgen:
  the cross-process path stays decision-equivalent (**gated**;
  throughput informational — on one core the subprocess hop buys
  isolation, not speed).

Both scaling arms are wall-clock measurements on a shared host, so
they are sampled in *paired rounds* — each round measures the
capacity arm and then the firehose back to back, and the gate takes
the best per-round ratio.  A noisy-neighbor window slows both arms of
a round together and cancels out of its ratio; a real regression
drags every round down.  The *ratio floor* is asserted in-test (like
E17's capacity bar) while the exported gated metrics are the
seeded-deterministic decision counts and structural pass/fail
indicators; raw ops/s land in the informational ``latency`` section.
"""

import asyncio
import gc
import time

from repro.experiments.harness import Table
from repro.serve.loadgen import (
    SERVICE,
    LoadgenConfig,
    WorkloadConfig,
    build_workload,
    decision_key,
    offline_replay,
    run_loadgen,
)
from repro.serve.protocol import (
    DecisionReply,
    ErrorReply,
    LocationUpdate,
    ServiceRequest,
    decode_reply_fast,
    encode_frame_fast,
)
from repro.serve.server import ServeConfig
from repro.serve.shard import ShardRouter
from repro.serve.wal import WalConfig

SERVING_WORKLOAD = WorkloadConfig()  # seed 11, 12 commuters, 6 wanderers
WIDE_OPEN = ServeConfig(max_queue_depth=1 << 17, max_inflight=1 << 17)
#: The sharded data plane must serve the mixed timeline at >= 10x the
#: single-sequencer E17 capacity arm (requests/s over TCP).
SCALING_FLOOR = 10.0
#: Paired measurement rounds; the gate takes the best round's ratio.
SCALING_ROUNDS = 3
#: Firehose passes per round (best-of, absorbs scheduler hiccups).
FIREHOSE_PASSES = 3
CAPACITY_REQUESTS = 400
#: Shard counts for the in-process firehose arms (first one is gated).
SHARD_ARMS = (4, 8)
#: Supervised demo shape: 2 worker subprocesses x 4 durable shards.
SUPERVISED_WORKERS, SUPERVISED_SHARDS = 2, 4
SUPERVISED_REQUESTS = 200


def _frames(workload):
    """The full mixed timeline as protocol frames, ids pre-assigned."""
    frames = []
    for index, item in enumerate(workload.timeline, start=1):
        if item.is_request:
            frames.append(
                ServiceRequest(
                    id=index,
                    user_id=item.user_id,
                    x=item.location.x,
                    y=item.location.y,
                    t=item.location.t,
                    service=item.service or SERVICE,
                )
            )
        else:
            frames.append(
                LocationUpdate(
                    id=index,
                    user_id=item.user_id,
                    x=item.location.x,
                    y=item.location.y,
                    t=item.location.t,
                )
            )
    return frames


def _capacity_rps() -> tuple[float, int]:
    """One E17-methodology capacity trial: requests/s, decisions."""
    report = asyncio.run(
        run_loadgen(
            LoadgenConfig(
                workload=SERVING_WORKLOAD,
                serve=WIDE_OPEN,
                requests=CAPACITY_REQUESTS,
                clients=8,
                rate=1e6,
                transport="tcp",
                include_updates=False,
                telemetry_enabled=False,
            )
        )
    )
    assert report.ok, report.to_dict()
    return report.throughput_rps, report.decisions


def _router(workload, n_shards, data_dir=None):
    return ShardRouter(
        workload,
        SERVING_WORKLOAD,
        n_shards=n_shards,
        config=WIDE_OPEN,
        data_dir=data_dir,
        wal_config=WalConfig(fsync="batch"),
    )


def _firehose(workload, lines, users, n_shards, data_dir=None):
    """Serve the pre-encoded timeline through ``serve_lines``.

    Only the batched serve call is timed — reply decoding is the
    harness's bookkeeping, not the server's work.  Returns
    ``(ops_per_s, per-user decision keys, router)``; the router is
    left open so the WAL arm can fingerprint and recover it.
    """
    router = _router(workload, n_shards, data_dir=data_dir)
    max_bytes = WIDE_OPEN.max_frame_bytes
    gc.collect()
    started = time.perf_counter()
    reply_lines = router.serve_lines(lines)
    elapsed = time.perf_counter() - started
    decisions: dict[int, list] = {}
    for user_id, reply_line in zip(users, reply_lines):
        reply = decode_reply_fast(reply_line, max_bytes)
        if type(reply) is DecisionReply:
            decisions.setdefault(user_id, []).append(
                decision_key(reply)
            )
        elif isinstance(reply, ErrorReply):  # pragma: no cover
            raise AssertionError(f"firehose error: {reply}")
    return len(lines) / elapsed, decisions, router


def _scaling_rounds(workload, lines, users, rounds):
    """Paired capacity/firehose rounds for the gated shard arm.

    Per round: one capacity trial, then ``FIREHOSE_PASSES`` firehose
    passes (best kept).  Returns the per-round records and the best
    per-round ratio — the number the floor gates.
    """
    records = []
    for _ in range(rounds):
        capacity, capacity_decisions = _capacity_rps()
        best_ops, decisions = 0.0, None
        for _pass in range(FIREHOSE_PASSES):
            ops, pass_decisions, _fh_router = _firehose(
                workload, lines, users, SHARD_ARMS[0]
            )
            if ops > best_ops:
                best_ops = ops
            decisions = pass_decisions
        records.append(
            {
                "capacity_rps": capacity,
                "capacity_decisions": capacity_decisions,
                "firehose_ops": best_ops,
                "ratio": best_ops / capacity,
                "decisions": decisions,
            }
        )
    return records, max(r["ratio"] for r in records)


def _socket_fanout_report(workload):
    """Requests-only loadgen against the router *over real sockets*.

    The gated firehose arm times the router data plane at the NDJSON
    line boundary; this arm closes the ROADMAP follow-on by timing the
    identical router behind a :class:`TcpTransport` — strict codec,
    asyncio streams, per-connection handler tasks — with the E17
    capacity-arm client shape.  On one core the event loop is shared
    by all 8 clients and the router, so the ratio to the single
    sequencer is *informational* (the 10x floor is a data-plane
    property); what is asserted is cleanliness: every request crosses
    the socket and comes back a decision.
    """

    async def run():
        router = _router(workload, SHARD_ARMS[0])
        await router.start()
        try:
            return await run_loadgen(
                LoadgenConfig(
                    workload=SERVING_WORKLOAD,
                    serve=WIDE_OPEN,
                    requests=CAPACITY_REQUESTS,
                    clients=8,
                    rate=1e6,
                    transport="tcp",
                    include_updates=False,
                    telemetry_enabled=False,
                ),
                server=router,
            )
        finally:
            await router.close()

    return asyncio.run(run())


def _supervised_report(tmp_path, daemon_path):
    """Verifying loadgen pass against a 2x4 subprocess fleet."""

    async def run():
        from repro.serve.supervisor import WorkerSupervisor

        supervisor = WorkerSupervisor(
            SUPERVISED_WORKERS,
            SUPERVISED_SHARDS,
            tmp_path,
            config=WIDE_OPEN,
            worker_args=[
                "--seed", str(SERVING_WORKLOAD.seed),
                "--max-queue-depth", str(WIDE_OPEN.max_queue_depth),
                "--max-inflight", str(WIDE_OPEN.max_inflight),
            ],
            daemon_path=daemon_path,
        )
        await supervisor.start()
        try:
            return await run_loadgen(
                LoadgenConfig(
                    workload=SERVING_WORKLOAD,
                    serve=WIDE_OPEN,
                    requests=SUPERVISED_REQUESTS,
                    clients=4,
                    rate=1e6,
                    transport="loopback",
                    verify=True,
                    telemetry_enabled=False,
                ),
                server=supervisor,
            )
        finally:
            await supervisor.close()

    return asyncio.run(run())


def run_e18(tmp_path, daemon_path):
    workload = build_workload(SERVING_WORKLOAD)
    frames = _frames(workload)
    max_bytes = WIDE_OPEN.max_frame_bytes
    lines = [encode_frame_fast(f, max_bytes) for f in frames]
    users = [f.user_id for f in frames]
    offline: dict[int, list] = {}
    for event in offline_replay(workload, SERVING_WORKLOAD):
        offline.setdefault(event.request.user_id, []).append(
            decision_key(event)
        )
    n_requests = sum(1 for f in frames if type(f) is ServiceRequest)

    rounds, ratio = _scaling_rounds(
        workload, lines, users, SCALING_ROUNDS
    )
    if ratio < SCALING_FLOOR:
        # Two extra paired rounds before failing: a whole-run noise
        # burst gets fresh windows; a real regression fails again.
        retry, retry_ratio = _scaling_rounds(workload, lines, users, 2)
        rounds.extend(retry)
        ratio = max(ratio, retry_ratio)
    best_round = max(rounds, key=lambda r: r["ratio"])
    sharded = {SHARD_ARMS[0]: best_round["firehose_ops"]}
    sharded_decisions = rounds[0]["decisions"]
    single_rps = best_round["capacity_rps"]
    single_decisions = rounds[0]["capacity_decisions"]
    for n_shards in SHARD_ARMS[1:]:  # informational wider arm
        ops, _decisions, _fh_router = _firehose(
            workload, lines, users, n_shards
        )
        sharded[n_shards] = ops

    # Durability arm: same firehose with the WAL on, then a cold
    # restart must replay every shard back to the same fingerprint.
    wal_dir = tmp_path / "wal-arm"
    wal_ops, _, wal_router = _firehose(
        workload, lines, users, SHARD_ARMS[0], data_dir=wal_dir
    )
    fingerprints = {
        shard_id: sequencer.runtime.fingerprint()
        for shard_id, sequencer in wal_router.sequencers.items()
    }
    for sequencer in wal_router.sequencers.values():
        sequencer.runtime.close()
    restored = _router(workload, SHARD_ARMS[0], data_dir=wal_dir)
    restore_equal = all(
        restored.sequencers[shard_id].runtime.fingerprint() == expected
        for shard_id, expected in fingerprints.items()
    )
    replayed = sum(
        sequencer.runtime.replayed
        for sequencer in restored.sequencers.values()
    )
    for sequencer in restored.sequencers.values():
        sequencer.runtime.close()

    socket_fanout = _socket_fanout_report(workload)

    supervised = _supervised_report(
        tmp_path / "supervised", daemon_path
    )
    return {
        "socket_fanout": socket_fanout,
        "frames": len(frames),
        "requests": n_requests,
        "rounds": rounds,
        "single_rps": single_rps,
        "single_decisions": single_decisions,
        "sharded": sharded,
        "sharded_decisions": sharded_decisions,
        "offline": offline,
        "ratio": ratio,
        "wal_ops": wal_ops,
        "restore_equal": restore_equal,
        "replayed": replayed,
        "supervised": supervised,
    }


def test_e18_scaling(benchmark, bench_export, tmp_path):
    import pathlib

    daemon = (
        pathlib.Path(__file__).resolve().parents[1]
        / "tools"
        / "serve_daemon.py"
    )
    result = benchmark.pedantic(
        run_e18, args=(tmp_path, daemon), rounds=1, iterations=1
    )
    single_rps = result["single_rps"]
    sharded = result["sharded"]
    supervised = result["supervised"]

    table = Table(
        "E18: sharded serving scale-out (ops/s; single arm is req/s)",
        ["arm", "shards", "ops/s", "vs single", "durable"],
    )
    table.add_row(
        ("single-sequencer", 1, round(single_rps), 1.0, "-")
    )
    for n_shards, ops in sorted(sharded.items()):
        table.add_row(
            (
                "sharded-firehose",
                n_shards,
                round(ops),
                round(ops / single_rps, 1),
                "-",
            )
        )
    table.add_row(
        (
            "sharded-wal",
            SHARD_ARMS[0],
            round(result["wal_ops"]),
            round(result["wal_ops"] / single_rps, 1),
            "fsync=batch",
        )
    )
    socket_fanout = result["socket_fanout"]
    table.add_row(
        (
            "socket-fanout",
            SHARD_ARMS[0],
            round(socket_fanout.throughput_rps),
            round(socket_fanout.throughput_rps / single_rps, 1),
            "-",
        )
    )
    table.add_row(
        (
            "supervised-2x4",
            SUPERVISED_SHARDS,
            round(supervised.throughput_rps),
            "-",
            "fsync=batch",
        )
    )
    table.print()

    decisions_match = result["sharded_decisions"] == result["offline"]
    metrics = {
        "single_decisions": float(result["single_decisions"]),
        "sharded_decision_users": float(
            len(result["sharded_decisions"])
        ),
        "sharded_decisions_match_offline": (
            1.0 if decisions_match else 0.0
        ),
        "scaling_floor_met": (
            1.0 if result["ratio"] >= SCALING_FLOOR else 0.0
        ),
        "wal_restore_equal": 1.0 if result["restore_equal"] else 0.0,
        "wal_replayed_ops": float(result["replayed"]),
        "supervised_verified": (
            1.0 if supervised.verified else 0.0
        ),
        "supervised_mismatches": float(supervised.mismatches),
        "socket_fanout_clean": 1.0 if socket_fanout.ok else 0.0,
        "socket_fanout_decisions": float(socket_fanout.decisions),
    }
    latency = {
        "serve.scaling_ops_per_s": {
            "single_sequencer_rps": single_rps,
            **{
                f"sharded_{n}": ops
                for n, ops in sorted(sharded.items())
            },
            "sharded_wal": result["wal_ops"],
            "socket_fanout": socket_fanout.throughput_rps,
            "supervised_2x4": supervised.throughput_rps,
        },
        "serve.scaling_ratio": {
            "sharded_over_single": result["ratio"],
            "wal_over_single": result["wal_ops"] / single_rps,
            "socket_fanout_over_single": (
                socket_fanout.throughput_rps / single_rps
            ),
            "floor": SCALING_FLOOR,
        },
        "serve.scaling_rounds": {
            f"round{i}_{name}": r[name]
            for i, r in enumerate(result["rounds"])
            for name in ("capacity_rps", "firehose_ops", "ratio")
        },
    }
    bench_export(
        "e18",
        metrics,
        workload={
            "serving_seed": SERVING_WORKLOAD.seed,
            "serving_commuters": SERVING_WORKLOAD.n_commuters,
            "serving_wanderers": SERVING_WORKLOAD.n_wanderers,
            "serving_days": SERVING_WORKLOAD.days,
            "timeline_frames": result["frames"],
            "timeline_requests": result["requests"],
            "capacity_requests": CAPACITY_REQUESTS,
            "scaling_rounds": SCALING_ROUNDS,
            "shard_arms": list(SHARD_ARMS),
            "supervised_shape": (
                f"{SUPERVISED_WORKERS}x{SUPERVISED_SHARDS}"
            ),
        },
        latency=latency,
    )

    # The scale-out bar: the sharded data plane serves the mixed
    # timeline at >= 10x the single-sequencer E17 capacity arm.
    assert result["ratio"] >= SCALING_FLOOR, (
        result["ratio"],
        result["rounds"],
    )
    # Scale-out must not cost fidelity: the sharded per-user decision
    # streams equal the offline replay exactly.
    assert decisions_match
    # Durability: a cold restart replays every shard back to the same
    # state fingerprint, and the WAL arm actually logged the timeline.
    assert result["restore_equal"]
    assert result["replayed"] == result["frames"]
    # The cross-process fleet serves the same decisions.
    assert supervised.ok, supervised.to_dict()
    assert supervised.verified is True
    assert supervised.mismatches == 0
    # The socket-to-socket router arm is clean end to end: every
    # request crossed the TCP frontend and earned a decision (its
    # speedup ratio is informational on a one-core host).
    assert socket_fanout.ok, socket_fanout.to_dict()
    assert socket_fanout.decisions == CAPACITY_REQUESTS
