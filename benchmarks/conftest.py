"""Shared workloads for the benchmark harness.

Cities are cached at session scope; benchmarks must not mutate them.
Every benchmark prints the table recorded in EXPERIMENTS.md in addition
to pytest-benchmark's timing output.
"""

from __future__ import annotations

import pytest

from repro.mobility.population import CityConfig, SyntheticCity


@pytest.fixture(scope="session")
def bench_city():
    """The standard benchmark city: 100 commuters, 40 wanderers, 14 days."""
    return SyntheticCity.generate(CityConfig(seed=7))


@pytest.fixture(scope="session")
def bench_city_lbqids(bench_city):
    return {c.user_id: [c.lbqid()] for c in bench_city.commuters}
