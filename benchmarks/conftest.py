"""Shared workloads and artifact export for the benchmark harness.

Cities are cached at session scope; benchmarks must not mutate them.
Every benchmark prints the table recorded in EXPERIMENTS.md in addition
to pytest-benchmark's timing output, and exports a ``BENCH_<exp>.json``
regression artifact through the :func:`bench_export` fixture when
``REPRO_BENCH_DIR`` is set (see ``tools/bench_gate.py``).

Two workload modes, selected by the ``REPRO_BENCH_SMOKE`` environment
variable:

* full (default) — the standard city: 100 commuters, 40 wanderers,
  14 days.  Baselines live in ``benchmarks/baselines/``;
* smoke (``REPRO_BENCH_SMOKE=1``) — a downsized city (30 commuters,
  12 wanderers, still 14 days so the ``3.Weekdays * 2.Weeks``
  recurrence can complete).  This is what CI runs on every push;
  baselines live in ``benchmarks/baselines/smoke/``.

The mode is part of every artifact's workload fingerprint, so the gate
never compares a smoke run against a full baseline.
"""

from __future__ import annotations

import os

import pytest

from repro.mobility.population import CityConfig, SyntheticCity
from repro.obs.bench import export_bench

BENCH_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

_FULL_CITY = CityConfig(seed=7)
_SMOKE_CITY = CityConfig(seed=7, n_commuters=30, n_wanderers=12)


def bench_city_config() -> CityConfig:
    """The active mode's city parameters."""
    return _SMOKE_CITY if BENCH_SMOKE else _FULL_CITY


def city_fingerprint() -> dict[str, object]:
    """The workload identity stamped into every exported artifact."""
    config = bench_city_config()
    return {
        "mode": "smoke" if BENCH_SMOKE else "full",
        "seed": config.seed,
        "n_commuters": config.n_commuters,
        "n_wanderers": config.n_wanderers,
        "days": config.days,
    }


@pytest.fixture(scope="session")
def bench_city():
    """The benchmark city for the active mode (full or smoke)."""
    return SyntheticCity.generate(bench_city_config())


@pytest.fixture(scope="session")
def bench_city_lbqids(bench_city):
    return {c.user_id: [c.lbqid()] for c in bench_city.commuters}


@pytest.fixture(scope="session")
def bench_export():
    """Callable writing one ``BENCH_<exp>.json`` per benchmark.

    ``bench_export(exp, metrics, snapshot=..., workload=...,
    latency=...)`` — metrics are usually ``table.metrics()`` so the
    gated numbers are exactly the printed table.  The city fingerprint
    is merged under the driver's own ``workload`` keys.  No-op unless
    ``REPRO_BENCH_DIR`` is set.
    """

    def _export(
        experiment,
        metrics,
        snapshot=None,
        workload=None,
        latency=None,
    ):
        return export_bench(
            experiment,
            metrics,
            snapshot=snapshot,
            workload={**city_fingerprint(), **(workload or {})},
            latency=latency,
        )

    return _export
