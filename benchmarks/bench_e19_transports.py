"""E19 — the hardened multi-transport frontend: TLS, auth, HTTP.

Every arm drives the identical serving workload through the identical
:class:`~repro.serve.server.TrustedServer`; what varies is the frontend
in front of it (``repro.serve.gate`` + ``repro.serve.transports`` /
``repro.serve.http``):

* **plain-gated vs TLS-gated** — the cost of the crypto, isolated: both
  arms authenticate with the same bearer token through the same
  :class:`~repro.serve.gate.ConnectionGate`, so the only delta is the
  stdlib ``ssl`` layer under the NDJSON codec.  **Gated**: TLS must
  keep >= 70% of plaintext throughput.  As in E17, the bound is
  measured as the median per-round ratio of process CPU times over
  interleaved passes (at saturation, throughput is 1/CPU-per-op, and
  the within-round ratio cancels scheduler drift that a wall-clock
  comparison would swallow whole);
* **TLS steady, verified** — the E17 steady arm over TLS + token: the
  served per-user decision streams must equal the offline
  ``Engine.process_batch`` replay exactly, nothing shed, nothing
  rejected — the hardening layers are decision-invariant (**gated**);
* **HTTP(S)-gated** — the same codec as NDJSON bodies over HTTP/1.1
  (``POST /v1/frame``, keep-alive, batched client): throughput is
  informational (the per-request framing tax is the point of showing
  it), cleanliness and decision count are asserted;
* **rejection probes** — an unauthenticated client and an over-rate
  client against a gated TLS frontend: both must be refused with typed
  errors (``bad_token``, ``rate_limited`` + sufficient
  ``retry_after``), counted in the gate's ``gate.*`` mirrors, and —
  the hardening contract — *before* the sequencer: the server's
  ``served`` counter must account for exactly the admitted
  operations (**gated**).

The dev certificate is generated in-run by ``tools/gen_dev_cert.py``
(the same generator CI uses), so the benchmark needs no checked-in key
material.
"""

import asyncio
import gc
import importlib.util
import pathlib
import time

from repro.experiments.harness import Table
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.gate import ConnectionGate, GateConfig
from repro.serve.loadgen import (
    LoadgenConfig,
    WorkloadConfig,
    build_engine,
    build_workload,
    run_loadgen,
)
from repro.serve.protocol import ErrorReply, LocationUpdate
from repro.serve.server import ServeConfig, TrustedServer
from repro.serve.transports import (
    TcpTransport,
    client_ssl_context,
    server_ssl_context,
)

from benchmarks.conftest import BENCH_SMOKE

SERVING_WORKLOAD = WorkloadConfig()  # seed 11, 12 commuters, 6 wanderers
#: Small city for the rejection probes — they exercise the gate, not
#: the engine, so the workload only needs to exist.
PROBE_WORKLOAD = WorkloadConfig(n_commuters=4, n_wanderers=2, days=2)
STEADY_REQUESTS = 300 if BENCH_SMOKE else 1200
#: The paired CPU trials always run full length (see E17: short passes
#: put per-pass fixed costs at ~±4% noise each — too wide for the bound).
TRIAL_REQUESTS = 1200
TRIAL_ROUNDS = 5
HTTP_REQUESTS = 300 if BENCH_SMOKE else 1200
#: TLS must keep >= 70% of plaintext throughput, i.e. at most 1/0.7x
#: the plaintext CPU per operation.
TLS_BUDGET = 1.0 / 0.7
TOKEN = "e19-bench-token"
#: Rejection-probe rate limit: tiny burst so an immediate burst of
#: ``PROBE_BURST`` operations must trip the bucket.
PROBE_RATE, PROBE_BURST = 5.0, 10

WIDE_OPEN = ServeConfig(max_queue_depth=1 << 17, max_inflight=1 << 17)


def _dev_cert(out_dir) -> "tuple[str, str]":
    """Generate the self-signed dev pair with the CI generator."""
    path = (
        pathlib.Path(__file__).resolve().parents[1]
        / "tools"
        / "gen_dev_cert.py"
    )
    spec = importlib.util.spec_from_file_location("gen_dev_cert", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.generate_dev_cert(str(out_dir))


def _arm_config(transport, cert, key, **overrides) -> LoadgenConfig:
    """One gated arm: same token, same gate, transport varies."""
    defaults = dict(
        workload=SERVING_WORKLOAD,
        serve=WIDE_OPEN,
        requests=TRIAL_REQUESTS,
        clients=8,
        rate=20_000.0,
        transport=transport,
        token=TOKEN,
        gate=GateConfig(tokens=(TOKEN,)),
        telemetry_enabled=False,
    )
    if transport in ("tls", "http"):
        defaults.update(tls_cert=cert, tls_key=key)
    defaults.update(overrides)
    return LoadgenConfig(**defaults)


def _transport_trials(cert, key, rounds: int = TRIAL_ROUNDS):
    """Interleaved plain/TLS passes; the TLS tax as a median CPU ratio.

    Per round the plaintext-gated pass and the TLS-gated pass run back
    to back; the gated quantity is the median across rounds of the
    within-round ``tls_cpu / plain_cpu`` ratio (the noise-robust
    estimator of the throughput ratio, see the module doc and E17's
    ``_overhead_trials``).  Returns ``(best, ratio)``: the per-arm best
    pass by throughput and the median ratio.
    """
    arms = {"plain": "tcp", "tls": "tls"}

    def measured(config):
        gc.collect()
        gc.disable()
        try:
            cpu0 = time.process_time()
            report = asyncio.run(run_loadgen(config))
            return report, time.process_time() - cpu0
        finally:
            gc.enable()

    best = {name: None for name in arms}
    cpus = {name: [] for name in arms}
    for _ in range(rounds):
        for name, transport in arms.items():
            report, cpu = measured(
                _arm_config(transport, cert, key)
            )
            assert report.ok, (name, report.to_dict())
            cpus[name].append(cpu)
            if (
                best[name] is None
                or report.throughput_rps > best[name].throughput_rps
            ):
                best[name] = report
    ratio = sorted(
        tls_cpu / plain_cpu
        for tls_cpu, plain_cpu in zip(cpus["tls"], cpus["plain"])
    )[rounds // 2]
    return best, ratio


def _rejection_probes(cert, key):
    """Unauthenticated and over-rate clients against a gated TLS door.

    Returns the probe record the gate assertions read: the two typed
    rejections, the gate's plain-int counters, and the server's
    ``served`` tally next to the gate's admitted-op tally — equality is
    the "rejections never touch a sequencer" contract, counted rather
    than asserted by construction.
    """

    async def run():
        workload = build_workload(PROBE_WORKLOAD, max_requests=4)
        engine = build_engine(workload, PROBE_WORKLOAD)
        server = TrustedServer(engine, ServeConfig())
        await server.start()
        gate = ConnectionGate(
            GateConfig(
                tokens=(TOKEN,),
                rate_limit=PROBE_RATE,
                burst=2.0,
            )
        )
        transport = TcpTransport(
            server,
            ssl_context=server_ssl_context(cert, key),
            gate=gate,
        )
        host, port = await transport.start()
        ctx = client_ssl_context(cert)
        record = {}
        client = None
        try:
            # Probe 1: a wrong token is refused at the hello with a
            # typed reply, before any session exists.
            try:
                await ServeClient.connect(
                    host, port, ssl=ctx, token="not-the-token"
                )
                record["bad_token"] = None
            except ServeClientError as exc:
                record["bad_token"] = exc.reply

            # Probe 2: an authenticated client bursting past its
            # bucket gets rate_limited with a sufficient retry_after.
            client = await ServeClient.connect(
                host, port, ssl=ctx, token=TOKEN
            )
            user_id = workload.user_ids[0]
            sample = workload.per_user[user_id][0].location
            replies = await asyncio.gather(
                *(
                    client.post(
                        LocationUpdate(
                            id=index + 1,
                            user_id=user_id,
                            x=sample.x,
                            y=sample.y,
                            t=sample.t,
                        )
                    )
                    for index in range(PROBE_BURST)
                )
            )
            limited = [
                reply
                for reply in replies
                if isinstance(reply, ErrorReply)
                and reply.code == "rate_limited"
            ]
            record["rate_limited"] = limited[0] if limited else None
            record["burst_admitted"] = PROBE_BURST - len(limited)
            record["burst_limited"] = len(limited)
            record["served"] = server.served
            record["gate_admitted_ops"] = gate.admitted_ops
            record["gate_admitted_connections"] = (
                gate.admitted_connections
            )
            record["gate_rejected"] = dict(gate.rejected)
        finally:
            if client is not None:
                await client.close()
            await transport.stop()
            await server.close()
        return record

    return asyncio.run(run())


def run_e19(tmp_path):
    cert, key = _dev_cert(tmp_path / "certs")

    best, tls_ratio = _transport_trials(cert, key)
    if tls_ratio > TLS_BUDGET:
        # One bad scheduling window can push a five-round median past
        # the budget; a real regression breaches two independent trial
        # blocks (the E17 retry idiom).
        best_retry, ratio_retry = _transport_trials(cert, key)
        tls_ratio = min(tls_ratio, ratio_retry)
        for name, report in best_retry.items():
            if report.throughput_rps > best[name].throughput_rps:
                best[name] = report

    steady = asyncio.run(
        run_loadgen(
            _arm_config(
                "tls",
                cert,
                key,
                requests=STEADY_REQUESTS,
                verify=True,
                telemetry_enabled=True,
            )
        )
    )
    http = asyncio.run(
        run_loadgen(
            _arm_config(
                "http",
                cert,
                key,
                requests=HTTP_REQUESTS,
                rate=1e6,
                include_updates=False,
            )
        )
    )
    probes = _rejection_probes(cert, key)
    return {
        "plain": best["plain"],
        "tls": best["tls"],
        "tls_ratio": tls_ratio,
        "steady": steady,
        "http": http,
        "probes": probes,
    }


def test_e19_transports(benchmark, bench_export, tmp_path):
    result = benchmark.pedantic(
        run_e19, args=(tmp_path,), rounds=1, iterations=1
    )
    plain, tls = result["plain"], result["tls"]
    steady, http = result["steady"], result["http"]
    probes = result["probes"]
    tls_ratio = result["tls_ratio"]

    table = Table(
        "E19: multi-transport frontend (gated arms share one token)",
        [
            "arm",
            "transport",
            "requests",
            "decisions",
            "req/s",
            "vs plain",
            "verified",
        ],
    )
    for name, transport, report in (
        ("plain-gated", "tcp", plain),
        ("tls-gated", "tls", tls),
        ("tls-steady", "tls", steady),
        ("http-gated", "https", http),
    ):
        table.add_row(
            (
                name,
                transport,
                report.requests_sent,
                report.decisions,
                round(report.throughput_rps),
                (
                    round(
                        report.throughput_rps / plain.throughput_rps,
                        2,
                    )
                    if plain.throughput_rps > 0
                    else "-"
                ),
                {True: 1, False: 0, None: "-"}[report.verified],
            )
        )
    table.print()

    bad_token = probes["bad_token"]
    rate_limited = probes["rate_limited"]
    metrics = {
        "steady_requests": float(STEADY_REQUESTS),
        "tls_steady_verified": 1.0 if steady.verified else 0.0,
        "tls_steady_mismatches": float(steady.mismatches),
        "tls_steady_shed": float(steady.shed),
        "tls_within_budget": (
            1.0 if tls_ratio <= TLS_BUDGET else 0.0
        ),
        "http_clean": 1.0 if http.ok else 0.0,
        "http_decisions": float(http.decisions),
        "probe_bad_token_typed": (
            1.0
            if bad_token is not None and bad_token.code == "bad_token"
            else 0.0
        ),
        "probe_rate_limited_typed": (
            1.0
            if rate_limited is not None
            and (rate_limited.retry_after or 0.0) > 0.0
            else 0.0
        ),
        "probe_rejections_pre_sequencer": (
            1.0
            if probes["served"] == probes["gate_admitted_ops"]
            else 0.0
        ),
        "probe_burst_limited": float(probes["burst_limited"]),
        "probe_gate_bad_token": float(
            probes["gate_rejected"].get("bad_token", 0)
        ),
        "probe_gate_rate_limited": float(
            probes["gate_rejected"].get("rate_limited", 0)
        ),
    }
    for decision, count in sorted(steady.decision_counts.items()):
        metrics[f"tls_steady_decisions_{decision}"] = float(count)
    latency = {
        "serve.transport_rps": {
            "plain_gated_best": plain.throughput_rps,
            "tls_gated_best": tls.throughput_rps,
            "tls_steady": steady.throughput_rps,
            "http_gated": http.throughput_rps,
        },
        "serve.tls_overhead": {
            "cpu_tls_over_plain": tls_ratio,
            "budget": TLS_BUDGET,
            "tls_over_plain_rps": (
                tls.throughput_rps / plain.throughput_rps
                if plain.throughput_rps > 0
                else 0.0
            ),
            "http_over_plain_rps": (
                http.throughput_rps / plain.throughput_rps
                if plain.throughput_rps > 0
                else 0.0
            ),
        },
        "serve.tls_steady_latency_ms": {
            "p50": steady.latency_ms.get("p50", 0.0),
            "p95": steady.latency_ms.get("p95", 0.0),
            "p99": steady.latency_ms.get("p99", 0.0),
        },
    }
    bench_export(
        "e19",
        metrics,
        workload={
            "serving_seed": SERVING_WORKLOAD.seed,
            "serving_commuters": SERVING_WORKLOAD.n_commuters,
            "serving_wanderers": SERVING_WORKLOAD.n_wanderers,
            "serving_days": SERVING_WORKLOAD.days,
            "steady_requests": STEADY_REQUESTS,
            "trial_requests": TRIAL_REQUESTS,
            "trial_rounds": TRIAL_ROUNDS,
            "http_requests": HTTP_REQUESTS,
        },
        latency=latency,
    )

    # The hardening bar: TLS keeps >= 70% of plaintext throughput —
    # i.e. at most 1/0.7x the plaintext CPU per operation, measured as
    # the median of within-round CPU ratios over interleaved passes.
    assert tls_ratio <= TLS_BUDGET, (
        tls_ratio,
        tls.throughput_rps,
        plain.throughput_rps,
    )
    # Hardening must be decision-invariant: the TLS+token steady arm
    # verifies against the offline replay exactly, sheds nothing, and
    # its gate admitted every client and rejected nobody.
    assert steady.verified is True and steady.mismatches == 0
    assert steady.shed == 0 and steady.ok
    assert steady.gate is not None
    assert steady.gate.admitted_connections == 8
    assert steady.gate.rejected == {}
    # The HTTP binding serves the same decisions, cleanly.
    assert http.ok, http.to_dict()
    assert http.decisions == HTTP_REQUESTS
    # Rejection probes: typed refusals with actionable hints...
    assert bad_token is not None and bad_token.code == "bad_token"
    assert rate_limited is not None
    assert rate_limited.code == "rate_limited"
    assert (rate_limited.retry_after or 0.0) > 0.0
    assert probes["burst_limited"] > 0
    # ...counted in the gate's plain-int mirrors...
    assert probes["gate_rejected"].get("bad_token", 0) >= 1
    assert probes["gate_rejected"].get("rate_limited", 0) == (
        probes["burst_limited"]
    )
    assert probes["gate_admitted_connections"] == 1
    # ...and refused *before* the sequencer: the server served exactly
    # the operations the gate admitted, nothing more.
    assert probes["served"] == probes["gate_admitted_ops"]
