"""E8 — mix-zone effectiveness: achieved unlinking likelihood Θ.

Reproduces: Section 6.3's use of mix-zones as the Unlinking primitive
([1, 2]) and the on-demand variant the paper proposes ("finding, given a
specific point in space, k diverging trajectories … sufficiently close
to the point").

Part a (static zones): users cross a central zone; the attacker plays
the optimal entry/exit re-association game.  The attacker's accuracy is
the achieved Θ̂ — sweep how it falls as more users cross together
(mixing needs company) and as the zone grows (longer, more variable
dwell times).

Part b (on-demand zones): sweep the formation radius and required k and
report how often a mix-zone can be formed at random request points in
the benchmark city — the availability knob that E4 showed governs
suppression.
"""

import numpy as np

from repro.core.phl import PersonalHistory
from repro.experiments.harness import Table
from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.mixzone.on_demand import OnDemandMixZone
from repro.mixzone.zones import MixZone, zone_attack_accuracy

RATES = (0.5, 2.0, 8.0)  # crossings entering per minute
ZONE_SIDES = (100.0, 300.0)


def _crossing_histories(n_users, rate_per_minute, zone_side, rng):
    """Straight traversals through a central zone, Poisson-staggered."""
    histories = []
    t = 0.0
    for user_id in range(n_users):
        t += rng.exponential(60.0 / rate_per_minute)
        speed = rng.uniform(1.0, 2.5)
        y = 500.0 + rng.uniform(-zone_side / 2, zone_side / 2)
        points = [
            STPoint(x, y, t + x / speed) for x in np.arange(0, 1001, 25.0)
        ]
        histories.append(PersonalHistory(user_id, points))
    return histories


def run_e8a():
    rng = np.random.default_rng(13)
    rows = []
    for zone_side in ZONE_SIDES:
        zone = MixZone(
            Rect(
                500 - zone_side / 2,
                500 - zone_side / 2,
                500 + zone_side / 2,
                500 + zone_side / 2,
            )
        )
        for rate in RATES:
            histories = _crossing_histories(60, rate, zone_side, rng)
            result = zone_attack_accuracy(
                zone, histories, batch_window=900.0, expected_speed=1.75
            )
            rows.append(
                (
                    zone_side,
                    rate,
                    result.crossings,
                    result.accuracy,
                    result.effective_anonymity,
                )
            )
    return rows


def run_e8b(city):
    rng = np.random.default_rng(29)
    rows = []
    samples = [
        (user_id, point)
        for user_id in city.store.user_ids()
        for point in list(city.store.history(user_id))[::37]
    ]
    picks = [
        samples[i]
        for i in rng.choice(len(samples), size=300, replace=False)
    ]
    for k in (2, 3, 5):
        for radius in (150.0, 300.0, 600.0):
            zone = OnDemandMixZone(
                city.store, k=k, radius=radius, staleness=1200.0
            )
            outcomes = [
                zone.attempt_unlink(user_id, point)
                for user_id, point in picks
            ]
            successes = [o for o in outcomes if o.success]
            rows.append(
                (
                    k,
                    radius,
                    len(successes) / len(outcomes),
                    (
                        sum(o.theta for o in successes) / len(successes)
                        if successes
                        else float("nan")
                    ),
                )
            )
    return rows


def test_e8a_static_zone_game(benchmark, bench_export):
    rows = benchmark.pedantic(run_e8a, rounds=1, iterations=1)
    table = Table(
        "E8a: static mix-zone, attacker re-association accuracy "
        "(60 crossings each)",
        [
            "zone side m",
            "arrivals/min",
            "crossings",
            "attacker accuracy",
            "effective anonymity",
        ],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    bench_export(
        "e8a",
        table.metrics(key_columns=2),
        workload={"rates": list(RATES), "zone_sides": list(ZONE_SIDES)},
    )

    by_cell = {(r[0], r[1]): r for r in rows}
    for zone_side in ZONE_SIDES:
        accuracies = [by_cell[(zone_side, rate)][3] for rate in RATES]
        # Busier zones mix better (accuracy falls with arrival rate).
        assert accuracies == sorted(accuracies, reverse=True)
        # A lonely trickle is mostly re-associated; a crowd is not.
        assert accuracies[0] > 0.7
        assert accuracies[-1] < 0.6


def test_e8b_on_demand_formation(benchmark, bench_city, bench_export):
    rows = benchmark.pedantic(
        run_e8b, args=(bench_city,), rounds=1, iterations=1
    )
    table = Table(
        "E8b: on-demand mix-zone formation in the benchmark city "
        "(300 random request points)",
        ["k", "radius m", "formation rate", "mean achieved theta"],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    bench_export("e8b", table.metrics(key_columns=2))

    by_cell = {(r[0], r[1]): r for r in rows}
    for k in (2, 3, 5):
        # Wider search radius -> easier formation.
        formation = [by_cell[(k, radius)][2] for radius in
                     (150.0, 300.0, 600.0)]
        assert formation == sorted(formation)
    for radius in (150.0, 300.0, 600.0):
        # Stricter k -> harder formation.
        formation = [by_cell[(k, radius)][2] for k in (2, 3, 5)]
        assert formation == sorted(formation, reverse=True)
