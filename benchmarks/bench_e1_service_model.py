"""E1 — the anonymous service model end to end (Figure 1, Section 3).

Reproduces: the paper's only figure, the users -> Trusted Server ->
Service Providers architecture, as a runnable system.  The table shows
one simulated fortnight of a city flowing through the pipeline: every
request is answered or accounted for, pseudonyms hide identities, and
the TS generalizes exactly the requests that advance an LBQID.
"""

from repro.core.anonymizer import Decision
from repro.core.unlinking import AlwaysUnlink
from repro.experiments.harness import Table
from repro.experiments.workloads import make_policy
from repro.metrics.qos import qos_summary
from repro.ts.simulation import LBSSimulation


def run_e1(city):
    simulation = LBSSimulation(
        city,
        policy=make_policy(k=5),
        unlinker=AlwaysUnlink(),
        seed=97,
    )
    return simulation.run()


def test_e1_service_model(benchmark, bench_city, bench_export):
    report = benchmark.pedantic(
        run_e1, args=(bench_city,), rounds=1, iterations=1
    )

    counts = report.decision_counts()
    provider = report.providers["poi"]
    qos = qos_summary(report.events)

    table = Table(
        "E1: service-model run (100 commuters + 40 wanderers, 14 days)",
        ["metric", "value"],
    )
    table.add_row(["location updates ingested", report.location_updates])
    table.add_row(["service requests issued", report.requests_issued])
    for decision in Decision:
        table.add_row([f"decision: {decision.value}", counts[decision]])
    table.add_row(["requests answered by SP", provider.request_count])
    table.add_row(
        ["distinct pseudonyms seen by SP", len(provider.pseudonyms_seen())]
    )
    table.add_row(
        ["mean generalized width (m)", round(qos.mean_width_m, 1)]
    )
    table.add_row(
        ["mean generalized interval (s)", round(qos.mean_duration_s, 1)]
    )
    table.print()
    bench_export("e1", table.metrics(), workload={"k": 5})

    # The model works end to end: everything forwarded was answered,
    # identities never crossed the trust boundary.
    forwarded = sum(1 for e in report.events if e.forwarded)
    assert provider.request_count == forwarded
    assert counts[Decision.GENERALIZED] > 0
    assert len(provider.pseudonyms_seen()) >= len(bench_city.commuters)
