"""E5 — the k' heuristic and the anonymity-set-scope ablation.

Reproduces two Section 6.2 design points left open by the sketched
Algorithm 1 (see DESIGN.md):

1. **k' schedule** — "if we want to ensure historical k-anonymity, we
   should probably use an initial parameter k' larger than k … starting
   with a larger k' and decreasing its value at each point in the trace
   should increase the probability to maintain historical k-anonymity
   for longer traces."  The sweep varies k' at fixed k and reports how
   many traces keep Definition 8 alive to the end, and at what QoS cost
   (larger early boxes).
2. **anonymity-set scope** — reselecting the k users per observation
   (the literal reading of Algorithm 1's signature) vs. keeping one set
   per LBQID (the reading under which Theorem 1 holds).  The per-
   observation variant produces smaller boxes but collapses the
   anonymity of the *union* of contexts.
"""

import statistics

from repro.core.anonymizer import AnonymitySetScope
from repro.core.unlinking import NeverUnlink
from repro.experiments.harness import Table
from repro.experiments.workloads import run_protected
from repro.metrics.anonymity import historical_k_per_user
from repro.metrics.qos import qos_summary

K = 5
KPRIME = (None, 8, 12, 16)


def run_e5_kprime(city):
    rows = []
    for k_prime in KPRIME:
        report = run_protected(
            city,
            k=K,
            k_prime_initial=k_prime,
            k_prime_decrement=2,
            unlinker=NeverUnlink(),
            seed=97,
        )
        achieved = historical_k_per_user(
            report.events, report.store.histories, hk_only=True
        )
        qos = qos_summary(report.events)
        ok = sum(1 for v in achieved.values() if v >= K)
        failure_steps = [
            e.step
            for e in report.events
            if e.lbqid_name is not None
            and not e.hk_anonymity
            and e.step is not None
        ]
        deep_failures = sum(1 for s in failure_steps if s >= 4)
        rows.append(
            (
                "k" if k_prime is None else f"k'={k_prime}",
                qos.mean_width_m,
                statistics.median(achieved.values()) if achieved else 0,
                f"{ok}/{len(achieved)}",
                qos.suppression_rate,
                (
                    deep_failures / len(failure_steps)
                    if failure_steps
                    else 0.0
                ),
            )
        )
    return rows


def run_e5_scope(city):
    rows = []
    for scope in AnonymitySetScope:
        report = run_protected(
            city, k=K, scope=scope, unlinker=NeverUnlink(), seed=97
        )
        achieved = historical_k_per_user(
            report.events, report.store.histories, hk_only=True
        )
        qos = qos_summary(report.events)
        ok = sum(1 for v in achieved.values() if v >= K)
        rows.append(
            (
                scope.value,
                qos.mean_width_m,
                statistics.median(achieved.values()) if achieved else 0,
                min(achieved.values()) if achieved else 0,
                f"{ok}/{len(achieved)}",
            )
        )
    return rows


def test_e5_kprime_schedule(benchmark, bench_city, bench_export):
    rows = benchmark.pedantic(
        run_e5_kprime, args=(bench_city,), rounds=1, iterations=1
    )
    table = Table(
        f"E5a: k' schedule (k={K}, decrement 2, NeverUnlink)",
        [
            "schedule",
            "mean width m",
            "median achieved k",
            "traces >= k",
            "suppression",
            "deep failures",
        ],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    bench_export("e5a", table.metrics(), workload={"k": K})

    # Certified traces always reach k, with or without the schedule
    # (the nested-pruning implementation makes Definition 8 hold by
    # construction whenever generalization keeps succeeding).
    for row in rows:
        assert row[2] >= K
    # The schedule's cost is service loss: stricter early requirements
    # suppress more requests …
    suppressions = [row[4] for row in rows]
    assert suppressions == sorted(suppressions)
    # … its intended benefit — failing early rather than deep into a
    # trace — is marginal on this workload (the share of failures at
    # step >= 4 barely moves), which EXPERIMENTS.md discusses.
    assert rows[-1][5] <= rows[0][5] + 0.05


def test_e5_scope_ablation(benchmark, bench_city, bench_export):
    rows = benchmark.pedantic(
        run_e5_scope, args=(bench_city,), rounds=1, iterations=1
    )
    table = Table(
        f"E5b: anonymity-set scope ablation (k={K}, NeverUnlink)",
        [
            "scope",
            "mean width m",
            "median achieved k",
            "min achieved k",
            "traces >= k",
        ],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    bench_export("e5b", table.metrics(), workload={"k": K})

    by_scope = {row[0]: row for row in rows}
    per_lbqid = by_scope[AnonymitySetScope.PER_LBQID.value]
    per_obs = by_scope[AnonymitySetScope.PER_OBSERVATION.value]
    # The Theorem-1 reading keeps every certified trace at >= k …
    assert per_lbqid[3] >= K
    # … while per-observation reselection can drop the union below k.
    assert per_obs[3] < K
