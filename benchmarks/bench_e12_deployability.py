"""E12 — deployability evaluation: where can a service be offered?

Reproduces: the paper's second intended use of the framework
(Section 7): "to evaluate if the privacy policies that a location-based
service guarantees are sufficient to deploy the service in a certain
area.  This may be achieved by considering, for example, the typical
density of users, their movement patterns, their concerns about privacy,
as well as the spatio-temporal tolerance constraints of the service."

The sweep crosses user density x anonymity level x service tolerance
and reports the generalization success rate; a cell is judged
*deployable* when at least 90% of LBQID-matching requests can be served
with historical k-anonymity intact.  The output is the feasible region a
deployment study would draw.
"""

from repro.core.generalization import ToleranceConstraint
from repro.core.unlinking import AlwaysUnlink
from repro.experiments.harness import Table
from repro.experiments.workloads import run_protected
from repro.granularity.timeline import MINUTE
from repro.mobility.population import CityConfig, SyntheticCity

DENSITIES = (25, 50, 100, 200)
K_VALUES = (2, 5)
TOLERANCES = (
    ("poi 1km/20min", 1000.0, 20),
    ("news 3km/60min", 3000.0, 60),
)
DEPLOYABLE_AT = 0.90


def run_e12():
    rows = []
    for n_commuters in DENSITIES:
        city = SyntheticCity.generate(
            CityConfig(
                n_commuters=n_commuters,
                n_wanderers=int(0.4 * n_commuters),
                days=7,
                seed=7,
            )
        )
        density = (n_commuters + int(0.4 * n_commuters)) / (
            city.bounds.area / 1e6
        )
        for k in K_VALUES:
            for label, side, minutes in TOLERANCES:
                tolerance = ToleranceConstraint.square(
                    side, minutes * MINUTE
                )
                report = run_protected(
                    city,
                    k=k,
                    tolerance=tolerance,
                    unlinker=AlwaysUnlink(),
                    seed=97,
                )
                attempted = sum(
                    1 for e in report.events if e.lbqid_name is not None
                )
                succeeded = sum(
                    1 for e in report.events if e.hk_anonymity
                )
                success = succeeded / attempted if attempted else 0.0
                rows.append(
                    (
                        n_commuters,
                        round(density, 1),
                        k,
                        label,
                        success,
                        success >= DEPLOYABLE_AT,
                    )
                )
    return rows


def test_e12_deployability(benchmark, bench_export):
    rows = benchmark.pedantic(run_e12, rounds=1, iterations=1)

    table = Table(
        "E12: deployability feasible region "
        f"(deployable at >= {DEPLOYABLE_AT:.0%} generalization success)",
        [
            "commuters",
            "users/km^2",
            "k",
            "service tolerance",
            "success rate",
            "deployable",
        ],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    bench_export(
        "e12",
        table.metrics(key_columns=4),
        workload={"densities": list(DENSITIES), "k_values": list(K_VALUES)},
    )

    by_cell = {(r[0], r[2], r[3]): r for r in rows}
    # Success improves with density at fixed (k, tolerance) ...
    for k in K_VALUES:
        for label, _s, _m in TOLERANCES:
            successes = [
                by_cell[(n, k, label)][4] for n in DENSITIES
            ]
            for earlier, later in zip(successes, successes[1:]):
                assert later >= earlier - 0.02
    # ... the easiest cell is deployable, the hardest is not.
    assert by_cell[(DENSITIES[-1], 2, "news 3km/60min")][5]
    assert not by_cell[(DENSITIES[0], 5, "poi 1km/20min")][5]
