"""E4 — tolerance constraints vs. anonymity failures vs. unlinking.

Reproduces: the remaining legs of the Section 6.2 trade-off — "how
strict tolerance constraints should be" and "frequency of unlinking
(i.e., number of possible interruptions of the service)" — plus the
strategy's failure cascade of Section 6.1: generalization failure ->
try to unlink -> otherwise the user is at risk and the request is
suppressed.

The sweep crosses service tolerance (from hospital-finder-tight to
localized-news-loose) with the availability of unlinking (probability
that a mix-zone can be formed).  Expected shape: tighter tolerances
produce more failures; when unlinking is also scarce, failures turn
into suppressed requests — lost service.
"""

import numpy as np

from repro.core.generalization import ToleranceConstraint
from repro.core.unlinking import ProbabilisticUnlink
from repro.experiments.harness import Table
from repro.experiments.workloads import run_protected
from repro.granularity.timeline import MINUTE
from repro.metrics.qos import qos_summary

TOLERANCES = (
    ("hospital (500m/10min)", 500.0, 10),
    ("poi (1km/20min)", 1000.0, 20),
    ("traffic (1.5km/30min)", 1500.0, 30),
    ("news (3km/60min)", 3000.0, 60),
)
UNLINK_PROBABILITIES = (0.0, 0.5, 1.0)


def run_e4(city):
    rows = []
    for label, side, minutes in TOLERANCES:
        tolerance = ToleranceConstraint.square(side, minutes * MINUTE)
        for probability in UNLINK_PROBABILITIES:
            unlinker = ProbabilisticUnlink(
                probability, np.random.default_rng(5), theta=0.1
            )
            report = run_protected(
                city, k=5, tolerance=tolerance, unlinker=unlinker,
                seed=97,
            )
            qos = qos_summary(report.events)
            attempted = sum(
                1 for e in report.events if e.lbqid_name is not None
            )
            failed = sum(
                1
                for e in report.events
                if e.lbqid_name is not None and not e.hk_anonymity
            )
            rows.append(
                (
                    label,
                    probability,
                    failed / attempted if attempted else 0.0,
                    qos.unlink_rate,
                    qos.suppression_rate,
                )
            )
    return rows


def test_e4_tolerance(benchmark, bench_city, bench_export):
    rows = benchmark.pedantic(
        run_e4, args=(bench_city,), rounds=1, iterations=1
    )

    table = Table(
        "E4: tolerance vs failures vs unlinking availability (k=5)",
        [
            "service tolerance",
            "unlink prob",
            "HK failure rate",
            "unlink rate",
            "suppression rate",
        ],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    bench_export("e4", table.metrics(key_columns=2), workload={"k": 5})

    by_cell = {(r[0], r[1]): r for r in rows}
    # Tighter tolerance -> more failures (at every unlink probability).
    for probability in UNLINK_PROBABILITIES:
        failures = [
            by_cell[(label, probability)][2]
            for label, _s, _m in TOLERANCES
        ]
        assert failures == sorted(failures, reverse=True)
    # Without unlinking there are no unlink events and failures surface
    # as suppressions; with guaranteed unlinking, suppression all but
    # vanishes (a residue remains from the "too late to unlink" path:
    # failures after the LBQID already matched).
    for label, _s, _m in TOLERANCES:
        assert by_cell[(label, 0.0)][3] == 0.0
        assert by_cell[(label, 1.0)][4] <= 0.01
        assert by_cell[(label, 1.0)][4] <= by_cell[(label, 0.0)][4]
