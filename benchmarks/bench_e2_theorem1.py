"""E2 — Theorem 1 as an executable property.

Reproduces: "If we apply our strategy with Algorithm 1, and we assume we
can always perform Unlinking … any set of requests issued to an SP by a
certain user that matches one of his/her LBQIDs and is link connected
with likelihood Θ, will satisfy Historical k-anonymity."

For each k the full pipeline runs with ``AlwaysUnlink`` (the theorem's
hypothesis); the verifier then groups forwarded requests by
(user, pseudonym, LBQID), finds the groups whose exact locations fully
match the LBQID, and checks Definition 8 against the ground-truth PHL
store.  The paper's claim: the violations column is all zeros.
"""

from repro.core.unlinking import AlwaysUnlink
from repro.experiments.harness import Table
from repro.experiments.workloads import run_protected
from repro.metrics.theorem import verify_theorem1

K_VALUES = (2, 5, 10, 20)


def run_e2(city, lbqids):
    rows = []
    for k in K_VALUES:
        report = run_protected(
            city, k=k, unlinker=AlwaysUnlink(theta=0.1), seed=97
        )
        theorem = verify_theorem1(
            report.events, report.store.histories, lbqids, k=k
        )
        rows.append((k, report, theorem))
    return rows


def test_e2_theorem1(benchmark, bench_city, bench_city_lbqids, bench_export):
    rows = benchmark.pedantic(
        run_e2, args=(bench_city, bench_city_lbqids), rounds=1,
        iterations=1,
    )

    table = Table(
        "E2: Theorem 1 verification (AlwaysUnlink, per-LBQID scope)",
        [
            "k",
            "groups checked",
            "fully matched",
            "violations",
            "unlink events",
            "holds",
        ],
    )
    for k, report, theorem in rows:
        unlinks = sum(
            1 for e in report.events if e.pseudonym_rotated
        )
        table.add_row(
            [
                k,
                theorem.groups_checked,
                theorem.groups_matching_lbqid,
                len(theorem.violations),
                unlinks,
                theorem.holds,
            ]
        )
    table.print()
    bench_export("e2", table.metrics(), workload={"k_values": list(K_VALUES)})

    for _k, _report, theorem in rows:
        assert theorem.holds
    # The check must not be vacuous: at low k, patterns do complete.
    assert any(
        theorem.groups_matching_lbqid > 0 for _k, _r, theorem in rows
    )
