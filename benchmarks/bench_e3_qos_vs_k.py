"""E3 — quality of service vs. degree of anonymity vs. user density.

Reproduces: the first leg of the Section 6.2 trade-off ("quality of
service … degree of anonymity") plus the Section 7 observation that
deployability depends on "the typical density of users".

For each (density, k) cell the pipeline runs with an unbounded-looking
tolerance removed: contexts are capped at 1.5 km / 30 min, so failures
show up as unlink events.  Expected shape: generalized contexts grow
with k and shrink with density; the failure (unlink) rate grows sharply
once the k nearest users no longer fit the tolerance box.
"""

from repro.core.unlinking import AlwaysUnlink
from repro.experiments.harness import Table
from repro.experiments.workloads import run_protected
from repro.metrics.qos import qos_summary
from repro.mobility.population import CityConfig, SyntheticCity

DENSITIES = (50, 100, 200)  # commuters; wanderers scale at 40%
K_VALUES = (2, 5, 10)


def run_e3():
    rows = []
    for n_commuters in DENSITIES:
        city = SyntheticCity.generate(
            CityConfig(
                n_commuters=n_commuters,
                n_wanderers=int(0.4 * n_commuters),
                days=7,
                seed=7,
            )
        )
        for k in K_VALUES:
            report = run_protected(
                city, k=k, unlinker=AlwaysUnlink(), seed=97
            )
            qos = qos_summary(report.events)
            attempted = sum(
                1 for e in report.events if e.lbqid_name is not None
            )
            failed = sum(
                1
                for e in report.events
                if e.lbqid_name is not None and not e.hk_anonymity
            )
            rows.append(
                (
                    n_commuters,
                    k,
                    qos.mean_width_m,
                    qos.mean_duration_s,
                    qos.p95_width_m,
                    failed / attempted if attempted else 0.0,
                )
            )
    return rows


def test_e3_qos_vs_k(benchmark, bench_export):
    rows = benchmark.pedantic(run_e3, rounds=1, iterations=1)

    table = Table(
        "E3: generalization cost vs k and density "
        "(tolerance 1.5 km / 30 min, 7 days)",
        [
            "commuters",
            "k",
            "mean width m",
            "mean interval s",
            "p95 width m",
            "failure rate",
        ],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    bench_export(
        "e3",
        table.metrics(key_columns=2),
        workload={"densities": list(DENSITIES), "k_values": list(K_VALUES)},
    )

    by_cell = {(n, k): row for (n, k, *row) in [
        (r[0], r[1], r[2], r[5]) for r in rows
    ]}
    # Context width grows with k at every density.
    for n in DENSITIES:
        widths = [by_cell[(n, k)][0] for k in K_VALUES]
        assert widths == sorted(widths)
    # Failure rate at k=10 improves with density.
    failures_k10 = [by_cell[(n, 10)][1] for n in DENSITIES]
    assert failures_k10[-1] <= failures_k10[0]
