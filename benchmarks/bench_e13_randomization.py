"""E13 — randomization vs. center-bias inference (Section 7).

Reproduces: the paper's stated open issue — "randomization should be
used as part of the TS strategy to prevent inference attacks" — as an
ablation: the same protected workload runs with deterministic
Algorithm 1 contexts and with :class:`BoxRandomizer` re-placing each
certified context within its tolerance budget.

The attacker guesses the requester at the context center and exploits
the deterministic bounding-box fingerprint (the true point lies on a box
edge).  Expected shape: randomization multiplies the center-guess error
and removes the edge fingerprint, at the cost of larger forwarded boxes
— while Definition 8 is untouched (expansion preserves LT-consistency by
construction).
"""

import os
import statistics

import numpy as np

from repro.attack.inference import (
    center_guess_errors,
    edge_fraction,
    mean_relative_center_error,
)
from repro.core.randomization import BoxRandomizer
from repro.core.unlinking import AlwaysUnlink
from repro.experiments.harness import Table
from repro.experiments.workloads import make_policy
from repro.metrics.anonymity import historical_k_per_user
from repro.ts.simulation import LBSSimulation

K = 5


def _run(city, randomizer):
    simulation = LBSSimulation(
        city,
        policy=make_policy(k=K),
        unlinker=AlwaysUnlink(),
        randomizer=randomizer,
        seed=97,
    )
    report = simulation.run()
    certified = [
        e.request
        for e in report.events
        if e.forwarded and e.hk_anonymity
    ]
    achieved = historical_k_per_user(
        report.events, report.store.histories, hk_only=True
    )
    return {
        "errors": center_guess_errors(certified),
        "relative": mean_relative_center_error(certified),
        "edges": edge_fraction(certified),
        "width": statistics.mean(
            r.context.rect.width for r in certified
        ),
        "min_k": min(achieved.values()) if achieved else 0,
    }


def run_e13(city):
    deterministic = _run(city, randomizer=None)
    randomized = _run(
        city, randomizer=BoxRandomizer(np.random.default_rng(41))
    )
    return deterministic, randomized


def test_e13_randomization(benchmark, bench_city, bench_export):
    deterministic, randomized = benchmark.pedantic(
        run_e13, args=(bench_city,), rounds=1, iterations=1
    )

    table = Table(
        f"E13: randomized context placement vs center inference (k={K})",
        [
            "contexts",
            "median center error m",
            "relative error",
            "edge fraction",
            "mean width m",
            "min achieved k",
        ],
    )
    for label, result in (
        ("deterministic", deterministic),
        ("randomized", randomized),
    ):
        table.add_row(
            [
                label,
                statistics.median(result["errors"]),
                result["relative"],
                result["edges"],
                result["width"],
                result["min_k"],
            ]
        )
    table.print()
    bench_export("e13", table.metrics(), workload={"k": K})

    # Randomization raises the attacker's absolute positioning error and
    # all but erases the bounding-box edge fingerprint (the relative
    # error *falls* because the boxes grow faster than the error — the
    # box itself, not its center, is all the SP learns).  In the
    # downsized smoke city the deterministic boxes are already near the
    # tolerance ceiling, so the median-error gain flattens out — only
    # require that randomization doesn't *reduce* the error there.
    smoke = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
    error_gain = 0.95 if smoke else 1.2
    assert statistics.median(randomized["errors"]) > error_gain * (
        statistics.median(deterministic["errors"])
    )
    assert randomized["edges"] < deterministic["edges"] / 3
    # …at a bounded QoS cost (still within the 1.5 km tolerance)…
    assert randomized["width"] <= 1500.0 + 1e-6
    # …without touching the historical guarantee.
    assert randomized["min_k"] >= K
    assert deterministic["min_k"] >= K
