"""E11 — "actual senders" [9] vs. "potential senders" (this paper).

Reproduces: the Section 2 comparison — "the notion of k-anonymity used
in [9] is slightly different: the authors consider a message … to be
k-anonymous only if there are other k-1 users in the same spatio-temporal
context that actually send a message.  …  We only require the presence
in the same spatio-temporal context of k-1 potential senders, which is a
much weaker requirement."

Both definitions are evaluated on identical request streams drawn from
the benchmark city at several request rates, under the same spatial and
temporal tolerances (1.5 km / 15 min):

* **actual senders** — the CliqueCloak engine [9]: a request is served
  only when k−1 *other requests* can share its box before its deadline;
  the cost shows up as drops and queueing delay, both exploding when
  requests are sparse;
* **potential senders** — this paper's anonymity-set test: are k users'
  PHLs inside the box at all?  Its failure rate depends only on user
  density, not on how often anyone else talks.
"""

import numpy as np

from repro.baselines.clique_cloak import CliqueCloak, CliqueRequest
from repro.experiments.harness import Table
from repro.geometry.region import Interval, Rect, STBox
from repro.mod.store import TrajectoryStore

K = 5
SPATIAL = 1500.0
TEMPORAL = 900.0
REQUEST_PROBABILITIES = (0.005, 0.02, 0.1)


def _request_stream(city, probability, seed):
    rng = np.random.default_rng(seed)
    samples = sorted(
        (
            (point.t, user_id, point)
            for user_id in city.store.user_ids()
            for point in city.store.history(user_id)
        ),
        key=lambda item: item[0],
    )
    stream = []
    for msgid, (_t, user_id, point) in enumerate(samples):
        if rng.random() < probability:
            stream.append((msgid, user_id, point))
    return stream


def _potential_failure_rate(store: TrajectoryStore, stream):
    failures = 0
    for _msgid, _user_id, point in stream:
        box = STBox(
            Rect.from_center(point.point, SPATIAL, SPATIAL),
            Interval(point.t - TEMPORAL, point.t + TEMPORAL),
        )
        if len(store.users_in_box(box)) < K:
            failures += 1
    return failures / len(stream) if stream else 0.0


def run_e11(city):
    rows = []
    for probability in REQUEST_PROBABILITIES:
        stream = _request_stream(city, probability, seed=31)
        engine = CliqueCloak()
        for msgid, user_id, point in stream:
            engine.submit(
                CliqueRequest(
                    msgid=msgid,
                    user_id=user_id,
                    location=point,
                    k=K,
                    spatial_tolerance=SPATIAL,
                    temporal_tolerance=TEMPORAL,
                )
            )
        engine.flush()
        potential_failures = _potential_failure_rate(
            city.store, stream[:: max(1, len(stream) // 400)]
        )
        rows.append(
            (
                probability,
                len(stream),
                engine.stats.drop_rate,
                engine.stats.mean_delay,
                potential_failures,
            )
        )
    return rows


def test_e11_definitions(benchmark, bench_city, bench_export):
    rows = benchmark.pedantic(
        run_e11, args=(bench_city,), rounds=1, iterations=1
    )

    table = Table(
        f"E11: actual-senders [9] vs potential-senders anonymity "
        f"(k={K}, {SPATIAL:.0f} m / {TEMPORAL:.0f} s)",
        [
            "request prob",
            "requests",
            "[9] drop rate",
            "[9] mean delay s",
            "potential-sender failure rate",
        ],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    bench_export("e11", table.metrics(), workload={"k": K})

    # The actual-senders requirement is brutal on sparse workloads …
    assert rows[0][2] > 0.5
    # … and relaxes as request density grows.
    drops = [row[2] for row in rows]
    assert drops == sorted(drops, reverse=True)
    # The potential-senders test barely notices the request rate: its
    # failure rate stays low and roughly constant (user density fixed).
    for row in rows:
        assert row[4] < 0.2
    spread = max(r[4] for r in rows) - min(r[4] for r in rows)
    assert spread < 0.1
