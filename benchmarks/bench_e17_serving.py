"""E17 — the serving frontend: throughput, latency, graceful overload.

Open-loop load generator passes against a self-hosted TCP Trusted
Server (``repro.serve``):

* **steady** — a sustainable arrival rate with verification on: the
  served per-user decision streams must match the offline
  ``Engine.process_batch`` replay exactly, and nothing may be shed.
  The decision tallies land in the gated metrics (they are seeded and
  deterministic).  The pass runs twice, once per trajectory-store
  backend (``python`` pinned, then ``numpy``): both must verify and
  their decision tallies must be identical — the columnar hot path is
  decision-equivalent end to end, through the wire;
* **traced** — the steady workload again with end-to-end trace
  propagation negotiated (wire contexts, exemplars, introspection; the
  no-sink span fast path): interleaved untraced/traced passes, gated
  on the ratio of the two arms' median CPU times staying within
  1/0.9 — the "tracing costs at most 10% of throughput" bound,
  measured in the form that is robust to scheduler noise (see
  ``_overhead_trials``);
* **profiled** — the steady workload with the sampling profiler
  capturing across the pass (started/stopped over the wire via the
  ``profile`` op): the same interleaved median-CPU gate at 1/0.9, and
  the captured per-stage self-time shares must account for the whole
  sampled request time;
* **capacity** — requests-only at an effectively infinite offered rate
  with a wide-open queue: completed decisions per second is the
  sustained serving throughput (informational latency data, but the
  ≥1k req/s bar is asserted here);
* **overload** — the measured capacity offered at a sweep of factors
  (1.5x, 2.5x, 4x) against a small queue: the server must degrade by
  *shedding* (``overloaded`` + ``retry_after``), never by
  protocol/internal errors or an unclean shutdown.  The sweep exports
  the shed-rate vs goodput curve (``serve.shed_curve``) — the
  backpressure story in one table: as offered load grows past
  capacity the shed rate climbs while goodput (completed decisions
  per second) holds near capacity instead of collapsing.

Timing-dependent numbers (throughput, percentiles, shed rate) are
exported in the artifact's informational ``latency`` section; the
gate sees only the deterministic decision metrics and the structural
pass/fail indicators.
"""

import asyncio
import dataclasses
import gc
import time

from repro.experiments.harness import Table
from repro.serve.loadgen import LoadgenConfig, WorkloadConfig, run_loadgen
from repro.serve.server import ServeConfig

from benchmarks.conftest import BENCH_SMOKE

SERVING_WORKLOAD = WorkloadConfig()  # seed 11, 12 commuters, 6 wanderers
STEADY_REQUESTS = 300 if BENCH_SMOKE else 1200
# The overhead trials compare paired CPU times, and short passes put
# the per-pass fixed costs (engine build, loop setup) in the numerator
# and denominator at ~±4% noise each — too wide for a 10% bound.  The
# pairs always run at full length, smoke mode or not.
TRIAL_REQUESTS = 1200
# The observability arms promise >= 90% of plain throughput, i.e. a
# CPU-per-op ratio of at most 1/0.9 against the plain arm.
OVERHEAD_BUDGET = 1.0 / 0.9
CAPACITY_REQUESTS = 400 if BENCH_SMOKE else 2000
# Offered-load multiples of measured capacity for the shed sweep; the
# last factor is the gated "overload" arm.
OVERLOAD_FACTORS = (1.5, 2.5, 4.0)
OVERLOAD_FACTOR = OVERLOAD_FACTORS[-1]

WIDE_OPEN = ServeConfig(max_queue_depth=1 << 17, max_inflight=1 << 17)
SMALL_QUEUE = ServeConfig(max_queue_depth=64, max_inflight=32)


def _steady_config(**overrides) -> LoadgenConfig:
    defaults = dict(
        workload=SERVING_WORKLOAD,
        serve=WIDE_OPEN,
        requests=STEADY_REQUESTS,
        clients=8,
        rate=20_000.0,
        transport="tcp",
    )
    defaults.update(overrides)
    return LoadgenConfig(**defaults)


def _overhead_trials(rounds: int = 5):
    """Interleave plain/traced/profiled passes; gauge overhead by CPU.

    A steady pass lasts around a second of wall clock, so a
    single-shot throughput comparison mostly measures scheduler noise.
    Instead the three arms run interleaved (plain, traced, profiled,
    plain, …) and each gated quantity is the *median of the per-round
    arm/plain ratios* of process CPU time.  CPU time ignores scheduler
    wall-clock jitter; taking the ratio within a round — where the two
    passes sit back to back — cancels machine drift before it can skew
    the estimate (a ratio of per-arm medians, by contrast, can pick
    its numerator and denominator from rounds minutes of drift apart
    once three arms stretch each round); and the median across rounds
    discards the occasional round inflated by a frequency dip or
    allocator hiccup.  At saturation, throughput is 1/CPU-per-op, so
    each CPU ratio is the noise-robust estimator of the throughput
    ratio the observability layer promises.

    Returns ``(best, ratios)``: per-arm best pass by throughput
    (report/table material) and the median per-round arm/plain CPU
    ratios (the gated quantities), both keyed ``"plain"``/
    ``"traced"``/``"profiled"``.
    """
    arms = {
        "plain": {},
        "traced": {"trace": True},
        # 10 ms sampling is the continuous-profiling cadence: the
        # profiler's switch-interval clamp (half the sampling period)
        # lands exactly on the interpreter's 5 ms default, so the arm
        # pays only for the sampler thread itself.
        "profiled": {"profile": True, "profile_interval_ms": 10.0},
    }

    def measured(config):
        # A collection landing inside one pass of a trio would swamp
        # the delta being measured; run each pass collector-quiet.
        gc.collect()
        gc.disable()
        try:
            cpu0 = time.process_time()
            report = asyncio.run(run_loadgen(config))
            return report, time.process_time() - cpu0
        finally:
            gc.enable()

    best = {name: None for name in arms}
    cpus = {name: [] for name in arms}
    for _ in range(rounds):
        for name, overrides in arms.items():
            report, cpu = measured(
                _steady_config(requests=TRIAL_REQUESTS, **overrides)
            )
            cpus[name].append(cpu)
            if (
                best[name] is None
                or report.throughput_rps > best[name].throughput_rps
            ):
                best[name] = report
    mid = rounds // 2
    ratios = {
        name: sorted(
            arm_cpu / plain_cpu
            for arm_cpu, plain_cpu in zip(values, cpus["plain"])
        )[mid]
        for name, values in cpus.items()
    }
    return best, ratios


def run_e17():
    # The steady pair pins the store backend per arm so the comparison
    # survives the CI backend matrix (where $REPRO_STORE_BACKEND would
    # otherwise flip both arms to the same backend).
    steady = asyncio.run(
        run_loadgen(
            _steady_config(
                verify=True,
                workload=dataclasses.replace(
                    SERVING_WORKLOAD, backend="python"
                ),
            )
        )
    )
    steady_numpy = asyncio.run(
        run_loadgen(
            _steady_config(
                verify=True,
                workload=dataclasses.replace(
                    SERVING_WORKLOAD, backend="numpy"
                ),
            )
        )
    )
    best, ratios = _overhead_trials()
    if max(ratios["traced"], ratios["profiled"]) > OVERHEAD_BUDGET:
        # The true arm costs sit well inside the budget, but one bad
        # scheduling window can still push a five-round median past
        # it.  Confirm before reporting a breach: a real regression
        # exceeds the budget in two independent trial blocks, a noise
        # burst does not.
        best_retry, ratios_retry = _overhead_trials()
        ratios = {
            name: min(ratios[name], ratios_retry[name])
            for name in ratios
        }
        for name, report in best_retry.items():
            if report.throughput_rps > best[name].throughput_rps:
                best[name] = report
    untraced, traced, profiled = (
        best["plain"], best["traced"], best["profiled"]
    )
    capacity = asyncio.run(
        run_loadgen(
            LoadgenConfig(
                workload=SERVING_WORKLOAD,
                serve=WIDE_OPEN,
                requests=CAPACITY_REQUESTS,
                clients=8,
                rate=1e6,
                transport="tcp",
                include_updates=False,
                telemetry_enabled=False,
            )
        )
    )
    shed_curve = []
    for factor in OVERLOAD_FACTORS:
        shed_curve.append(
            (
                factor,
                asyncio.run(
                    run_loadgen(
                        LoadgenConfig(
                            workload=SERVING_WORKLOAD,
                            serve=SMALL_QUEUE,
                            requests=CAPACITY_REQUESTS,
                            clients=8,
                            rate=max(2000.0, capacity.throughput_rps)
                            * factor,
                            transport="tcp",
                            include_updates=False,
                            telemetry_enabled=False,
                        )
                    )
                ),
            )
        )
    return (
        steady,
        steady_numpy,
        untraced,
        traced,
        profiled,
        ratios,
        capacity,
        shed_curve,
    )


def test_e17_serving(benchmark, bench_export):
    (
        steady,
        steady_numpy,
        untraced,
        traced,
        profiled,
        ratios,
        capacity,
        shed_curve,
    ) = benchmark.pedantic(run_e17, rounds=1, iterations=1)
    overload = shed_curve[-1][1]
    cpu_ratio = ratios["traced"]
    profiled_ratio = ratios["profiled"]

    table = Table(
        "E17: serving frontend (open-loop loadgen over TCP)",
        [
            "pass",
            "requests",
            "decisions",
            "shed",
            "errors",
            "req/s",
            "p95 ms",
            "verified",
        ],
    )
    for name, report in (
        ("steady", steady),
        ("steady-numpy", steady_numpy),
        ("untraced", untraced),
        ("traced", traced),
        ("profiled", profiled),
        ("capacity", capacity),
    ) + tuple(
        (f"overload-{factor:g}x", report)
        for factor, report in shed_curve
    ):
        table.add_row(
            (
                name,
                report.requests_sent,
                report.decisions,
                report.shed,
                report.protocol_errors + report.internal_errors,
                round(report.throughput_rps),
                round(report.latency_ms.get("p95", 0.0), 2),
                {True: 1, False: 0, None: "-"}[report.verified],
            )
        )
    table.print()

    metrics = {
        "steady_requests": float(STEADY_REQUESTS),
        "steady_verified": 1.0 if steady.verified else 0.0,
        "steady_mismatches": float(steady.mismatches),
        "steady_shed": float(steady.shed),
        "steady_errors": float(
            steady.protocol_errors + steady.internal_errors
        ),
        "overload_sheds": 1.0 if overload.shed > 0 else 0.0,
        "overload_graceful": (
            1.0
            if (
                overload.protocol_errors == 0
                and overload.internal_errors == 0
                and overload.clean_shutdown
            )
            else 0.0
        ),
        "profiled_clean": (
            1.0 if (profiled.ok and profiled.shed == 0) else 0.0
        ),
        "steady_numpy_verified": (
            1.0 if steady_numpy.verified else 0.0
        ),
        "steady_numpy_mismatches": float(steady_numpy.mismatches),
        "steady_numpy_decisions_match": (
            1.0
            if steady_numpy.decision_counts == steady.decision_counts
            else 0.0
        ),
    }
    for decision, count in sorted(steady.decision_counts.items()):
        metrics[f"steady_decisions_{decision}"] = float(count)
    latency = {
        "serve.steady_latency_ms": {
            "p50": steady.latency_ms.get("p50", 0.0),
            "p95": steady.latency_ms.get("p95", 0.0),
            "p99": steady.latency_ms.get("p99", 0.0),
            "p99_9": steady.latency_ms.get("p99_9", 0.0),
        },
        "serve.steady_numpy_latency_ms": {
            "p50": steady_numpy.latency_ms.get("p50", 0.0),
            "p95": steady_numpy.latency_ms.get("p95", 0.0),
            "p99": steady_numpy.latency_ms.get("p99", 0.0),
            "p99_9": steady_numpy.latency_ms.get("p99_9", 0.0),
        },
        "serve.throughput_rps": {
            "steady": steady.throughput_rps,
            "steady_numpy": steady_numpy.throughput_rps,
            "untraced_best": untraced.throughput_rps,
            "traced_best": traced.throughput_rps,
            "profiled_best": profiled.throughput_rps,
            "capacity": capacity.throughput_rps,
            "overload": overload.throughput_rps,
        },
        "serve.tracing_overhead": {
            "cpu_traced_over_untraced": cpu_ratio,
            "traced_over_untraced": (
                traced.throughput_rps / untraced.throughput_rps
                if untraced.throughput_rps > 0
                else 0.0
            ),
        },
        "serve.profiling_overhead": {
            "cpu_profiled_over_plain": profiled_ratio,
        },
        "serve.profile_stage_share_pct": {
            row["stage"]: row["share_pct"]
            for row in (profiled.profile or {}).get("rows", [])
            if row.get("share_pct") is not None
        },
        "serve.overload": {
            "offered_x": OVERLOAD_FACTOR,
            "shed_rate": overload.shed_rate,
        },
        # Shed-rate vs goodput across offered-load factors: goodput is
        # completed decisions per second — it should hold near
        # capacity while the shed rate absorbs the excess.
        "serve.shed_curve": {
            f"x{factor:g}_{name}": value
            for factor, report in shed_curve
            for name, value in (
                ("shed_rate", report.shed_rate),
                ("goodput_rps", report.throughput_rps),
            )
        },
    }
    bench_export(
        "e17",
        metrics,
        workload={
            "serving_seed": SERVING_WORKLOAD.seed,
            "serving_commuters": SERVING_WORKLOAD.n_commuters,
            "serving_wanderers": SERVING_WORKLOAD.n_wanderers,
            "serving_days": SERVING_WORKLOAD.days,
            "steady_requests": STEADY_REQUESTS,
            "capacity_requests": CAPACITY_REQUESTS,
        },
        latency=latency,
    )

    # Serving must be faithful: the online decision stream is the
    # offline decision stream.
    assert steady.verified is True and steady.mismatches == 0
    assert steady.shed == 0 and steady.ok
    # The columnar backend serves the *same* decision stream: its own
    # offline replay verifies, and its tallies match the python arm's
    # tally for tally — decision equivalence holds through the wire.
    assert steady_numpy.verified is True
    assert steady_numpy.mismatches == 0
    assert steady_numpy.shed == 0 and steady_numpy.ok
    assert steady_numpy.decision_counts == steady.decision_counts
    # The acceptance bar: at least 1k sustained decisions per second.
    assert capacity.throughput_rps >= 1000.0, capacity.to_dict()
    # Tracing must stay cheap: a traced pass may consume at most
    # 1/0.9x the untraced CPU — i.e. at saturation it sustains >= 90%
    # of the untraced throughput.  The ratio of median CPU times over
    # interleaved passes is the noise-robust form of that bound (see
    # _tracing_overhead_trials); the pass must also be clean.
    assert traced.ok and traced.shed == 0
    assert cpu_ratio <= OVERHEAD_BUDGET, (
        cpu_ratio,
        traced.throughput_rps,
        untraced.throughput_rps,
    )
    # The profiler holds the same bar: a profiled pass keeps >= 90% of
    # unprofiled throughput (same interleaved median-CPU-ratio form),
    # stays clean, and its per-stage self-time shares account for the
    # whole sampled request time.
    assert profiled.ok and profiled.shed == 0
    assert profiled_ratio <= OVERHEAD_BUDGET, (
        profiled_ratio,
        profiled.throughput_rps,
        untraced.throughput_rps,
    )
    assert profiled.profile is not None
    if profiled.profile["request_samples"] > 0:
        share_sum = sum(
            row["share_pct"]
            for row in profiled.profile["rows"]
            if row["share_pct"] is not None
        )
        assert abs(share_sum - 100.0) < 0.5, profiled.profile["rows"]
    # Overload degrades into explicit backpressure, never failure —
    # at every point of the sweep, not just the deepest one.
    assert overload.shed > 0
    for factor, report in shed_curve:
        assert report.protocol_errors == 0, factor
        assert report.internal_errors == 0, factor
        assert report.clean_shutdown, factor
