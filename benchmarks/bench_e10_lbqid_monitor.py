"""E10 — LBQID monitoring: correctness and throughput.

Reproduces: Section 4's matching semantics on the paper's own Example 2
("each round-trip … should be observed in the same weekday, there should
be 3 observations in the same week, and for at least 2 weeks") and the
feasibility of the timed-automaton monitor the paper proposes ("a timed
state automata may be used for each LBQID and each user").

Correctness: commuters with decreasing schedule adherence (increasing
skip probability) are monitored over two weeks; the fraction whose trace
completes the ``3.Weekdays * 2.Weeks`` pattern must fall from ~1 toward
0 — and must agree with an oracle that counts qualifying weeks directly
from the ground-truth schedule.

Throughput: location samples per second through a monitor, the number
that sizes a real TS deployment.  The timing comes from the obs layer:
each commuter's feed loop runs inside a telemetry timer and the
throughput is derived from the ``monitor.feed_trace_ms`` histogram and
the monitors' own ``monitor.samples`` counter — so what is measured is
the *instrumented* monitor, exactly what a production TS would run.
"""

import numpy as np

from repro.core.matching import LBQIDMonitor
from repro.experiments.harness import Table
from repro.mobility.commuter import Commuter, CommuterSchedule
from repro.mobility.network import RoadNetwork
from repro.obs import TelemetryConfig

SKIP_PROBABILITIES = (0.0, 0.2, 0.4, 0.6)
N_COMMUTERS = 40
DAYS = 14


def _commuters(skip_probability, rng_seed):
    network = RoadNetwork(10, 10, block_size=200.0)
    rng = np.random.default_rng(rng_seed)
    commuters = []
    for user_id in range(N_COMMUTERS):
        home = (int(rng.integers(11)), int(rng.integers(11)))
        work = (int(rng.integers(11)), int(rng.integers(11)))
        if home == work:
            work = ((work[0] + 1) % 11, work[1])
        commuters.append(
            Commuter(
                user_id,
                network,
                home,
                work,
                schedule=CommuterSchedule(
                    skip_probability=skip_probability,
                    departure_std_hours=0.1,
                ),
            )
        )
    return commuters


def run_e10():
    rows = []
    telemetry = TelemetryConfig(enabled=True).build()
    for skip in SKIP_PROBABILITIES:
        commuters = _commuters(skip, rng_seed=int(skip * 100) + 1)
        matched = 0
        for commuter in commuters:
            rng = np.random.default_rng(commuter.user_id)
            trace = commuter.trajectory(DAYS, rng)
            monitor = LBQIDMonitor(commuter.lbqid(), telemetry=telemetry)
            with telemetry.timer("monitor.feed_trace_ms"):
                for point in trace:
                    monitor.feed(point)
            if monitor.matched:
                matched += 1
        expected = _expected_match_probability(skip)
        rows.append((skip, matched / N_COMMUTERS, expected))
    snapshot = telemetry.snapshot()
    total_samples = snapshot.counter_value("monitor.samples")
    feed_ms = snapshot.histogram_summary("monitor.feed_trace_ms")
    throughput = total_samples / (feed_ms.total / 1000.0)
    return rows, throughput


def _expected_match_probability(skip):
    """Oracle: P(>= 3 workdays in a week)^... for two 5-day weeks.

    A week qualifies when at least 3 of its 5 weekdays are worked
    (each worked independently with probability 1-skip); the pattern
    needs both simulated weeks to qualify.
    """
    from math import comb

    p = 1.0 - skip
    week_ok = sum(
        comb(5, j) * p**j * (1 - p) ** (5 - j) for j in range(3, 6)
    )
    return week_ok**2


def test_e10_lbqid_monitor(benchmark, bench_export):
    (rows, throughput) = benchmark.pedantic(
        run_e10, rounds=1, iterations=1
    )

    table = Table(
        "E10: Example 2 pattern detection vs schedule adherence "
        f"({N_COMMUTERS} commuters, {DAYS} days)",
        ["skip probability", "detected fraction", "oracle expectation"],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    print(f"monitor throughput: {throughput:,.0f} samples/s")
    bench_export(
        "e10",
        table.metrics(),
        workload={"n_commuters": N_COMMUTERS, "days": DAYS},
        latency={"monitor": {"throughput_samples_per_s": throughput}},
    )

    # Detection falls with skip probability and tracks the oracle.
    detected = [row[1] for row in rows]
    assert detected == sorted(detected, reverse=True)
    for _skip, fraction, expected in rows:
        assert abs(fraction - expected) < 0.25
    # Perfect attendance is essentially always detected.
    assert rows[0][1] > 0.9
    # The monitor is fast enough for a city-scale TS.
    assert throughput > 50_000
