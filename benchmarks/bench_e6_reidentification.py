"""E6 — the motivating attack vs. each defense.

Reproduces: the Section 1 threat ("the exact coordinates of a private
house … a simple look up in a phone book can reveal the people who live
there") and the Section 2 positioning against per-request cloaking [11]
("[11] and [9] address a special case of the problem considered in this
paper").

Same adversary — group the SP log into linkable units, anchor each at a
dwelling, look it up in the home oracle — against three configurations:

* no protection (exact points, stable pseudonym);
* interval cloaking [11] (per-request k-anonymous boxes, stable
  pseudonym);
* this paper (LBQID monitoring incl. declared home areas, Algorithm 1,
  mix-zone unlinking).

Columns: users named at least once, attacker per-claim precision, and
the attack-independent *trace k* — Definition 8 over each linkable
trace.  Expected shape: only the paper's framework keeps trace k at the
required level and caps precision near 1/k.
"""

import statistics

from repro.attack.reidentification import HomeIdentificationAttack
from repro.baselines.interval_cloak import IntervalCloak
from repro.core.historical_k import historical_anonymity_set
from repro.core.requests import Request
from repro.core.unlinking import AlwaysUnlink
from repro.experiments.harness import Table
from repro.experiments.workloads import make_policy
from repro.metrics.anonymity import historical_k_per_user
from repro.ts.simulation import LBSSimulation

K = 5


def _anchor_requests(city, cloaker=None):
    requests = []
    msgid = 0
    for commuter in city.commuters:
        lbqid = commuter.lbqid()
        for point in city.store.history(commuter.user_id):
            if lbqid.element_matching(point) is None:
                continue
            box = None
            if cloaker is not None:
                box = cloaker.cloak(commuter.user_id, point)
                if box is None:
                    continue
            msgid += 1
            request = Request.issue(
                msgid, commuter.user_id, f"u{commuter.user_id}", point
            )
            if box is not None:
                request = request.with_context(box)
            requests.append(request)
    return requests


def _attack(log, true_owner, homes, population):
    attacker = HomeIdentificationAttack(
        homes, anchor_grid=200.0, claim_radius=300.0
    )
    result = attacker.run(log, true_owner=true_owner)
    return result.rate(population), result.precision


def _median_trace_k(requests, histories):
    by_user: dict[int, list] = {}
    for request in requests:
        by_user.setdefault(request.user_id, []).append(request.context)
    values = [
        1
        + len(
            historical_anonymity_set(
                contexts, histories, exclude_user=user_id
            )
        )
        for user_id, contexts in by_user.items()
    ]
    return statistics.median(values) if values else 0.0


def run_e6(city):
    homes = city.home_locations()
    histories = city.store.histories
    population = len(city.commuters)
    stable_owner = {f"u{c.user_id}": c.user_id for c in city.commuters}
    rows = []

    raw = _anchor_requests(city)
    rate, precision = _attack(
        [r.sp_view() for r in raw], stable_owner, homes, population
    )
    rows.append(
        ("no protection", rate, precision, _median_trace_k(raw, histories))
    )

    cloaker = IntervalCloak(city.store, city.bounds, k=K, window=1800.0)
    cloaked = _anchor_requests(city, cloaker)
    rate, precision = _attack(
        [r.sp_view() for r in cloaked], stable_owner, homes, population
    )
    rows.append(
        (
            f"interval cloak [11] k={K}",
            rate,
            precision,
            _median_trace_k(cloaked, histories),
        )
    )

    simulation = LBSSimulation(
        city,
        policy=make_policy(k=K),
        unlinker=AlwaysUnlink(),
        register_home_lbqids=True,
        seed=97,
    )
    report = simulation.run()
    owner = {
        e.request.pseudonym: e.request.user_id for e in report.events
    }
    log = [e.request.sp_view() for e in report.events if e.forwarded]
    rate, precision = _attack(log, owner, homes, population)
    achieved = historical_k_per_user(
        report.events, report.store.histories, hk_only=True
    )
    trace_k = statistics.median(achieved.values()) if achieved else 0.0
    rows.append((f"this paper k={K}", rate, precision, trace_k))
    return rows


def test_e6_reidentification(benchmark, bench_city, bench_export):
    rows = benchmark.pedantic(
        run_e6, args=(bench_city,), rounds=1, iterations=1
    )

    table = Table(
        "E6: phone-book re-identification attack (100 commuters)",
        ["configuration", "identified", "precision", "median trace k"],
    )
    for row in rows:
        table.add_row(row)
    table.print()
    bench_export("e6", table.metrics(), workload={"k": K})

    unprotected, cloak, paper = rows
    # The attack works when nothing is done.
    assert unprotected[1] > 0.6 and unprotected[2] > 0.6
    # Per-request cloaking leaves traces unique (trace k stays 1) …
    assert cloak[3] <= 2
    # … the paper's strategy holds trace k at the target and caps
    # attacker confidence near 1/k.
    assert paper[3] >= K
    assert paper[2] < unprotected[2] / 2
