"""Service providers.

Section 3: "Service Providers (SP) receive from TS service requests of the
form (msgid, UserPseudonym, Area, TimeInterval, Data) … Service providers
fulfill the requests sending the service output to the user's device
through the trusted server."

A provider here answers every request it can parse and keeps the full log
of what it received — the log is exactly the attacker's observation in the
threat model ("by looking at the set of service requests issued to a
service provider"), so :mod:`repro.attack` consumes
:attr:`ServiceProvider.log` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.requests import SPRequest


@dataclass(frozen=True)
class ServiceAnswer:
    """The output an SP returns through the TS for one request."""

    msgid: int
    payload: str


class ServiceProvider:
    """One location-based service (map, POI finder, localized news, …)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.log: list[SPRequest] = []

    def receive(self, request: SPRequest) -> ServiceAnswer:
        """Handle one request and produce an answer.

        The answer payload summarizes the context actually served — a
        stand-in for real service output whose *usefulness* degrades with
        context size, which is what tolerance constraints bound.
        """
        self.log.append(request)
        center = request.context.rect.center
        return ServiceAnswer(
            msgid=request.msgid,
            payload=(
                f"{self.name}: results near ({center.x:.0f}, {center.y:.0f}) "
                f"within {request.context.rect.width:.0f}x"
                f"{request.context.rect.height:.0f}m"
            ),
        )

    @property
    def request_count(self) -> int:
        return len(self.log)

    def pseudonyms_seen(self) -> set[str]:
        """Distinct pseudonyms in this provider's log."""
        return {request.pseudonym for request in self.log}
