"""End-to-end simulation of the Figure 1 service model.

Replays a :class:`~repro.mobility.population.SyntheticCity` through a
*fresh* Trusted Server in strict timestamp order — the online regime: the
TS sees location updates and requests as they happen and Algorithm 1 can
only use PHL points already ingested.  A configurable fraction of samples
become service requests; commuter samples matching the user's own LBQID
elements request with a higher probability (navigation queries at the
commute anchors), which is what exercises the monitoring/generalization
path.

The resulting :class:`SimulationReport` carries the TS audit trail, the
per-provider logs (the attacker's view), and the populated store (the
ground truth for Definition 8 verification).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.anonymizer import (
    AnonymitySetScope,
    AnonymizerEvent,
    Decision,
    TrustedAnonymizer,
)
from repro.core.generalization import ToleranceConstraint
from repro.core.policy import PolicyTable
from repro.core.randomization import BoxRandomizer
from repro.core.unlinking import UnlinkingProvider
from repro.engine.pipeline import BatchItem, Engine
from repro.engine.session import SessionStore
from repro.geometry.point import STPoint
from repro.mobility.population import SyntheticCity
from repro.mod.store import TrajectoryStore
from repro.obs.config import Telemetry, TelemetryConfig, resolve_telemetry
from repro.obs.metrics import MetricsSnapshot
from repro.obs.render import render_summary
from repro.obs.slo import PrivacyMonitor, SloRule
from repro.ts.providers import ServiceProvider


@dataclass(frozen=True)
class RequestProfile:
    """How often users turn location samples into service requests.

    ``anchor_request_probability`` applies to commuter samples matching
    an element of the commuter's own LBQID; ``background_probability``
    to every other sample.
    """

    background_probability: float = 0.02
    anchor_request_probability: float = 0.9
    service: str = "poi"

    def __post_init__(self) -> None:
        for value, label in (
            (self.background_probability, "background_probability"),
            (self.anchor_request_probability, "anchor_request_probability"),
        ):
            if not 0 <= value <= 1:
                raise ValueError(f"{label} must be in [0, 1], got {value}")


@dataclass
class SimulationReport:
    """Everything the experiments need from one simulation run."""

    anonymizer: TrustedAnonymizer
    providers: dict[str, ServiceProvider]
    requests_issued: int = 0
    location_updates: int = 0
    events: list[AnonymizerEvent] = field(default_factory=list)
    #: The telemetry pipeline the run recorded into (the disabled
    #: singleton when the simulation ran without telemetry).
    telemetry: Telemetry | None = None
    #: The streaming SLO auditor, when the simulation was configured
    #: with ``slo_rules`` (requires enabled telemetry).
    privacy_monitor: PrivacyMonitor | None = None

    @property
    def store(self) -> TrajectoryStore:
        """The TS store populated during the run (ground truth)."""
        return self.anonymizer.store

    def decision_counts(self) -> dict[Decision, int]:
        return self.anonymizer.decision_counts()

    def generalized_events(self) -> list[AnonymizerEvent]:
        """Events where Algorithm 1 ran (an LBQID element matched)."""
        return [e for e in self.events if e.lbqid_name is not None]

    def metrics_snapshot(self) -> MetricsSnapshot | None:
        """Frozen metrics of the run; ``None`` without telemetry."""
        if self.telemetry is None or not self.telemetry.enabled:
            return None
        return self.telemetry.snapshot()

    def summary(self) -> str:
        """Decision tallies, SLO status (when monitored), telemetry."""
        counts = self.decision_counts()
        lines = ["== simulation =="]
        lines.append(
            f"requests={self.requests_issued}  "
            f"location_updates={self.location_updates}"
        )
        for decision in Decision:
            if counts[decision]:
                lines.append(
                    f"  {decision.value:18s} {counts[decision]}"
                )
        if self.privacy_monitor is not None:
            lines.append("")
            lines.extend(self.privacy_monitor.summary_lines())
        snapshot = self.metrics_snapshot()
        if snapshot is not None:
            lines.append("")
            lines.append(render_summary(snapshot))
        return "\n".join(lines)


class LBSSimulation:
    """Drives a city's samples through the anonymizing Trusted Server."""

    def __init__(
        self,
        city: SyntheticCity,
        policy: PolicyTable | None = None,
        unlinker: UnlinkingProvider | None = None,
        scope: AnonymitySetScope = AnonymitySetScope.PER_LBQID,
        request_profile: RequestProfile | None = None,
        default_cloak: ToleranceConstraint | None = None,
        register_lbqids: bool = True,
        register_home_lbqids: bool = False,
        randomizer: "BoxRandomizer | None" = None,
        quiet_period: float = 0.0,
        telemetry: "Telemetry | TelemetryConfig | None" = None,
        slo_rules: "Iterable[SloRule | str] | None" = None,
        slo_window_s: float = 2 * 3600.0,
        session_store: "SessionStore | None" = None,
        audit: str = "full",
        seed: int = 97,
    ) -> None:
        self.city = city
        self.request_profile = request_profile or RequestProfile()
        self._rng = np.random.default_rng(seed)
        #: One telemetry pipeline shared by the store, the grid index,
        #: the anonymizer, and every LBQID monitor.
        self.telemetry = resolve_telemetry(telemetry)
        #: ``session_store`` picks the engine's per-user state backend
        #: (e.g. ``ShardedSessionStore(n_shards=4)``); ``audit`` bounds
        #: the audit trail (``"counts"`` drops per-request event
        #: retention for long / million-user runs).
        self.anonymizer = TrustedAnonymizer(
            store=TrajectoryStore(telemetry=self.telemetry),
            policy=policy,
            unlinker=unlinker,
            scope=scope,
            default_cloak=default_cloak,
            randomizer=randomizer,
            quiet_period=quiet_period,
            telemetry=self.telemetry,
            sessions=session_store,
            audit=audit,
        )
        #: The staged engine the replay actually drives (the anonymizer
        #: is its byte-compatible facade).
        self.engine: Engine = self.anonymizer.engine
        #: Online privacy auditing: subscribe a PrivacyMonitor to the
        #: shared pipeline.  Rules require telemetry — the monitor
        #: consumes the anonymizer's streamed decision events.
        self.privacy_monitor: PrivacyMonitor | None = None
        if slo_rules is not None:
            if not self.telemetry.enabled:
                raise ValueError(
                    "slo_rules require enabled telemetry; pass "
                    "telemetry=TelemetryConfig(enabled=True)"
                )
            self.privacy_monitor = PrivacyMonitor(
                store=self.anonymizer.store,
                rules=slo_rules,
                window_s=slo_window_s,
                homes=(
                    city.home_locations()
                    if hasattr(city, "home_locations")
                    else None
                ),
            ).attach(self.telemetry)
        self._own_lbqids = {}
        if register_lbqids:
            for commuter in city.commuters:
                lbqid = commuter.lbqid()
                self.anonymizer.register_lbqid(commuter.user_id, lbqid)
                self._own_lbqids[commuter.user_id] = lbqid
        if register_home_lbqids:
            # Declare the dwelling itself a quasi-identifier: every
            # request issued from home is then generalized (see
            # Commuter.home_lbqid and benchmark E6).
            for commuter in city.commuters:
                self.anonymizer.register_lbqid(
                    commuter.user_id, commuter.home_lbqid()
                )

    def run(self) -> SimulationReport:
        """Replay every sample in timestamp order; return the report."""
        profile = self.request_profile
        provider = ServiceProvider(profile.service)
        report = SimulationReport(
            anonymizer=self.anonymizer,
            providers={profile.service: provider},
            telemetry=self.telemetry,
            privacy_monitor=self.privacy_monitor,
        )
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.gauge(
                "sim.users", len(list(self.city.store.user_ids()))
            )
        with telemetry.span("sim.run", service=profile.service):
            # The timeline becomes one engine batch: requests drain the
            # buffered location updates before running, so every request
            # sees exactly the store state of one-at-a-time replay while
            # update runs pay a single store-version bump each.
            items = [
                BatchItem(
                    user_id=user_id,
                    location=sample,
                    service=(
                        profile.service
                        if self._is_request(user_id, sample)
                        else None
                    ),
                )
                for user_id, sample in self._timeline()
            ]
            report.location_updates = sum(
                1 for item in items if not item.is_request
            )
            for event in self.engine.process_batch(items):
                report.requests_issued += 1
                if event.forwarded:
                    provider.receive(event.request.sp_view())
        report.events = list(self.anonymizer.events)
        telemetry.gauge("sim.requests_issued", report.requests_issued)
        if self.privacy_monitor is not None:
            # Final roll-over so the last partial window is audited and
            # the slo.* gauges reflect end-of-run state.
            self.privacy_monitor.evaluate()
        telemetry.flush()
        return report

    def _timeline(self) -> list[tuple[int, STPoint]]:
        """All (user, sample) pairs of the city, sorted by time."""
        events = [
            (user_id, sample)
            for user_id in self.city.store.user_ids()
            for sample in self.city.store.history(user_id)
        ]
        events.sort(key=lambda item: item[1].t)
        return events

    def _is_request(self, user_id: int, sample: STPoint) -> bool:
        profile = self.request_profile
        lbqid = self._own_lbqids.get(user_id)
        if lbqid is not None and lbqid.element_matching(sample) is not None:
            return self._rng.random() < profile.anchor_request_probability
        return self._rng.random() < profile.background_probability
