"""The anonymous location-based service model (Section 3, Figure 1).

Users → Trusted Server → Service Providers.  The TS side is
:class:`~repro.core.anonymizer.TrustedAnonymizer`; this subpackage adds
the other two corners of Figure 1 and the event loop joining them:

* :mod:`repro.ts.providers` — service providers that receive
  ``(msgid, UserPseudonym, Area, TimeInterval, Data)`` messages, answer
  them, and keep the logs an attacker would mine;
* :mod:`repro.ts.simulation` — replays a synthetic city's location
  updates and service requests through the full pipeline and gathers the
  ground-truth audit trail for the experiments.
"""

from repro.ts.providers import ServiceProvider
from repro.ts.simulation import (
    LBSSimulation,
    RequestProfile,
    SimulationReport,
)

__all__ = [
    "ServiceProvider",
    "LBSSimulation",
    "RequestProfile",
    "SimulationReport",
]
