"""LBQID derivation from movement histories (Section 4's open problem).

"The derivation of a specific pattern or a set of patterns acting as
LBQIDs for a specific individual is an independent problem … the
derivation process will have to be based on statistical analysis of the
data about users movement history: If a certain pattern turns out to be
very common for many users, it is unlikely to be useful for identifying
any one of them.  … Since in our model it is the TS which stores …
historical trajectory data, it is probably a good candidate to offer
tools for LBQID definition."

This subpackage is that TS-side tool:

* :mod:`repro.mining.anchors` — find a user's *anchor places* (recurring
  dwell locations with characteristic daily time windows) from their
  PHL;
* :mod:`repro.mining.patterns` — assemble anchors into candidate LBQIDs
  (recurring anchor-visit sequences with estimated recurrence formulas);
* :mod:`repro.mining.scoring` — score a candidate's *distinctiveness*
  against the whole population: a pattern matched by many users' PHLs is
  a poor quasi-identifier and is filtered out.
"""

from repro.mining.anchors import Anchor, find_anchors
from repro.mining.patterns import MinedLBQID, mine_commute_lbqid
from repro.mining.scoring import distinctiveness, score_candidates

__all__ = [
    "Anchor",
    "find_anchors",
    "MinedLBQID",
    "mine_commute_lbqid",
    "distinctiveness",
    "score_candidates",
]
