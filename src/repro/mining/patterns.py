"""Candidate LBQID assembly from mined anchors.

Builds the paper's canonical pattern shape — the Example 1/2 commute
("the trip from the condominium where he lives to the building where he
works every morning and the trip back in the afternoon") — from a
history's home and work anchors, with windows derived from the observed
daily transition times and a recurrence formula estimated from how often
the full round trip actually occurred.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.lbqid import LBQID, LBQIDElement
from repro.core.matching import LBQIDMonitor
from repro.core.phl import PersonalHistory
from repro.granularity.recurrence import RecurrenceFormula, RecurrenceTerm
from repro.granularity.calendar import WEEKDAYS, WEEKS
from repro.granularity.timeline import (
    day_index,
    day_of_week,
    seconds_of_day,
    week_index,
)
from repro.granularity.unanchored import UnanchoredInterval
from repro.mining.anchors import Anchor, classify_home_work, find_anchors


@dataclass(frozen=True)
class MinedLBQID:
    """A derived candidate quasi-identifier with its provenance."""

    lbqid: LBQID
    home: Anchor
    work: Anchor
    #: Complete round-trip observations found in the owner's history.
    observations: int

    @property
    def supported(self) -> bool:
        """Whether the owner's own history satisfies the recurrence."""
        return self.lbqid.recurrence.minimum_observations <= self.observations


def _window(
    times_of_day: list[float], slack_hours: float = 0.25
) -> UnanchoredInterval | None:
    """Envelope of observed hours-of-day, padded by ``slack_hours``."""
    if not times_of_day:
        return None
    ordered = sorted(times_of_day)

    def quantile(fraction: float) -> float:
        index = min(
            len(ordered) - 1,
            max(0, math.ceil(fraction * len(ordered)) - 1),
        )
        return ordered[index]

    start = max(0.0, quantile(0.05) / 3600.0 - slack_hours)
    end = min(23.99, quantile(0.95) / 3600.0 + slack_hours)
    if end <= start:
        return None
    return UnanchoredInterval.from_hours(start, end)


def _daily_transitions(
    history: PersonalHistory, home: Anchor, work: Anchor
) -> dict[str, list[float]]:
    """Per-workday transition times (seconds of day) between anchors."""
    per_day: dict[int, dict[str, float]] = {}
    for point in history:
        day = day_index(point.t)
        if day_of_week(point.t) >= 5:
            continue
        offset = seconds_of_day(point.t)
        record = per_day.setdefault(day, {})
        if home.area.contains(point.point):
            if offset < 12 * 3600:
                record["home_am"] = max(
                    record.get("home_am", 0.0), offset
                )
            else:
                record.setdefault("home_pm", offset)
                record["home_pm"] = min(record["home_pm"], offset)
        elif work.area.contains(point.point):
            record.setdefault("work_in", offset)
            record["work_in"] = min(record["work_in"], offset)
            record["work_out"] = max(
                record.get("work_out", 0.0), offset
            )
    transitions: dict[str, list[float]] = {
        "home_am": [],
        "work_in": [],
        "work_out": [],
        "home_pm": [],
    }
    for record in per_day.values():
        if {"home_am", "work_in", "work_out", "home_pm"} <= set(record):
            for key in transitions:
                transitions[key].append(record[key])
    return transitions


def _estimate_recurrence(
    elements: list[LBQIDElement], history: PersonalHistory
) -> tuple[RecurrenceFormula, int]:
    """Count complete observations and fit ``r1.Weekdays * r2.Weeks``.

    ``r1`` is the median number of observed round-trip weekdays per
    active week (clamped to 1..5); ``r2`` the number of weeks achieving
    at least ``r1``.
    """
    # Probe with ``1.Weekdays``: no repetition requirement, but the same
    # single-weekday confinement the fitted formula will impose — so the
    # observations counted here are exactly the ones the real matcher
    # will see.
    probe = LBQID(
        "probe", elements, RecurrenceFormula([RecurrenceTerm(1, WEEKDAYS)])
    )
    monitor = LBQIDMonitor(probe)
    for point in history:
        monitor.feed(point)
    observations = monitor.observations
    if not observations:
        return RecurrenceFormula(), 0
    weekdays_per_week: dict[int, set[int]] = {}
    for observation in observations:
        start = observation[0]
        weekdays_per_week.setdefault(week_index(start), set()).add(
            day_index(start)
        )
    counts = sorted(len(days) for days in weekdays_per_week.values())
    r1 = max(1, min(5, counts[len(counts) // 2]))
    r2 = sum(1 for days in weekdays_per_week.values() if len(days) >= r1)
    r2 = max(1, r2)
    formula = RecurrenceFormula(
        [RecurrenceTerm(r1, WEEKDAYS), RecurrenceTerm(r2, WEEKS)]
    ).normalized()
    return formula, len(observations)


def mine_commute_lbqid(
    history: PersonalHistory,
    name: str | None = None,
    cell_size: float = 150.0,
    min_days: int = 3,
) -> MinedLBQID | None:
    """Derive the commute LBQID of one user from their PHL.

    Returns ``None`` when the history has no home/work anchor pair or
    no complete round trips — i.e. the user has no commute-shaped
    quasi-identifier to protect.
    """
    anchors = find_anchors(history, cell_size=cell_size, min_days=min_days)
    home, work = classify_home_work(anchors)
    if home is None or work is None:
        return None
    transitions = _daily_transitions(history, home, work)
    windows = {
        key: _window(values) for key, values in transitions.items()
    }
    if any(window is None for window in windows.values()):
        return None
    elements = [
        LBQIDElement(home.area, windows["home_am"], "home-morning"),
        LBQIDElement(work.area, windows["work_in"], "work-arrive"),
        LBQIDElement(work.area, windows["work_out"], "work-leave"),
        LBQIDElement(home.area, windows["home_pm"], "home-evening"),
    ]
    recurrence, observations = _estimate_recurrence(elements, history)
    if observations == 0:
        return None
    lbqid = LBQID(
        name or f"mined-commute-u{history.user_id}",
        elements,
        recurrence,
    )
    return MinedLBQID(
        lbqid=lbqid, home=home, work=work, observations=observations
    )
