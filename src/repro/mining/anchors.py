"""Anchor-place detection from a Personal History of Locations.

An *anchor* is a place a user returns to on many different days within a
consistent daily time window — a home, a workplace, a gym.  Anchors are
the building blocks of LBQIDs: each LBQID element's Area is an anchor's
spatial footprint and its U-TimeInterval the anchor's characteristic
window.

Detection is deliberately simple and transparent (a TS tool a user must
be able to audit): samples are snapped to a uniform grid; for every
(cell, day) the dwell time is accumulated; a cell visited on at least
``min_days`` distinct days with enough total dwell becomes an anchor,
whose window is the interquantile envelope of its daily visit times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.phl import PersonalHistory
from repro.geometry.point import Point
from repro.geometry.region import Rect
from repro.granularity.timeline import DAY, day_index, seconds_of_day

Cell = tuple[int, int]


@dataclass(frozen=True)
class Anchor:
    """A recurring dwell place with a characteristic daily window."""

    center: Point
    area: Rect
    #: Hours-of-day envelope of visits, e.g. (7.1, 8.3).
    window_hours: tuple[float, float]
    #: Distinct days on which the anchor was visited.
    days_observed: int
    #: Total samples attributed to the anchor.
    samples: int

    @property
    def daily_presence_hours(self) -> float:
        """Width of the characteristic window, in hours."""
        return self.window_hours[1] - self.window_hours[0]


def _quantile(ordered: list[float], fraction: float) -> float:
    if not ordered:
        raise ValueError("empty data")
    index = min(
        len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1)
    )
    return ordered[index]


def find_anchors(
    history: PersonalHistory,
    cell_size: float = 150.0,
    min_days: int = 3,
    min_samples: int = 6,
    window_quantiles: tuple[float, float] = (0.1, 0.9),
    margin: float = 60.0,
) -> list[Anchor]:
    """Detect a user's anchor places.

    Returns anchors sorted by sample count (most-lived-in first).
    ``margin`` pads the grid cell into the anchor's Area so boundary
    jitter (GPS noise, curb-side sampling) stays inside.
    """
    if cell_size <= 0:
        raise ValueError(f"cell_size must be positive, got {cell_size}")
    by_cell: dict[Cell, list] = {}
    for point in history:
        cell = (
            math.floor(point.x / cell_size),
            math.floor(point.y / cell_size),
        )
        by_cell.setdefault(cell, []).append(point)

    anchors = []
    for cell, points in by_cell.items():
        days = {day_index(p.t) for p in points}
        if len(days) < min_days or len(points) < min_samples:
            continue
        offsets = sorted(seconds_of_day(p.t) for p in points)
        lo_q, hi_q = window_quantiles
        window = (
            _quantile(offsets, lo_q) / 3600.0,
            _quantile(offsets, hi_q) / 3600.0,
        )
        center = Point(
            sum(p.x for p in points) / len(points),
            sum(p.y for p in points) / len(points),
        )
        area = Rect(
            cell[0] * cell_size - margin,
            cell[1] * cell_size - margin,
            (cell[0] + 1) * cell_size + margin,
            (cell[1] + 1) * cell_size + margin,
        )
        anchors.append(
            Anchor(
                center=center,
                area=area,
                window_hours=window,
                days_observed=len(days),
                samples=len(points),
            )
        )
    anchors.sort(key=lambda a: a.samples, reverse=True)
    return anchors


def classify_home_work(
    anchors: list[Anchor],
) -> tuple[Anchor | None, Anchor | None]:
    """Pick the home-like and work-like anchors, if present.

    Home is the anchor whose window covers the night/evening side of
    the day (earliest start or latest end); work is the most-visited
    anchor whose window sits inside working hours.  Either may be
    ``None`` when no anchor qualifies.
    """
    home = None
    work = None
    for anchor in anchors:
        start, end = anchor.window_hours
        looks_like_home = start <= 7.0 or end >= 19.0
        looks_like_work = 7.0 <= start and end <= 19.0
        if looks_like_home and home is None:
            home = anchor
        elif looks_like_work and work is None:
            work = anchor
        if home is not None and work is not None:
            break
    return home, work


def span_days(history: PersonalHistory) -> int:
    """Number of calendar days the history covers (at least 1)."""
    if len(history) == 0:
        return 0
    first = history[0].t
    last = history[len(history) - 1].t
    return int(last // DAY) - int(first // DAY) + 1
