"""Distinctiveness scoring for candidate LBQIDs.

Section 4: "If a certain pattern turns out to be very common for many
users, it is unlikely to be useful for identifying any one of them."  A
candidate is a good quasi-identifier exactly when *few* users' histories
match it — then observing it narrows the suspect set — so the TS scores
each candidate by how many users in the population satisfy it and keeps
only the distinctive ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lbqid import LBQID
from repro.core.matching import request_set_matches
from repro.mining.patterns import MinedLBQID
from repro.mod.store import TrajectoryStore


@dataclass(frozen=True)
class DistinctivenessScore:
    """How identifying a candidate pattern is within a population."""

    lbqid_name: str
    #: Users (including the owner) whose full history matches.
    matching_users: int
    population: int

    @property
    def matching_fraction(self) -> float:
        if self.population == 0:
            return 0.0
        return self.matching_users / self.population

    @property
    def is_quasi_identifier(self) -> bool:
        """A pattern shared by a single user pins that user down."""
        return self.matching_users == 1


def distinctiveness(
    lbqid: LBQID, store: TrajectoryStore, owner: int | None = None
) -> DistinctivenessScore:
    """Count the users whose PHL satisfies the candidate.

    ``owner`` is counted like everyone else (the attacker does not know
    who the pattern came from); it is accepted only to assert, in
    diagnostics, that at least the owner matches.
    """
    matching = 0
    for user_id in store.user_ids():
        if request_set_matches(lbqid, store.history(user_id).points):
            matching += 1
    return DistinctivenessScore(
        lbqid_name=lbqid.name,
        matching_users=matching,
        population=len(store),
    )


def score_candidates(
    candidates: list[MinedLBQID],
    store: TrajectoryStore,
    max_matching_fraction: float = 0.1,
) -> list[tuple[MinedLBQID, DistinctivenessScore]]:
    """Score candidates and keep the distinctive ones.

    Candidates matched by more than ``max_matching_fraction`` of the
    population are discarded — they are common behaviour, not
    quasi-identifiers.  A candidate matching exactly one user is always
    kept: a unique pattern identifies its owner however small the
    population.  The result is sorted most-distinctive first.
    """
    threshold = max(1.0, max_matching_fraction * len(store))
    kept = []
    for candidate in candidates:
        score = distinctiveness(candidate.lbqid, store)
        if score.matching_users <= threshold:
            kept.append((candidate, score))
    kept.sort(key=lambda item: item[1].matching_users)
    return kept
