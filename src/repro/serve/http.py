"""HTTP/1.1 transport over the same strict codec and gate.

The NDJSON protocol is transport-agnostic by construction — frames are
lines, replies correlate by ``id`` — so an HTTP binding is a framing
exercise, not a new protocol: ``POST /v1/frame`` carries one or more
request frames as an NDJSON body, and the ``200`` response body carries
exactly one reply line per request line, in order.  Connections are
keep-alive, so a client pays the HTTP header tax per *batch*, not per
operation; :class:`HttpServeClient` exploits that by coalescing every
frame queued while a POST is in flight into the next one.

Everything else is shared with the TCP transport, deliberately:

* the same :func:`~repro.serve.protocol.decode_request` /
  :func:`~repro.serve.protocol.encode_frame` strict codec judges every
  line (an undecodable line earns its :class:`ErrorReply` *line*, not
  an HTTP error — the body stays length-delimited, so unlike raw TCP
  there is a safe resynchronization point at the next newline);
* the same hello/welcome handshake starts every connection (first
  frame of the first POST must be ``hello``);
* the same :class:`~repro.serve.gate.ConnectionGate` screens hellos
  and charges servable ops *before* :meth:`TrustedServer.submit`, so
  gate rejections never touch a sequencer over this transport either;
* the same :func:`~repro.serve.transports.server_ssl_context` /
  :func:`~repro.serve.transports.client_ssl_context` upgrade it to
  HTTPS.

HTTP status codes are reserved for *transport* misuse — ``404``/``405``
for the wrong target or method, ``411`` for a missing Content-Length,
``413`` for an oversized body, ``400`` for unparseable framing — and
all of them close the connection.  Application outcomes (decisions,
sheds, gate rejections) always ride NDJSON lines in a ``200`` body.
"""

from __future__ import annotations

import asyncio
import ssl
from typing import Set

from repro.obs.config import Telemetry
from repro.serve.gate import ConnectionGate, GatePass
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Frame,
    HealthReply,
    HealthRequest,
    Hello,
    LocationUpdate,
    MetricsReply,
    MetricsRequest,
    ProtocolError,
    ServiceRequest,
    StatsReply,
    StatsRequest,
    TracesReply,
    TracesRequest,
    Welcome,
    decode_reply,
    decode_request,
    encode_frame,
)
from repro.serve.client import ServeClientError
from repro.serve.server import TrustedServer

TARGET = "/v1/frame"
#: Frames the client coalesces into one POST (bounds body size).
MAX_BATCH_FRAMES = 64


class _HttpError(Exception):
    """A transport-level refusal: respond with ``status`` and close."""

    def __init__(self, status: int, reason: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.reason = reason
        self.detail = detail


def _response(
    status: int,
    reason: str,
    body: bytes,
    keep_alive: bool,
) -> bytes:
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/x-ndjson\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


async def _read_headers(
    reader: asyncio.StreamReader,
) -> "tuple[str, str, dict[str, str]] | None":
    """Parse one request head; None on clean EOF before any bytes."""
    try:
        request_line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise _HttpError(400, "Bad Request", "request line too long")
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, "Bad Request", "malformed request line")
    method, target = parts[0], parts[1]
    headers: dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise _HttpError(400, "Bad Request", "header line too long")
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise _HttpError(400, "Bad Request", "truncated headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _HttpError(400, "Bad Request", "malformed header")
        headers[name.strip().lower()] = value.strip()
    return method, target, headers


class HttpTransport:
    """The HTTP/1.1 daemon frontend (see module doc).

    Mirrors :class:`~repro.serve.transports.TcpTransport`'s surface —
    ``start()``/``stop()``, optional ``ssl_context`` and ``gate`` —
    over any :class:`TrustedServer`-shaped backend (single sequencer,
    shard router, worker supervisor).
    """

    def __init__(
        self,
        server: TrustedServer,
        host: str = "127.0.0.1",
        port: int = 0,
        ssl_context: "ssl.SSLContext | None" = None,
        gate: "ConnectionGate | None" = None,
    ) -> None:
        self.server = server
        self.host = host
        self.port = port
        self.ssl_context = ssl_context
        self.gate = gate
        self.max_body_bytes = server.config.max_frame_bytes * 64
        self._listener: asyncio.AbstractServer | None = None
        self._handlers: Set["asyncio.Task[None]"] = set()

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        await self.server.start()
        self._listener = await asyncio.start_server(
            self._handle,
            self.host,
            self.port,
            limit=self.server.config.max_frame_bytes,
            ssl=self.ssl_context,
        )
        sockname = self._listener.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Stop listening and wait for open connections to finish."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        if self._handlers:
            await asyncio.gather(
                *tuple(self._handlers), return_exceptions=True
            )

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        peer = writer.get_extra_info("peername")
        session = self.server.open_session(client=f"http:{peer}")
        state = _ConnectionState()
        try:
            while True:
                try:
                    head = await _read_headers(reader)
                    if head is None:
                        break
                    body = await self._read_body(reader, head)
                except _HttpError as exc:
                    self.server.note_protocol_error()
                    writer.write(
                        _response(
                            exc.status,
                            exc.reason,
                            exc.detail.encode("ascii") + b"\n",
                            keep_alive=False,
                        )
                    )
                    break
                except asyncio.IncompleteReadError:
                    break
                reply_body, keep_alive = await self._serve_body(
                    session, state, body
                )
                writer.write(
                    _response(200, "OK", reply_body, keep_alive)
                )
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
                if not keep_alive:
                    break
        finally:
            if self.gate is not None:
                self.gate.release(state.ticket)
            self.server.close_session(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_body(
        self,
        reader: asyncio.StreamReader,
        head: "tuple[str, str, dict[str, str]]",
    ) -> bytes:
        method, target, headers = head
        if method != "POST":
            raise _HttpError(
                405, "Method Not Allowed", "only POST is served"
            )
        if target != TARGET:
            raise _HttpError(
                404, "Not Found", f"unknown target (use {TARGET})"
            )
        length_text = headers.get("content-length")
        if length_text is None:
            raise _HttpError(
                411, "Length Required", "Content-Length is required"
            )
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(
                400, "Bad Request", "unparseable Content-Length"
            )
        if length < 0:
            raise _HttpError(
                400, "Bad Request", "negative Content-Length"
            )
        if length > self.max_body_bytes:
            raise _HttpError(
                413,
                "Payload Too Large",
                f"body exceeds the {self.max_body_bytes}-byte limit",
            )
        return await reader.readexactly(length)

    async def _serve_body(
        self,
        session,
        state: "_ConnectionState",
        body: bytes,
    ) -> tuple[bytes, bool]:
        """One POST body in, one NDJSON reply body (+ keep-alive?) out.

        Lines are judged in order; admitted servable ops are submitted
        as tasks (so a batch pipelines through the sequencer exactly
        like pipelined TCP frames) and their replies land back on the
        line positions the requests came from.
        """
        max_bytes = self.server.config.max_frame_bytes
        slots: "list[Frame | asyncio.Task[Frame]]" = []
        keep_alive = True
        for line in body.split(b"\n"):
            if not line.strip():
                continue
            if not keep_alive:
                # A fatal line (gate/handshake refusal) voids the rest
                # of the batch; unanswered lines are dropped with the
                # connection, exactly like post-refusal TCP frames.
                break
            if len(line) > max_bytes:
                self.server.note_protocol_error()
                slots.append(
                    ErrorReply(
                        id=None,
                        code="frame_too_large",
                        message=(
                            f"frame exceeds the {max_bytes}-byte limit"
                        ),
                    )
                )
                continue
            try:
                frame = decode_request(line + b"\n", max_bytes)
            except ProtocolError as exc:
                self.server.note_protocol_error()
                slots.append(
                    ErrorReply(
                        id=None, code=exc.code, message=exc.message
                    )
                )
                continue
            if isinstance(frame, Hello):
                if self.gate is not None:
                    verdict = self.gate.admit_connection(frame)
                    if isinstance(verdict, ErrorReply):
                        slots.append(verdict)
                        keep_alive = False
                        continue
                    self.gate.release(state.ticket)
                    state.ticket = verdict
                reply = self.server.welcome(session, frame)
                slots.append(reply)
                if not isinstance(reply, Welcome):
                    keep_alive = False
                    continue
                state.greeted = True
                continue
            if not state.greeted:
                self.server.note_protocol_error()
                slots.append(
                    ErrorReply(
                        id=getattr(frame, "id", None),
                        code="hello_required",
                        message="first frame must be 'hello'",
                    )
                )
                continue
            if (
                self.gate is not None
                and state.ticket is not None
                and isinstance(frame, (LocationUpdate, ServiceRequest))
            ):
                rejection = self.gate.admit_op(state.ticket, frame.id)
                if rejection is not None:
                    slots.append(rejection)
                    continue
            slots.append(
                asyncio.create_task(self.server.submit(session, frame))
            )
        lines: "list[bytes]" = []
        for slot in slots:
            reply = await slot if isinstance(slot, asyncio.Task) else slot
            lines.append(encode_frame(reply, max_bytes))
        return b"".join(lines), keep_alive


class _ConnectionState:
    """Per-connection handshake/gate state of the HTTP handler."""

    __slots__ = ("greeted", "ticket")

    def __init__(self) -> None:
        self.greeted = False
        self.ticket: "GatePass | None" = None


# ---------------------------------------------------------------------
# client
# ---------------------------------------------------------------------


async def _read_response(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> tuple[int, bytes]:
    """Read one HTTP response; returns ``(status, body)``."""
    status_line = await reader.readline()
    if not status_line:
        raise ServeClientError("server closed mid-response")
    parts = status_line.decode("latin-1").strip().split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ServeClientError(f"malformed status line: {status_line!r}")
    status = int(parts[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ServeClientError("truncated response headers")
        name, _sep, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    if length > max_body_bytes:
        raise ServeClientError(f"response body too large: {length}")
    body = await reader.readexactly(length) if length else b""
    return status, body


class HttpServeClient:
    """Pipelined client for :class:`HttpTransport` (see module doc).

    Same call surface as :class:`~repro.serve.client.ServeClient` —
    ``post`` returns a reply future, plus the awaitable introspection
    wrappers — so loadgen and the fleet scraper drive either transport
    through one facade.  Batching is automatic: one background sender
    runs one POST at a time and sweeps everything posted in the
    meantime (up to :data:`MAX_BATCH_FRAMES`) into the next body.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        welcome: Welcome,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.welcome = welcome
        self._max_frame_bytes = max_frame_bytes
        self._telemetry = telemetry
        #: Client-side trace minting is a TCP-client feature; over
        #: HTTP the server still traces everything behind the POST.
        self.trace_enabled = False
        self._outbox: "list[tuple[Frame, asyncio.Future[Frame]]]" = []
        self._wake = asyncio.Event()
        self._next_id = 0
        self._closed = False
        self._sender_task = asyncio.create_task(
            self._send_loop(), name="repro-serve-http-sender"
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        client: str = "client",
        max_frame_bytes: int = MAX_FRAME_BYTES,
        telemetry: "Telemetry | None" = None,
        trace: bool = False,
        ssl: "ssl.SSLContext | None" = None,
        token: "str | None" = None,
    ) -> "HttpServeClient":
        """Open a keep-alive connection; hello rides the first POST."""
        del trace  # accepted for signature parity with ServeClient
        reader, writer = await asyncio.open_connection(
            host, port, limit=max_frame_bytes, ssl=ssl
        )
        hello = encode_frame(
            Hello(client=client, token=token), max_frame_bytes
        )
        writer.write(
            _post_bytes(host, port, hello)
        )
        await writer.drain()
        status, body = await _read_response(
            reader, max_frame_bytes * 64
        )
        lines = [ln for ln in body.split(b"\n") if ln.strip()]
        if status != 200 or not lines:
            writer.close()
            raise ServeClientError(
                f"handshake failed: HTTP {status}: {body[:200]!r}"
            )
        reply = decode_reply(lines[0] + b"\n", max_frame_bytes)
        if not isinstance(reply, Welcome):
            writer.close()
            rejection = reply if isinstance(reply, ErrorReply) else None
            raise ServeClientError(
                f"handshake rejected: {reply!r}", reply=rejection
            )
        return cls(
            reader, writer, reply, max_frame_bytes, telemetry=telemetry
        )

    # -- pipelined sends ----------------------------------------------

    def post(self, frame: Frame) -> "asyncio.Future[Frame]":
        """Queue one frame for the next POST; future gets its reply."""
        if self._closed:
            raise ServeClientError("client is closed")
        future: "asyncio.Future[Frame]" = (
            asyncio.get_running_loop().create_future()
        )
        self._outbox.append((frame, future))
        self._wake.set()
        return future

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    async def _send_loop(self) -> None:
        try:
            while True:
                await self._wake.wait()
                if not self._outbox:
                    self._wake.clear()
                    continue
                batch = self._outbox[:MAX_BATCH_FRAMES]
                del self._outbox[: len(batch)]
                if not self._outbox:
                    self._wake.clear()
                await self._post_batch(batch)
        except asyncio.CancelledError:
            pass

    async def _post_batch(
        self, batch: "list[tuple[Frame, asyncio.Future[Frame]]]"
    ) -> None:
        try:
            body = b"".join(
                encode_frame(frame, self._max_frame_bytes)
                for frame, _future in batch
            )
            self._writer.write(_post_bytes(None, None, body))
            await self._writer.drain()
            status, reply_body = await _read_response(
                self._reader, self._max_frame_bytes * 64
            )
            if status != 200:
                raise ServeClientError(
                    f"HTTP {status}: {reply_body[:200]!r}"
                )
            lines = [
                line
                for line in reply_body.split(b"\n")
                if line.strip()
            ]
            if len(lines) != len(batch):
                raise ServeClientError(
                    f"reply body holds {len(lines)} lines for a "
                    f"{len(batch)}-frame batch"
                )
            # Replies come back on the request lines' positions (the
            # transport guarantees order), so correlation is the zip.
            for (_frame, future), line in zip(batch, lines):
                if not future.done():
                    future.set_result(
                        decode_reply(
                            line + b"\n", self._max_frame_bytes
                        )
                    )
        except (
            ConnectionError,
            OSError,
            ProtocolError,
            asyncio.IncompleteReadError,
        ) as exc:
            error = (
                exc
                if isinstance(exc, ServeClientError)
                else ServeClientError(f"transport failure: {exc}")
            )
            for _frame, future in batch:
                if not future.done():
                    future.set_exception(error)

    # -- awaitable wrappers (fleet scrape surface) --------------------

    async def _roundtrip(self, frame: Frame) -> Frame:
        return await self.post(frame)

    async def stats(self) -> StatsReply:
        reply = await self._roundtrip(StatsRequest(id=self.next_id()))
        if not isinstance(reply, StatsReply):
            raise ServeClientError(f"unexpected stats reply: {reply!r}")
        return reply

    async def drain(self) -> DrainReply:
        reply = await self._roundtrip(DrainRequest(id=self.next_id()))
        if not isinstance(reply, DrainReply):
            raise ServeClientError(f"unexpected drain reply: {reply!r}")
        return reply

    async def metrics(self, format: str = "prometheus") -> MetricsReply:
        reply = await self._roundtrip(
            MetricsRequest(id=self.next_id(), format=format)
        )
        if not isinstance(reply, MetricsReply):
            raise ServeClientError(f"unexpected metrics reply: {reply!r}")
        return reply

    async def health(self) -> HealthReply:
        reply = await self._roundtrip(HealthRequest(id=self.next_id()))
        if not isinstance(reply, HealthReply):
            raise ServeClientError(f"unexpected health reply: {reply!r}")
        return reply

    async def traces(self, limit: int = 20) -> TracesReply:
        reply = await self._roundtrip(
            TracesRequest(id=self.next_id(), limit=limit)
        )
        if not isinstance(reply, TracesReply):
            raise ServeClientError(f"unexpected traces reply: {reply!r}")
        return reply

    @property
    def pending(self) -> int:
        """Frames queued but not yet answered."""
        return len(self._outbox)

    async def close(self) -> None:
        """Close the connection; queued futures fail."""
        if self._closed:
            return
        self._closed = True
        self._sender_task.cancel()
        try:
            await self._sender_task
        except asyncio.CancelledError:
            pass
        outbox, self._outbox = self._outbox, []
        error = ServeClientError("client closed with frames queued")
        for _frame, future in outbox:
            if not future.done():
                future.set_exception(error)
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _post_bytes(
    host: "str | None", port: "int | None", body: bytes
) -> bytes:
    """One ``POST /v1/frame`` request (Host is optional on keep-alive)."""
    host_header = (
        f"Host: {host}:{port}\r\n" if host is not None else ""
    )
    head = (
        f"POST {TARGET} HTTP/1.1\r\n"
        f"{host_header}"
        "Content-Type: application/x-ndjson\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body
