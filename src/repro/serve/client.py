"""Async client for the Trusted Server wire protocol.

:class:`ServeClient` speaks the NDJSON protocol over TCP with full
pipelining: :meth:`post` writes a frame synchronously (so the on-wire
order of a single client is exactly its call order) and returns a
future resolved by a background reader task when the correlated reply
arrives.  The awaitable convenience wrappers (:meth:`request`,
:meth:`update`, :meth:`stats`, :meth:`drain`) post and wait.

Shed replies (``code="overloaded"``) are returned, not raised — they
are the server's explicit backpressure signal and carry the
``retry_after`` hint; only transport failures and handshake rejections
raise.  The awaitable wrappers optionally retry sheds with bounded
exponential backoff honoring that hint (``retries=N``).

Distributed tracing: pass an enabled ``telemetry`` and ``trace=True``
to :meth:`connect` and every sampled request mints a ``client.request``
root span whose context rides the frame's ``trace`` field — the root
of the causal tree the server's admission/queue/dispatch/engine spans
hang under.  Tracing is negotiated in hello/welcome; when either side
declines, the client sends no contexts and pays no tracing cost.
"""

from __future__ import annotations

import asyncio
import ssl as _ssl

from repro.obs.config import Telemetry
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Frame,
    HealthReply,
    HealthRequest,
    Hello,
    LocationUpdate,
    MetricsReply,
    MetricsRequest,
    ProfileReply,
    ProfileRequest,
    ProtocolError,
    ServiceRequest,
    StatsReply,
    StatsRequest,
    TracesReply,
    TracesRequest,
    Welcome,
    decode_reply,
    encode_frame,
)
from repro.obs.tracing import Span


class ServeClientError(ConnectionError):
    """Handshake failure or transport loss (not a shed).

    When the failure was a typed server rejection (a refused
    handshake, e.g. the gate's ``bad_token`` or ``connection_limit``),
    ``reply`` carries the decoded :class:`ErrorReply` so callers can
    branch on ``reply.code`` instead of parsing the message.
    """

    def __init__(
        self, message: str, reply: "ErrorReply | None" = None
    ) -> None:
        super().__init__(message)
        self.reply = reply


class ServeClient:
    """One pipelined NDJSON connection to a Trusted Server."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        welcome: Welcome,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        telemetry: Telemetry | None = None,
        connect_args: "dict | None" = None,
        reconnect: int = 0,
        reconnect_base_s: float = 0.05,
        reconnect_cap_s: float = 2.0,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.welcome = welcome
        self._max_frame_bytes = max_frame_bytes
        self._telemetry = telemetry
        #: kwargs for :meth:`_handshake`, kept so a dropped socket can
        #: be re-dialed in place (None disables reconnection).
        self._connect_args = connect_args
        self._reconnect_limit = reconnect
        self._reconnect_base_s = reconnect_base_s
        self._reconnect_cap_s = reconnect_cap_s
        self._reconnect_lock = asyncio.Lock()
        #: Bumped on every successful reconnect so concurrent senders
        #: that all saw the same dead socket re-dial only once.
        self._generation = 0
        #: Total successful reconnects over this client's lifetime.
        self.reconnects = 0
        #: True only when tracing was negotiated (hello asked, welcome
        #: agreed) *and* this client can record spans locally.
        self.trace_enabled = bool(
            welcome.trace
            and telemetry is not None
            and telemetry.enabled
        )
        self._pending: dict[int, "asyncio.Future[Frame]"] = {}
        self._next_id = 0
        self._closed = False
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="repro-serve-client-reader"
        )

    @staticmethod
    async def _handshake(
        host: str,
        port: int,
        client: str,
        max_frame_bytes: int,
        want_trace: bool,
        token: "str | None",
        ssl: "_ssl.SSLContext | None",
    ) -> "tuple[asyncio.StreamReader, asyncio.StreamWriter, Welcome]":
        """Dial, send hello, await welcome; one connection attempt.

        A typed server rejection (the gate's ``bad_token`` /
        ``connection_limit``, or a version refusal) raises
        :class:`ServeClientError` with the decoded reply attached —
        callers must not retry those, only transport-level failures.
        """
        reader, writer = await asyncio.open_connection(
            host, port, limit=max_frame_bytes, ssl=ssl
        )
        writer.write(
            encode_frame(
                Hello(client=client, trace=want_trace, token=token),
                max_frame_bytes,
            )
        )
        await writer.drain()
        line = await reader.readline()
        if not line:
            writer.close()
            raise ServeClientError("server closed during handshake")
        reply = decode_reply(line, max_frame_bytes)
        if not isinstance(reply, Welcome):
            writer.close()
            rejection = reply if isinstance(reply, ErrorReply) else None
            raise ServeClientError(
                f"handshake rejected: {reply!r}", reply=rejection
            )
        return reader, writer, reply

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        client: str = "client",
        max_frame_bytes: int = MAX_FRAME_BYTES,
        telemetry: Telemetry | None = None,
        trace: bool = False,
        ssl: "_ssl.SSLContext | None" = None,
        token: "str | None" = None,
        reconnect: int = 0,
        reconnect_base_s: float = 0.05,
        reconnect_cap_s: float = 2.0,
    ) -> "ServeClient":
        """Open a connection and perform the version handshake.

        ``trace=True`` (with an enabled ``telemetry``) asks the server
        to accept trace contexts; the Welcome's ``trace`` echo decides
        whether they actually flow.  ``ssl`` (usually
        :func:`repro.serve.transports.client_ssl_context`) upgrades the
        dial to TLS; ``token`` rides the hello for the server's gate.

        ``reconnect=N`` makes the client survive a dropped socket
        (connection refused/reset, e.g. a worker respawning): the
        initial dial and every awaitable send re-dial up to N times
        with bounded exponential backoff.  Typed rejections
        (``bad_token``…) never retry.
        """
        want_trace = bool(
            trace and telemetry is not None and telemetry.enabled
        )
        connect_args = dict(
            host=host,
            port=port,
            client=client,
            max_frame_bytes=max_frame_bytes,
            want_trace=want_trace,
            token=token,
            ssl=ssl,
        )
        attempt = 0
        while True:
            try:
                reader, writer, welcome = await cls._handshake(
                    **connect_args
                )
                break
            except (ConnectionError, OSError) as exc:
                if (
                    getattr(exc, "reply", None) is not None
                    or attempt >= reconnect
                ):
                    raise
                await asyncio.sleep(
                    min(
                        reconnect_cap_s,
                        reconnect_base_s * 2.0**attempt,
                    )
                )
                attempt += 1
        return cls(
            reader,
            writer,
            welcome,
            max_frame_bytes,
            telemetry=telemetry,
            connect_args=connect_args,
            reconnect=reconnect,
            reconnect_base_s=reconnect_base_s,
            reconnect_cap_s=reconnect_cap_s,
        )

    # -- pipelined sends ----------------------------------------------

    def post(self, frame: Frame) -> "asyncio.Future[Frame]":
        """Write one frame now; future resolves with its reply."""
        if self._closed:
            raise ServeClientError("client is closed")
        future: "asyncio.Future[Frame]" = (
            asyncio.get_running_loop().create_future()
        )
        frame_id = getattr(frame, "id", None)
        if frame_id is not None:
            self._pending[int(frame_id)] = future
        self._writer.write(encode_frame(frame, self._max_frame_bytes))
        if frame_id is None:
            future.set_result(
                ErrorReply(
                    id=None,
                    code="bad_frame",
                    message="frame has no correlation id",
                )
            )
        return future

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _mint_trace(self, op: str) -> "tuple[str | None, Span | None]":
        """Wire context (+ root span when recording) for one send.

        Returns ``(wire, span)``: ``wire`` goes on the frame's
        ``trace`` field, ``span`` is the open ``client.request`` root
        to finish when the reply lands.  With no sink attached the
        root span record could never be delivered, so only the wire
        identity is minted — the server still records exemplars and
        introspection entries for the trace.
        """
        if not self.trace_enabled:
            return None, None
        assert self._telemetry is not None
        tracer = self._telemetry.tracer
        if not tracer.sample():
            return None, None
        if not tracer.sinks:
            return tracer.new_wire(), None
        span = self._telemetry.start_span("client.request", op=op)
        if not isinstance(span, Span):
            return None, None
        return f"{span.trace_id}-{span.span_id}", span

    @staticmethod
    def _finish_span(
        span: Span, future: "asyncio.Future[Frame]"
    ) -> None:
        """Close the client root span when its reply lands."""
        if future.cancelled() or future.exception() is not None:
            span.annotate(error="transport")
        else:
            reply = future.result()
            decision = getattr(reply, "decision", None)
            if decision is not None:
                span.annotate(decision=decision)
            elif isinstance(reply, ErrorReply):
                span.annotate(error=reply.code)
        span.end()

    def post_request(
        self,
        user_id: int,
        x: float,
        y: float,
        t: float,
        service: str = "default",
    ) -> "asyncio.Future[Frame]":
        """Pipeline one service request (open-loop send)."""
        wire, span = self._mint_trace("request")
        future = self.post(
            ServiceRequest(
                id=self.next_id(),
                user_id=user_id,
                x=x,
                y=y,
                t=t,
                service=service,
                trace=wire,
            )
        )
        if span is not None:
            future.add_done_callback(
                lambda f, s=span: self._finish_span(s, f)
            )
        return future

    def post_update(
        self, user_id: int, x: float, y: float, t: float
    ) -> "asyncio.Future[Frame]":
        """Pipeline one location update."""
        wire, span = self._mint_trace("update")
        future = self.post(
            LocationUpdate(
                id=self.next_id(),
                user_id=user_id,
                x=x,
                y=y,
                t=t,
                trace=wire,
            )
        )
        if span is not None:
            future.add_done_callback(
                lambda f, s=span: self._finish_span(s, f)
            )
        return future

    # -- awaitable wrappers -------------------------------------------

    async def request(
        self,
        user_id: int,
        x: float,
        y: float,
        t: float,
        service: str = "default",
        retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 5.0,
    ) -> Frame:
        """Issue one service request; returns DecisionReply or ErrorReply.

        ``retries`` resubmits load-shed replies (``code="overloaded"``)
        up to that many times with bounded exponential backoff, waiting
        the larger of the server's ``retry_after`` hint and
        ``backoff_base_s · 2^attempt``, capped at ``backoff_cap_s``.
        Only sheds are retried — every other reply (including
        ``draining``) is final.
        """

        def send() -> "asyncio.Future[Frame]":
            return self.post_request(user_id, x, y, t, service)

        return await self._send_with_retry(
            send, retries, backoff_base_s, backoff_cap_s
        )

    async def update(
        self,
        user_id: int,
        x: float,
        y: float,
        t: float,
        retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 5.0,
    ) -> Frame:
        """Report one location update; returns UpdateAck or ErrorReply.

        Retry semantics match :meth:`request`.
        """

        def send() -> "asyncio.Future[Frame]":
            return self.post_update(user_id, x, y, t)

        return await self._send_with_retry(
            send, retries, backoff_base_s, backoff_cap_s
        )

    async def _send_with_retry(
        self,
        send,
        retries: int,
        backoff_base_s: float,
        backoff_cap_s: float,
    ) -> Frame:
        attempt = 0
        redials = 0
        while True:
            generation = self._generation
            future: "asyncio.Future[Frame] | None" = None
            try:
                future = send()
                await self._writer.drain()
                reply = await future
            except (ConnectionError, OSError) as exc:
                if future is not None and not future.done():
                    # The op future was never awaited (drain failed
                    # first); cancel it so the reconnect's pending
                    # sweep doesn't strand an unretrieved exception.
                    future.cancel()
                # Transport loss mid-send.  With a reconnect budget the
                # client re-dials and resubmits; typed rejections (a
                # gate refusal on re-hello) and exhausted budgets are
                # final.  The lost op was never acked, so resubmission
                # is the caller's only correct move anyway.
                if (
                    getattr(exc, "reply", None) is not None
                    or self._connect_args is None
                    or redials >= self._reconnect_limit
                ):
                    raise
                await self._reconnect(generation)
                redials += 1
                continue
            shed = isinstance(reply, ErrorReply) and reply.is_shed
            if not shed or attempt >= retries:
                return reply
            hint = reply.retry_after or 0.0
            delay = min(
                backoff_cap_s,
                max(hint, backoff_base_s * 2.0**attempt),
            )
            await asyncio.sleep(delay)
            attempt += 1

    async def _reconnect(self, generation: int) -> None:
        """Re-dial and re-handshake in place (reconnect satellite).

        ``generation`` is what the failing sender observed: if another
        sender already restored the connection (generation moved on),
        this is a no-op — one dead socket costs one re-dial no matter
        how many ops were in flight on it.
        """
        assert self._connect_args is not None
        async with self._reconnect_lock:
            if self._closed:
                raise ServeClientError("client is closed")
            if self._generation != generation:
                return
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._writer.close()
            self._fail_pending(
                ServeClientError("connection lost; reconnecting")
            )
            attempt = 0
            while True:
                try:
                    reader, writer, welcome = await self._handshake(
                        **self._connect_args
                    )
                    break
                except (ConnectionError, OSError) as exc:
                    if (
                        getattr(exc, "reply", None) is not None
                        or attempt >= self._reconnect_limit
                    ):
                        raise
                    await asyncio.sleep(
                        min(
                            self._reconnect_cap_s,
                            self._reconnect_base_s * 2.0**attempt,
                        )
                    )
                    attempt += 1
            self._reader = reader
            self._writer = writer
            self.welcome = welcome
            self._generation += 1
            self.reconnects += 1
            self._reader_task = asyncio.create_task(
                self._read_loop(), name="repro-serve-client-reader"
            )

    async def stats(self) -> StatsReply:
        """Fetch the server's live serving counters."""
        reply = await self._roundtrip(StatsRequest(id=self.next_id()))
        if not isinstance(reply, StatsReply):
            raise ServeClientError(f"unexpected stats reply: {reply!r}")
        return reply

    async def drain(self) -> DrainReply:
        """Ask the server to drain; resolves when the queue is empty."""
        reply = await self._roundtrip(DrainRequest(id=self.next_id()))
        if not isinstance(reply, DrainReply):
            raise ServeClientError(f"unexpected drain reply: {reply!r}")
        return reply

    async def metrics(self, format: str = "prometheus") -> MetricsReply:
        """Scrape the server's metrics registry (text exposition)."""
        reply = await self._roundtrip(
            MetricsRequest(id=self.next_id(), format=format)
        )
        if not isinstance(reply, MetricsReply):
            raise ServeClientError(f"unexpected metrics reply: {reply!r}")
        return reply

    async def health(self) -> HealthReply:
        """One-frame liveness/readiness probe."""
        reply = await self._roundtrip(HealthRequest(id=self.next_id()))
        if not isinstance(reply, HealthReply):
            raise ServeClientError(f"unexpected health reply: {reply!r}")
        return reply

    async def traces(self, limit: int = 20) -> TracesReply:
        """Fetch the server's recent completed traces (JSON body)."""
        reply = await self._roundtrip(
            TracesRequest(id=self.next_id(), limit=limit)
        )
        if not isinstance(reply, TracesReply):
            raise ServeClientError(f"unexpected traces reply: {reply!r}")
        return reply

    async def profile(
        self,
        action: str = "status",
        interval_ms: float = 5.0,
        limit: int = 200,
    ) -> ProfileReply:
        """Drive the server's sampling profiler (``profile`` op).

        Unlike sheds, a profiler error is a caller mistake or a server
        without telemetry, so :class:`ErrorReply` raises
        :class:`ServeClientError` carrying the server's code/message.
        """
        reply = await self._roundtrip(
            ProfileRequest(
                id=self.next_id(),
                action=action,
                interval_ms=interval_ms,
                limit=limit,
            )
        )
        if isinstance(reply, ErrorReply):
            raise ServeClientError(
                f"profile {action!r} failed: {reply.code}: "
                f"{reply.message}"
            )
        if not isinstance(reply, ProfileReply):
            raise ServeClientError(
                f"unexpected profile reply: {reply!r}"
            )
        return reply

    async def _roundtrip(self, frame: Frame) -> Frame:
        future = self.post(frame)
        await self._writer.drain()
        return await future

    @property
    def pending(self) -> int:
        """Posted frames still waiting for a reply."""
        return len(self._pending)

    # -- reader and teardown ------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    reply = decode_reply(line, self._max_frame_bytes)
                except ProtocolError as exc:
                    self._fail_pending(
                        ServeClientError(f"undecodable reply: {exc}")
                    )
                    break
                reply_id = getattr(reply, "id", None)
                if reply_id is None:
                    # Connection-level error: fail everything pending.
                    self._fail_pending(
                        ServeClientError(f"connection error: {reply!r}")
                    )
                    continue
                future = self._pending.pop(int(reply_id), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._fail_pending(
                ServeClientError("connection closed with replies pending")
            )

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def close(self) -> None:
        """Close the connection; pending futures fail."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
