"""Async client for the Trusted Server wire protocol.

:class:`ServeClient` speaks the NDJSON protocol over TCP with full
pipelining: :meth:`post` writes a frame synchronously (so the on-wire
order of a single client is exactly its call order) and returns a
future resolved by a background reader task when the correlated reply
arrives.  The awaitable convenience wrappers (:meth:`request`,
:meth:`update`, :meth:`stats`, :meth:`drain`) post and wait.

Shed replies (``code="overloaded"``) are returned, not raised — they
are the server's explicit backpressure signal and carry the
``retry_after`` hint; only transport failures and handshake rejections
raise.
"""

from __future__ import annotations

import asyncio

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Frame,
    Hello,
    LocationUpdate,
    ProtocolError,
    ServiceRequest,
    StatsReply,
    StatsRequest,
    Welcome,
    decode_reply,
    encode_frame,
)


class ServeClientError(ConnectionError):
    """Handshake failure or transport loss (not a shed)."""


class ServeClient:
    """One pipelined NDJSON connection to a Trusted Server."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        welcome: Welcome,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.welcome = welcome
        self._max_frame_bytes = max_frame_bytes
        self._pending: dict[int, "asyncio.Future[Frame]"] = {}
        self._next_id = 0
        self._closed = False
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="repro-serve-client-reader"
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        client: str = "client",
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> "ServeClient":
        """Open a connection and perform the version handshake."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=max_frame_bytes
        )
        writer.write(encode_frame(Hello(client=client), max_frame_bytes))
        await writer.drain()
        line = await reader.readline()
        if not line:
            writer.close()
            raise ServeClientError("server closed during handshake")
        reply = decode_reply(line, max_frame_bytes)
        if not isinstance(reply, Welcome):
            writer.close()
            raise ServeClientError(f"handshake rejected: {reply!r}")
        return cls(reader, writer, reply, max_frame_bytes)

    # -- pipelined sends ----------------------------------------------

    def post(self, frame: Frame) -> "asyncio.Future[Frame]":
        """Write one frame now; future resolves with its reply."""
        if self._closed:
            raise ServeClientError("client is closed")
        future: "asyncio.Future[Frame]" = (
            asyncio.get_running_loop().create_future()
        )
        frame_id = getattr(frame, "id", None)
        if frame_id is not None:
            self._pending[int(frame_id)] = future
        self._writer.write(encode_frame(frame, self._max_frame_bytes))
        if frame_id is None:
            future.set_result(
                ErrorReply(
                    id=None,
                    code="bad_frame",
                    message="frame has no correlation id",
                )
            )
        return future

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def post_request(
        self,
        user_id: int,
        x: float,
        y: float,
        t: float,
        service: str = "default",
    ) -> "asyncio.Future[Frame]":
        """Pipeline one service request (open-loop send)."""
        return self.post(
            ServiceRequest(
                id=self.next_id(),
                user_id=user_id,
                x=x,
                y=y,
                t=t,
                service=service,
            )
        )

    def post_update(
        self, user_id: int, x: float, y: float, t: float
    ) -> "asyncio.Future[Frame]":
        """Pipeline one location update."""
        return self.post(
            LocationUpdate(id=self.next_id(), user_id=user_id, x=x, y=y, t=t)
        )

    # -- awaitable wrappers -------------------------------------------

    async def request(
        self,
        user_id: int,
        x: float,
        y: float,
        t: float,
        service: str = "default",
    ) -> Frame:
        """Issue one service request; returns DecisionReply or ErrorReply."""
        future = self.post_request(user_id, x, y, t, service)
        await self._writer.drain()
        return await future

    async def update(
        self, user_id: int, x: float, y: float, t: float
    ) -> Frame:
        """Report one location update; returns UpdateAck or ErrorReply."""
        future = self.post_update(user_id, x, y, t)
        await self._writer.drain()
        return await future

    async def stats(self) -> StatsReply:
        """Fetch the server's live serving counters."""
        reply = await self._roundtrip(StatsRequest(id=self.next_id()))
        if not isinstance(reply, StatsReply):
            raise ServeClientError(f"unexpected stats reply: {reply!r}")
        return reply

    async def drain(self) -> DrainReply:
        """Ask the server to drain; resolves when the queue is empty."""
        reply = await self._roundtrip(DrainRequest(id=self.next_id()))
        if not isinstance(reply, DrainReply):
            raise ServeClientError(f"unexpected drain reply: {reply!r}")
        return reply

    async def _roundtrip(self, frame: Frame) -> Frame:
        future = self.post(frame)
        await self._writer.drain()
        return await future

    @property
    def pending(self) -> int:
        """Posted frames still waiting for a reply."""
        return len(self._pending)

    # -- reader and teardown ------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    reply = decode_reply(line, self._max_frame_bytes)
                except ProtocolError as exc:
                    self._fail_pending(
                        ServeClientError(f"undecodable reply: {exc}")
                    )
                    break
                reply_id = getattr(reply, "id", None)
                if reply_id is None:
                    # Connection-level error: fail everything pending.
                    self._fail_pending(
                        ServeClientError(f"connection error: {reply!r}")
                    )
                    continue
                future = self._pending.pop(int(reply_id), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._fail_pending(
                ServeClientError("connection closed with replies pending")
            )

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def close(self) -> None:
        """Close the connection; pending futures fail."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
