"""The newline-delimited-JSON wire protocol of the serving frontend.

One frame per line: a JSON object carrying an ``op`` discriminator plus
the fields of the matching dataclass below.  The codec is deliberately
strict — this is the trust boundary of a long-running daemon:

* frames longer than ``max_bytes`` raise ``frame_too_large`` *before*
  parsing (and :func:`encode_frame` refuses to produce them);
* non-JSON, non-object, and non-finite-number payloads raise
  ``bad_json`` / ``bad_frame`` (``NaN``/``Infinity`` literals are
  rejected — they would not survive a strict peer);
* missing, mistyped, or *unknown* fields raise ``bad_field``; unknown
  ``op`` values raise ``unknown_op``.

Every failure is a :class:`ProtocolError`, never a stray exception —
the connection handler turns it into an :class:`ErrorReply` and keeps
the connection alive (NDJSON re-synchronizes at the next newline), so a
malformed frame can never take the daemon down.

Versioning: the first frame of a connection must be :class:`Hello`
carrying ``version``; the server answers :class:`Welcome` or a
``bad_version`` error.  The codec itself is version-1 and
:data:`PROTOCOL_VERSION` is bumped with any incompatible layout change.

Requests and replies use disjoint registries
(:func:`decode_request` / :func:`decode_reply`), so a confused peer
echoing a reply at the server is a protocol error, not a dispatch bug.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, ClassVar, Mapping, TypeVar

#: Bumped on any incompatible change to the frame layout.
PROTOCOL_VERSION = 1

#: Default per-frame size limit (bytes, including the newline).
MAX_FRAME_BYTES = 64 * 1024


class ProtocolError(Exception):
    """A frame violated the wire protocol.

    ``code`` is the machine-readable discriminator that travels back to
    the peer inside an :class:`ErrorReply`.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


class Frame:
    """Base class of all wire frames; ``op`` is set by :func:`_frame`."""

    op: ClassVar[str] = ""


_F = TypeVar("_F", bound=type)

#: op -> frame class, one registry per direction.
REQUEST_TYPES: dict[str, type] = {}
REPLY_TYPES: dict[str, type] = {}


def _frame(op: str, registry: dict[str, type]) -> Callable[[_F], _F]:
    def register(cls: _F) -> _F:
        cls.op = op  # type: ignore[attr-defined]
        registry[op] = cls
        return cls

    return register


# ---------------------------------------------------------------------
# client -> server
# ---------------------------------------------------------------------


@_frame("hello", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class Hello(Frame):
    """Connection opener; must be the first frame on the wire.

    ``trace`` asks the server to accept and echo distributed trace
    contexts on this connection; the server's :class:`Welcome` answers
    with the negotiated value (``False`` when its telemetry is off), so
    both peers know whether ``trace`` fields carry meaning.  Old peers
    simply omit the field — the codec default keeps them compatible.

    ``token`` is the bearer credential judged by the transport's
    :class:`~repro.serve.gate.ConnectionGate` before the server ever
    sees the hello; ungated deployments ignore it, and old peers omit
    it.  It rides the hello (not a transport header) so TCP, TLS, and
    HTTP authenticate through the exact same frame.
    """

    version: int = PROTOCOL_VERSION
    client: str = "client"
    trace: bool = False
    token: str | None = None


@_frame("update", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class LocationUpdate(Frame):
    """A location update that is not a service request (Section 6.1).

    ``trace`` is the optional wire trace context
    (``"<trace_id>-<span_id>"``, see
    :class:`repro.obs.tracing.TraceContext`) linking this frame into
    the sender's causal tree; only meaningful after trace negotiation.

    ``seq`` is the shard router's per-shard write-ahead sequence
    number.  Clients never set it; the router stamps it on frames it
    forwards to shard workers so a worker restored from its WAL can
    recognize (and answer from its reply cache) an operation it already
    applied before a crash.
    """

    id: int
    user_id: int
    x: float
    y: float
    t: float
    trace: str | None = None
    seq: int | None = None


@_frame("request", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class ServiceRequest(Frame):
    """A service request at an exact ``⟨x, y, t⟩``.

    ``trace`` — optional wire trace context, and ``seq`` — optional
    router-stamped shard sequence number, both as on
    :class:`LocationUpdate`.
    """

    id: int
    user_id: int
    x: float
    y: float
    t: float
    service: str = "default"
    trace: str | None = None
    seq: int | None = None


@_frame("stats", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class StatsRequest(Frame):
    """Ask the server for its live serving counters."""

    id: int


@_frame("drain", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class DrainRequest(Frame):
    """Ask the server to drain: stop admitting, flush, final audit."""

    id: int


@_frame("metrics", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class MetricsRequest(Frame):
    """Ask for the full metrics registry in an exposition format.

    ``format`` currently accepts only ``"prometheus"`` (text
    exposition); anything else earns a ``bad_field`` error, keeping the
    field free for future formats.
    """

    id: int
    format: str = "prometheus"


@_frame("health", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class HealthRequest(Frame):
    """One-frame liveness/readiness probe."""

    id: int


@_frame("traces", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class TracesRequest(Frame):
    """Ask for the server's ring of recently completed traces.

    ``limit`` caps how many (most recent first); the server clamps it
    to its own buffer size.
    """

    id: int
    limit: int = 20


@_frame("profile", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class ProfileRequest(Frame):
    """Control or inspect the server's sampling profiler.

    ``action`` is one of ``"start"`` (begin a capture at
    ``interval_ms`` between samples), ``"stop"``, ``"status"``,
    ``"collapsed"`` (fetch Brendan-Gregg collapsed stacks, hottest
    first, truncated to ``limit`` stacks and to the frame size
    budget), or ``"stages"`` (the per-stage self-time table as JSON).
    Lifecycle violations (start while running, stop while idle) earn
    an :class:`ErrorReply` with ``code="profiler_state"``.
    """

    id: int
    action: str = "status"
    interval_ms: float = 5.0
    limit: int = 200


# ---------------------------------------------------------------------
# server -> client
# ---------------------------------------------------------------------


@_frame("welcome", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class Welcome(Frame):
    """Successful hello: negotiated version plus admission limits."""

    version: int
    server: str
    session: str
    max_inflight: int
    max_queue_depth: int
    trace: bool = False


@_frame("ack", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class UpdateAck(Frame):
    """A location update was ingested.

    ``trace`` echoes the request's wire trace context, so the client
    can close its send span against the right tree.
    """

    id: int
    trace: str | None = None


@_frame("decision", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class DecisionReply(Frame):
    """The Trusted Server's decision on one service request.

    ``context`` is the forwarded ``(x_min, y_min, x_max, y_max,
    t_start, t_end)`` box (for a suppressed request: the context that
    *would* have been sent).  ``msgid`` is the TS-side message id.
    """

    id: int
    msgid: int
    pseudonym: str
    decision: str
    forwarded: bool
    context: tuple[float, ...] | None = None
    lbqid: str | None = None
    step: int | None = None
    required_k: int | None = None
    rotated: bool = False
    trace: str | None = None


@_frame("error", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class ErrorReply(Frame):
    """Anything that is not a successful reply.

    ``id`` echoes the offending request when known (``None`` for
    connection-level framing errors).  ``retry_after`` (seconds) is set
    on load-shedding replies (``code="overloaded"``) — the one error a
    well-behaved client should back off and retry.
    """

    id: int | None
    code: str
    message: str
    retry_after: float | None = None
    trace: str | None = None

    @property
    def is_shed(self) -> bool:
        return self.code == "overloaded"


@_frame("stats_reply", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class StatsReply(Frame):
    """Live serving counters (one gauge sample, not a stream)."""

    id: int
    accepted: int
    served: int
    shed: int
    rejected: int
    protocol_errors: int
    queue_depth: int
    sessions: int


@_frame("drained", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class DrainReply(Frame):
    """Drain finished: totals at the moment the queue emptied."""

    id: int
    served: int
    shed: int
    rejected: int
    pending: int


@_frame("metrics_reply", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class MetricsReply(Frame):
    """The metrics registry rendered in the requested format.

    ``body`` is the complete exposition text (Prometheus text format
    for ``format="prometheus"``) — scrape-ready as-is.
    """

    id: int
    format: str
    body: str


@_frame("health_reply", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class HealthReply(Frame):
    """Liveness/readiness snapshot.

    ``status`` is ``"ok"``, ``"draining"``, or ``"degraded"`` (an SLO
    window is currently in breach); ``slo_ok`` is False only when a
    privacy monitor reports an active breach, and ``breaches`` counts
    alerts raised since start.
    """

    id: int
    status: str
    uptime_s: float
    queue_depth: int
    sessions: int
    served: int
    shed: int
    slo_ok: bool
    breaches: int


@_frame("traces_reply", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class TracesReply(Frame):
    """Recently completed request traces, most recent first.

    ``body`` is a JSON array of ``{trace_id, op, decision, queue_ms,
    total_ms, shed}`` objects — kept as an opaque string so the frame
    codec stays flat and strict.
    """

    id: int
    body: str


@_frame("profile_reply", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class ProfileReply(Frame):
    """Profiler state after a ``profile`` op.

    ``state`` is ``"idle"`` (never started), ``"running"``, or
    ``"stopped"``; ``samples``/``duration_s`` describe the current (or
    final) capture.  ``body`` is empty except for ``collapsed``
    (newline-joined collapsed stacks, hottest first, truncated to the
    frame budget) and ``stages`` (the report's JSON stage table).
    """

    id: int
    state: str
    samples: int
    duration_s: float
    body: str = ""


# ---------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------


def _reject_constant(value: str) -> float:
    raise ProtocolError(
        "bad_json", f"non-finite JSON number {value!r} is not allowed"
    )


def _check_int(value: object, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            "bad_field", f"field {name!r} must be an integer"
        )
    return value


def _check_float(value: object, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            "bad_field", f"field {name!r} must be a number"
        )
    return float(value)


def _check_str(value: object, name: str) -> str:
    if not isinstance(value, str):
        raise ProtocolError(
            "bad_field", f"field {name!r} must be a string"
        )
    return value


def _check_bool(value: object, name: str) -> bool:
    if not isinstance(value, bool):
        raise ProtocolError(
            "bad_field", f"field {name!r} must be a boolean"
        )
    return value


def _check_box(value: object, name: str) -> tuple[float, ...]:
    if not isinstance(value, (list, tuple)) or len(value) != 6:
        raise ProtocolError(
            "bad_field", f"field {name!r} must be a 6-number box"
        )
    return tuple(_check_float(item, name) for item in value)


def _optional(
    check: Callable[[object, str], object],
) -> Callable[[object, str], object]:
    def checked(value: object, name: str) -> object:
        if value is None:
            return None
        return check(value, name)

    return checked


#: Validator per annotation string (modules use PEP 563 annotations, so
#: ``dataclasses.fields(...)[i].type`` is the literal source text).
_VALIDATORS: dict[str, Callable[[object, str], object]] = {
    "int": _check_int,
    "float": _check_float,
    "str": _check_str,
    "bool": _check_bool,
    "int | None": _optional(_check_int),
    "float | None": _optional(_check_float),
    "str | None": _optional(_check_str),
    "tuple[float, ...] | None": _optional(_check_box),
}


def encode_frame(frame: Frame, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one frame to its wire line (JSON + newline)."""
    payload: dict[str, object] = {"op": frame.op}
    payload.update(dataclasses.asdict(frame))  # type: ignore[call-overload]
    data = json.dumps(
        payload, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    if len(data) + 1 > max_bytes:
        raise ProtocolError(
            "frame_too_large",
            f"frame of {len(data) + 1} bytes exceeds the "
            f"{max_bytes}-byte limit",
        )
    return data + b"\n"


def _decode(
    line: bytes, registry: Mapping[str, type], max_bytes: int
) -> Frame:
    if len(line) > max_bytes:
        raise ProtocolError(
            "frame_too_large",
            f"frame of {len(line)} bytes exceeds the "
            f"{max_bytes}-byte limit",
        )
    try:
        payload = json.loads(line, parse_constant=_reject_constant)
    except ProtocolError:
        raise
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad_json", f"malformed JSON frame: {exc}")
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad_frame", "frame must be a JSON object"
        )
    op = payload.pop("op", None)
    if not isinstance(op, str):
        raise ProtocolError("bad_frame", "frame is missing its 'op'")
    cls = registry.get(op)
    if cls is None:
        raise ProtocolError("unknown_op", f"unknown op {op!r}")
    kwargs: dict[str, object] = {}
    for field in dataclasses.fields(cls):
        if field.name in payload:
            validate = _VALIDATORS[str(field.type)]
            kwargs[field.name] = validate(
                payload.pop(field.name), field.name
            )
        elif field.default is dataclasses.MISSING:
            raise ProtocolError(
                "bad_field",
                f"op {op!r} is missing required field {field.name!r}",
            )
    if payload:
        unknown = ", ".join(sorted(payload))
        raise ProtocolError(
            "bad_field", f"op {op!r} got unknown fields: {unknown}"
        )
    return cls(**kwargs)


def decode_request(
    line: bytes, max_bytes: int = MAX_FRAME_BYTES
) -> Frame:
    """Decode one client→server line; raises :class:`ProtocolError`."""
    return _decode(line, REQUEST_TYPES, max_bytes)


def decode_reply(line: bytes, max_bytes: int = MAX_FRAME_BYTES) -> Frame:
    """Decode one server→client line; raises :class:`ProtocolError`."""
    return _decode(line, REPLY_TYPES, max_bytes)


# ---------------------------------------------------------------------
# fast codec (sharded-stack internal hop)
# ---------------------------------------------------------------------
#
# ``encode_frame``/``_decode`` pay for their strictness:
# ``dataclasses.asdict`` deep-copies every frame and the decoder walks
# ``dataclasses.fields`` with a per-field validator — together ~90 µs
# per frame round trip, several times the engine's own per-request
# cost.  The shard router forwards every client frame across one more
# codec boundary (router → shard worker), so that hop uses the
# hand-rolled fast path below for the five hot frame types and falls
# back to the strict codec for everything else (control ops, and any
# input the fast decoder cannot take at face value — the fallback also
# re-raises the proper :class:`ProtocolError`).  The *public* trust
# boundary (client ↔ router) keeps the strict codec unchanged.


#: Memoized ``json.dumps`` for short string fields (services,
#: pseudonyms, decisions, LBQID names draw from small vocabularies, so
#: the quoting/escaping work is the same few strings over and over).
_JSTR_CACHE: dict[str, str] = {}


def _jstr(value: str) -> str:
    quoted = _JSTR_CACHE.get(value)
    if quoted is None:
        if len(_JSTR_CACHE) > 4096:
            _JSTR_CACHE.clear()
        quoted = _JSTR_CACHE[value] = json.dumps(value)
    return quoted


def _fast_encode_update(f: LocationUpdate) -> str:
    head = (
        f'{{"op":"update","id":{f.id},"user_id":{f.user_id},'
        f'"x":{f.x!r},"y":{f.y!r},"t":{f.t!r}'
    )
    if f.trace is not None:
        head += f',"trace":"{f.trace}"'
    if f.seq is not None:
        head += f',"seq":{f.seq}'
    return head + "}"


def _fast_encode_request(f: ServiceRequest) -> str:
    head = (
        f'{{"op":"request","id":{f.id},"user_id":{f.user_id},'
        f'"x":{f.x!r},"y":{f.y!r},"t":{f.t!r},'
        f'"service":{_jstr(f.service)}'
    )
    if f.trace is not None:
        head += f',"trace":"{f.trace}"'
    if f.seq is not None:
        head += f',"seq":{f.seq}'
    return head + "}"


def _fast_encode_ack(f: UpdateAck) -> str:
    if f.trace is None:
        return f'{{"op":"ack","id":{f.id}}}'
    return f'{{"op":"ack","id":{f.id},"trace":"{f.trace}"}}'


def _fast_encode_decision(f: DecisionReply) -> str:
    context = (
        "null" if f.context is None
        else "[" + ",".join(repr(v) for v in f.context) + "]"
    )
    return (
        f'{{"op":"decision","id":{f.id},"msgid":{f.msgid},'
        f'"pseudonym":{_jstr(f.pseudonym)},'
        f'"decision":{_jstr(f.decision)},'
        f'"forwarded":{"true" if f.forwarded else "false"},'
        f'"context":{context},'
        f'"lbqid":{"null" if f.lbqid is None else _jstr(f.lbqid)},'
        f'"step":{"null" if f.step is None else f.step},'
        f'"required_k":'
        f'{"null" if f.required_k is None else f.required_k},'
        f'"rotated":{"true" if f.rotated else "false"},'
        f'"trace":{"null" if f.trace is None else _jstr(f.trace)}}}'
    )


def _fast_encode_error(f: ErrorReply) -> str:
    return (
        f'{{"op":"error","id":{"null" if f.id is None else f.id},'
        f'"code":{json.dumps(f.code)},'
        f'"message":{json.dumps(f.message)},'
        f'"retry_after":'
        f'{"null" if f.retry_after is None else repr(f.retry_after)},'
        f'"trace":{json.dumps(f.trace)}}}'
    )


_FAST_ENCODERS: dict[type, Callable[[Frame], str]] = {
    LocationUpdate: _fast_encode_update,  # type: ignore[dict-item]
    ServiceRequest: _fast_encode_request,  # type: ignore[dict-item]
    UpdateAck: _fast_encode_ack,  # type: ignore[dict-item]
    DecisionReply: _fast_encode_decision,  # type: ignore[dict-item]
    ErrorReply: _fast_encode_error,  # type: ignore[dict-item]
}


def encode_frame_fast(
    frame: Frame, max_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """:func:`encode_frame` without the ``asdict`` deep copy.

    Identical wire bytes modulo JSON field order (the strict decoder
    accepts either); only for frames produced by this process — the
    hand-rolled serializers assume finite numbers, which everything in
    the engine guarantees by construction.
    """
    encoder = _FAST_ENCODERS.get(type(frame))
    if encoder is None:
        return encode_frame(frame, max_bytes)
    data = encoder(frame).encode("utf-8")
    if len(data) + 1 > max_bytes:
        raise ProtocolError(
            "frame_too_large",
            f"frame of {len(data) + 1} bytes exceeds the "
            f"{max_bytes}-byte limit",
        )
    return data + b"\n"


#: Canonical prefixes emitted by the fast encoders above — the
#: positional decoder recognizes exactly these shapes.
_CANON_UPDATE = b'{"op":"update","id":'
_CANON_REQUEST = b'{"op":"request","id":'


def _decode_positional(line: bytes) -> "Frame | None":
    """Positionally parse a line the fast *encoders* produced.

    The router→worker hop re-encodes every hot frame with
    :func:`_fast_encode_update` / :func:`_fast_encode_request`, whose
    field order and spelling are fixed — so the common case (no trace,
    no seq, escape-free service name) parses with byte splits instead
    of a JSON scanner.  Returns ``None`` for anything else (optional
    fields present, unexpected shape, non-canonical spelling); callers
    fall through to the JSON path, so this is purely an accelerator
    and never changes what decodes successfully.
    """
    try:
        if line.startswith(_CANON_UPDATE):
            parts = line[20 : line.rindex(b"}")].split(b',"')
            if len(parts) != 5:
                return None
            frame = object.__new__(LocationUpdate)
            object.__setattr__(
                frame,
                "__dict__",
                {
                    "id": int(parts[0]),
                    "user_id": int(parts[1][9:]),
                    "x": float(parts[2][3:]),
                    "y": float(parts[3][3:]),
                    "t": float(parts[4][3:]),
                    "trace": None,
                    "seq": None,
                },
            )
            return frame
        if line.startswith(_CANON_REQUEST):
            parts = line[21 : line.rindex(b"}")].split(b',"')
            if len(parts) != 6 or not parts[5].startswith(
                b'service":"'
            ):
                return None
            service = parts[5][10:]
            if (
                not service.endswith(b'"')
                or b'"' in service[:-1]
                or b"\\" in service
            ):
                return None
            frame = object.__new__(ServiceRequest)
            object.__setattr__(
                frame,
                "__dict__",
                {
                    "id": int(parts[0]),
                    "user_id": int(parts[1][9:]),
                    "x": float(parts[2][3:]),
                    "y": float(parts[3][3:]),
                    "t": float(parts[4][3:]),
                    "service": service[:-1].decode("utf-8"),
                    "trace": None,
                    "seq": None,
                },
            )
            return frame
    except ValueError:
        return None
    return None


def _decode_fast(
    line: bytes, registry: Mapping[str, type], max_bytes: int
) -> Frame:
    if len(line) > max_bytes:
        raise ProtocolError(
            "frame_too_large",
            f"frame of {len(line)} bytes exceeds the "
            f"{max_bytes}-byte limit",
        )
    if registry is REQUEST_TYPES and type(line) is bytes:
        frame = _decode_positional(line)
        if frame is not None:
            return frame
    try:
        # bytes input would route json.loads through its pure-python
        # encoding sniffer; one C-level decode avoids that per frame.
        payload = json.loads(
            line.decode("utf-8")
            if isinstance(line, (bytes, bytearray))
            else line
        )
        op = payload["op"] if registry is REQUEST_TYPES else None
        # The hot frames are built by installing a complete ``__dict__``
        # on a bare instance — a frozen dataclass without slots stores
        # its fields there, and one ``object.__setattr__`` of the whole
        # dict skips the per-field frozen-``__setattr__`` dance of the
        # generated ``__init__`` (frames carry no ``__post_init__``
        # validation to lose; plain ``frame.__dict__ = ...`` would
        # itself trip the frozen guard).
        if op == "update":
            frame = object.__new__(LocationUpdate)
            object.__setattr__(
                frame,
                "__dict__",
                {
                    "id": payload["id"],
                    "user_id": payload["user_id"],
                    "x": payload["x"],
                    "y": payload["y"],
                    "t": payload["t"],
                    "trace": payload.get("trace"),
                    "seq": payload.get("seq"),
                },
            )
            return frame
        if op == "request":
            frame = object.__new__(ServiceRequest)
            object.__setattr__(
                frame,
                "__dict__",
                {
                    "id": payload["id"],
                    "user_id": payload["user_id"],
                    "x": payload["x"],
                    "y": payload["y"],
                    "t": payload["t"],
                    "service": payload.get("service", "default"),
                    "trace": payload.get("trace"),
                    "seq": payload.get("seq"),
                },
            )
            return frame
        op = payload["op"] if registry is REPLY_TYPES else None
        if op == "decision":
            context = payload.get("context")
            return DecisionReply(
                id=payload["id"],
                msgid=payload["msgid"],
                pseudonym=payload["pseudonym"],
                decision=payload["decision"],
                forwarded=payload["forwarded"],
                context=None if context is None else tuple(context),
                lbqid=payload.get("lbqid"),
                step=payload.get("step"),
                required_k=payload.get("required_k"),
                rotated=payload.get("rotated", False),
                trace=payload.get("trace"),
            )
        if op == "ack":
            return UpdateAck(
                id=payload["id"], trace=payload.get("trace")
            )
    except ProtocolError:
        raise
    except Exception:
        pass  # malformed or surprising: strict path for the real error
    return _decode(line, registry, max_bytes)


def decode_request_fast(
    line: bytes, max_bytes: int = MAX_FRAME_BYTES
) -> Frame:
    """Fast-path :func:`decode_request` for the router→worker hop.

    Hot frames (``update``/``request``) skip the reflective field walk;
    everything else — including anything malformed — re-enters the
    strict decoder, so error codes and unknown-field rejection are
    unchanged for inputs the fast path does not recognize.  Use only
    where the peer is trusted (the router and its workers).
    """
    return _decode_fast(line, REQUEST_TYPES, max_bytes)


def decode_reply_fast(
    line: bytes, max_bytes: int = MAX_FRAME_BYTES
) -> Frame:
    """Fast-path :func:`decode_reply` for the worker→router hop."""
    return _decode_fast(line, REPLY_TYPES, max_bytes)
