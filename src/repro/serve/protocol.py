"""The newline-delimited-JSON wire protocol of the serving frontend.

One frame per line: a JSON object carrying an ``op`` discriminator plus
the fields of the matching dataclass below.  The codec is deliberately
strict — this is the trust boundary of a long-running daemon:

* frames longer than ``max_bytes`` raise ``frame_too_large`` *before*
  parsing (and :func:`encode_frame` refuses to produce them);
* non-JSON, non-object, and non-finite-number payloads raise
  ``bad_json`` / ``bad_frame`` (``NaN``/``Infinity`` literals are
  rejected — they would not survive a strict peer);
* missing, mistyped, or *unknown* fields raise ``bad_field``; unknown
  ``op`` values raise ``unknown_op``.

Every failure is a :class:`ProtocolError`, never a stray exception —
the connection handler turns it into an :class:`ErrorReply` and keeps
the connection alive (NDJSON re-synchronizes at the next newline), so a
malformed frame can never take the daemon down.

Versioning: the first frame of a connection must be :class:`Hello`
carrying ``version``; the server answers :class:`Welcome` or a
``bad_version`` error.  The codec itself is version-1 and
:data:`PROTOCOL_VERSION` is bumped with any incompatible layout change.

Requests and replies use disjoint registries
(:func:`decode_request` / :func:`decode_reply`), so a confused peer
echoing a reply at the server is a protocol error, not a dispatch bug.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, ClassVar, Mapping, TypeVar

#: Bumped on any incompatible change to the frame layout.
PROTOCOL_VERSION = 1

#: Default per-frame size limit (bytes, including the newline).
MAX_FRAME_BYTES = 64 * 1024


class ProtocolError(Exception):
    """A frame violated the wire protocol.

    ``code`` is the machine-readable discriminator that travels back to
    the peer inside an :class:`ErrorReply`.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


class Frame:
    """Base class of all wire frames; ``op`` is set by :func:`_frame`."""

    op: ClassVar[str] = ""


_F = TypeVar("_F", bound=type)

#: op -> frame class, one registry per direction.
REQUEST_TYPES: dict[str, type] = {}
REPLY_TYPES: dict[str, type] = {}


def _frame(op: str, registry: dict[str, type]) -> Callable[[_F], _F]:
    def register(cls: _F) -> _F:
        cls.op = op  # type: ignore[attr-defined]
        registry[op] = cls
        return cls

    return register


# ---------------------------------------------------------------------
# client -> server
# ---------------------------------------------------------------------


@_frame("hello", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class Hello(Frame):
    """Connection opener; must be the first frame on the wire.

    ``trace`` asks the server to accept and echo distributed trace
    contexts on this connection; the server's :class:`Welcome` answers
    with the negotiated value (``False`` when its telemetry is off), so
    both peers know whether ``trace`` fields carry meaning.  Old peers
    simply omit the field — the codec default keeps them compatible.
    """

    version: int = PROTOCOL_VERSION
    client: str = "client"
    trace: bool = False


@_frame("update", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class LocationUpdate(Frame):
    """A location update that is not a service request (Section 6.1).

    ``trace`` is the optional wire trace context
    (``"<trace_id>-<span_id>"``, see
    :class:`repro.obs.tracing.TraceContext`) linking this frame into
    the sender's causal tree; only meaningful after trace negotiation.
    """

    id: int
    user_id: int
    x: float
    y: float
    t: float
    trace: str | None = None


@_frame("request", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class ServiceRequest(Frame):
    """A service request at an exact ``⟨x, y, t⟩``.

    ``trace`` — optional wire trace context, as on
    :class:`LocationUpdate`.
    """

    id: int
    user_id: int
    x: float
    y: float
    t: float
    service: str = "default"
    trace: str | None = None


@_frame("stats", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class StatsRequest(Frame):
    """Ask the server for its live serving counters."""

    id: int


@_frame("drain", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class DrainRequest(Frame):
    """Ask the server to drain: stop admitting, flush, final audit."""

    id: int


@_frame("metrics", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class MetricsRequest(Frame):
    """Ask for the full metrics registry in an exposition format.

    ``format`` currently accepts only ``"prometheus"`` (text
    exposition); anything else earns a ``bad_field`` error, keeping the
    field free for future formats.
    """

    id: int
    format: str = "prometheus"


@_frame("health", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class HealthRequest(Frame):
    """One-frame liveness/readiness probe."""

    id: int


@_frame("traces", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class TracesRequest(Frame):
    """Ask for the server's ring of recently completed traces.

    ``limit`` caps how many (most recent first); the server clamps it
    to its own buffer size.
    """

    id: int
    limit: int = 20


@_frame("profile", REQUEST_TYPES)
@dataclasses.dataclass(frozen=True)
class ProfileRequest(Frame):
    """Control or inspect the server's sampling profiler.

    ``action`` is one of ``"start"`` (begin a capture at
    ``interval_ms`` between samples), ``"stop"``, ``"status"``,
    ``"collapsed"`` (fetch Brendan-Gregg collapsed stacks, hottest
    first, truncated to ``limit`` stacks and to the frame size
    budget), or ``"stages"`` (the per-stage self-time table as JSON).
    Lifecycle violations (start while running, stop while idle) earn
    an :class:`ErrorReply` with ``code="profiler_state"``.
    """

    id: int
    action: str = "status"
    interval_ms: float = 5.0
    limit: int = 200


# ---------------------------------------------------------------------
# server -> client
# ---------------------------------------------------------------------


@_frame("welcome", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class Welcome(Frame):
    """Successful hello: negotiated version plus admission limits."""

    version: int
    server: str
    session: str
    max_inflight: int
    max_queue_depth: int
    trace: bool = False


@_frame("ack", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class UpdateAck(Frame):
    """A location update was ingested.

    ``trace`` echoes the request's wire trace context, so the client
    can close its send span against the right tree.
    """

    id: int
    trace: str | None = None


@_frame("decision", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class DecisionReply(Frame):
    """The Trusted Server's decision on one service request.

    ``context`` is the forwarded ``(x_min, y_min, x_max, y_max,
    t_start, t_end)`` box (for a suppressed request: the context that
    *would* have been sent).  ``msgid`` is the TS-side message id.
    """

    id: int
    msgid: int
    pseudonym: str
    decision: str
    forwarded: bool
    context: tuple[float, ...] | None = None
    lbqid: str | None = None
    step: int | None = None
    required_k: int | None = None
    rotated: bool = False
    trace: str | None = None


@_frame("error", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class ErrorReply(Frame):
    """Anything that is not a successful reply.

    ``id`` echoes the offending request when known (``None`` for
    connection-level framing errors).  ``retry_after`` (seconds) is set
    on load-shedding replies (``code="overloaded"``) — the one error a
    well-behaved client should back off and retry.
    """

    id: int | None
    code: str
    message: str
    retry_after: float | None = None
    trace: str | None = None

    @property
    def is_shed(self) -> bool:
        return self.code == "overloaded"


@_frame("stats_reply", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class StatsReply(Frame):
    """Live serving counters (one gauge sample, not a stream)."""

    id: int
    accepted: int
    served: int
    shed: int
    rejected: int
    protocol_errors: int
    queue_depth: int
    sessions: int


@_frame("drained", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class DrainReply(Frame):
    """Drain finished: totals at the moment the queue emptied."""

    id: int
    served: int
    shed: int
    rejected: int
    pending: int


@_frame("metrics_reply", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class MetricsReply(Frame):
    """The metrics registry rendered in the requested format.

    ``body`` is the complete exposition text (Prometheus text format
    for ``format="prometheus"``) — scrape-ready as-is.
    """

    id: int
    format: str
    body: str


@_frame("health_reply", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class HealthReply(Frame):
    """Liveness/readiness snapshot.

    ``status`` is ``"ok"``, ``"draining"``, or ``"degraded"`` (an SLO
    window is currently in breach); ``slo_ok`` is False only when a
    privacy monitor reports an active breach, and ``breaches`` counts
    alerts raised since start.
    """

    id: int
    status: str
    uptime_s: float
    queue_depth: int
    sessions: int
    served: int
    shed: int
    slo_ok: bool
    breaches: int


@_frame("traces_reply", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class TracesReply(Frame):
    """Recently completed request traces, most recent first.

    ``body`` is a JSON array of ``{trace_id, op, decision, queue_ms,
    total_ms, shed}`` objects — kept as an opaque string so the frame
    codec stays flat and strict.
    """

    id: int
    body: str


@_frame("profile_reply", REPLY_TYPES)
@dataclasses.dataclass(frozen=True)
class ProfileReply(Frame):
    """Profiler state after a ``profile`` op.

    ``state`` is ``"idle"`` (never started), ``"running"``, or
    ``"stopped"``; ``samples``/``duration_s`` describe the current (or
    final) capture.  ``body`` is empty except for ``collapsed``
    (newline-joined collapsed stacks, hottest first, truncated to the
    frame budget) and ``stages`` (the report's JSON stage table).
    """

    id: int
    state: str
    samples: int
    duration_s: float
    body: str = ""


# ---------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------


def _reject_constant(value: str) -> float:
    raise ProtocolError(
        "bad_json", f"non-finite JSON number {value!r} is not allowed"
    )


def _check_int(value: object, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            "bad_field", f"field {name!r} must be an integer"
        )
    return value


def _check_float(value: object, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            "bad_field", f"field {name!r} must be a number"
        )
    return float(value)


def _check_str(value: object, name: str) -> str:
    if not isinstance(value, str):
        raise ProtocolError(
            "bad_field", f"field {name!r} must be a string"
        )
    return value


def _check_bool(value: object, name: str) -> bool:
    if not isinstance(value, bool):
        raise ProtocolError(
            "bad_field", f"field {name!r} must be a boolean"
        )
    return value


def _check_box(value: object, name: str) -> tuple[float, ...]:
    if not isinstance(value, (list, tuple)) or len(value) != 6:
        raise ProtocolError(
            "bad_field", f"field {name!r} must be a 6-number box"
        )
    return tuple(_check_float(item, name) for item in value)


def _optional(
    check: Callable[[object, str], object],
) -> Callable[[object, str], object]:
    def checked(value: object, name: str) -> object:
        if value is None:
            return None
        return check(value, name)

    return checked


#: Validator per annotation string (modules use PEP 563 annotations, so
#: ``dataclasses.fields(...)[i].type`` is the literal source text).
_VALIDATORS: dict[str, Callable[[object, str], object]] = {
    "int": _check_int,
    "float": _check_float,
    "str": _check_str,
    "bool": _check_bool,
    "int | None": _optional(_check_int),
    "float | None": _optional(_check_float),
    "str | None": _optional(_check_str),
    "tuple[float, ...] | None": _optional(_check_box),
}


def encode_frame(frame: Frame, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one frame to its wire line (JSON + newline)."""
    payload: dict[str, object] = {"op": frame.op}
    payload.update(dataclasses.asdict(frame))  # type: ignore[call-overload]
    data = json.dumps(
        payload, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    if len(data) + 1 > max_bytes:
        raise ProtocolError(
            "frame_too_large",
            f"frame of {len(data) + 1} bytes exceeds the "
            f"{max_bytes}-byte limit",
        )
    return data + b"\n"


def _decode(
    line: bytes, registry: Mapping[str, type], max_bytes: int
) -> Frame:
    if len(line) > max_bytes:
        raise ProtocolError(
            "frame_too_large",
            f"frame of {len(line)} bytes exceeds the "
            f"{max_bytes}-byte limit",
        )
    try:
        payload = json.loads(line, parse_constant=_reject_constant)
    except ProtocolError:
        raise
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad_json", f"malformed JSON frame: {exc}")
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad_frame", "frame must be a JSON object"
        )
    op = payload.pop("op", None)
    if not isinstance(op, str):
        raise ProtocolError("bad_frame", "frame is missing its 'op'")
    cls = registry.get(op)
    if cls is None:
        raise ProtocolError("unknown_op", f"unknown op {op!r}")
    kwargs: dict[str, object] = {}
    for field in dataclasses.fields(cls):
        if field.name in payload:
            validate = _VALIDATORS[str(field.type)]
            kwargs[field.name] = validate(
                payload.pop(field.name), field.name
            )
        elif field.default is dataclasses.MISSING:
            raise ProtocolError(
                "bad_field",
                f"op {op!r} is missing required field {field.name!r}",
            )
    if payload:
        unknown = ", ".join(sorted(payload))
        raise ProtocolError(
            "bad_field", f"op {op!r} got unknown fields: {unknown}"
        )
    return cls(**kwargs)


def decode_request(
    line: bytes, max_bytes: int = MAX_FRAME_BYTES
) -> Frame:
    """Decode one client→server line; raises :class:`ProtocolError`."""
    return _decode(line, REQUEST_TYPES, max_bytes)


def decode_reply(line: bytes, max_bytes: int = MAX_FRAME_BYTES) -> Frame:
    """Decode one server→client line; raises :class:`ProtocolError`."""
    return _decode(line, REPLY_TYPES, max_bytes)
