"""The online Trusted Server: admission control over the staged engine.

:class:`TrustedServer` turns the PR-3 :class:`~repro.engine.pipeline.
Engine` into a long-running concurrent service.  The concurrency model
is a *single sequencer*: every admitted operation (location update or
service request) is queued into one bounded FIFO and executed by one
dispatcher task, so the engine — which is deliberately synchronous and
per-user-ordered — never sees concurrent mutation and the served
decision stream stays equivalent to an offline
:meth:`~repro.engine.pipeline.Engine.process_batch` replay of the same
per-user-ordered workload (``tests/serve/test_determinism.py``).

Admission control happens *before* the queue:

* a session with ``max_inflight`` operations outstanding is shed
  (``overloaded`` / reason ``inflight``) — one client cannot occupy the
  whole queue;
* a full queue sheds with reason ``queue`` and a ``retry_after`` hint
  derived from the queue depth times an EMA of recent service time —
  overload degrades into explicit backpressure, never into unbounded
  memory or timeouts;
* a draining server rejects new work with ``draining`` (not a shed:
  the client should reconnect elsewhere, not retry here).

Graceful drain (:meth:`TrustedServer.drain`): stop admitting, let the
dispatcher flush every queued job, then emit the final
``serve.drained`` audit event carrying the serving totals and the
engine's decision tallies.

Observability rides the engine's own telemetry pipeline: queue-depth /
connection gauges, ``serve.request_ms`` / ``serve.queue_wait_ms``
histograms, ``serve.shed`` counters — and every decision still flows
through the ``ts.decision`` event channel, so a
:class:`~repro.obs.slo.PrivacyMonitor` attached via ``slo_rules``
audits the online server exactly as it audits offline replays.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.engine.pipeline import Engine
from repro.geometry.point import STPoint
from repro.obs.config import Telemetry
from repro.obs.export import render_prometheus
from repro.obs.slo import PrivacyMonitor, SloRule
from repro.obs.tracing import TraceContext
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    DecisionReply,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Frame,
    HealthReply,
    HealthRequest,
    Hello,
    LocationUpdate,
    MetricsReply,
    MetricsRequest,
    ProfileReply,
    ProfileRequest,
    ServiceRequest,
    StatsReply,
    StatsRequest,
    TracesReply,
    TracesRequest,
    UpdateAck,
    Welcome,
)


@dataclass(frozen=True)
class ServeConfig:
    """Admission-control and framing limits of one server."""

    #: Bound of the dispatch queue; beyond it requests are shed.
    max_queue_depth: int = 1024
    #: Per-session cap on queued-but-unanswered operations.
    max_inflight: int = 64
    #: Per-frame wire size limit (bytes, including the newline).
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Lower bound of the ``retry_after`` backoff hint (seconds).
    retry_after_floor_s: float = 0.01
    #: Advertised in the Welcome frame.
    server_name: str = "repro-ts"

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )


def render_metrics_reply(
    telemetry: Telemetry, max_frame_bytes: int, frame: MetricsRequest
) -> Frame:
    """The ``metrics`` op, shared by every frontend (server or router)."""
    if frame.format != "prometheus":
        return ErrorReply(
            id=frame.id,
            code="bad_field",
            message=(
                f"unknown metrics format {frame.format!r}; "
                "this server speaks 'prometheus'"
            ),
        )
    if not telemetry.enabled:
        return ErrorReply(
            id=frame.id,
            code="no_telemetry",
            message="telemetry is disabled on this server",
        )
    body = render_prometheus(telemetry.metrics)
    # The exposition must fit one frame; refuse rather than hand
    # the transport an encode-time frame_too_large surprise.
    if len(body.encode("utf-8")) > max_frame_bytes - 256:
        return ErrorReply(
            id=frame.id,
            code="frame_too_large",
            message=(
                "metrics exposition exceeds the frame size limit; "
                "raise max_frame_bytes"
            ),
        )
    return MetricsReply(id=frame.id, format="prometheus", body=body)


def _fit_body(lines: "list[str]", max_frame_bytes: int) -> str:
    """Join lines into one reply body that fits the frame budget.

    Collapsed stacks come hottest-first, so halving the line list
    until the body fits keeps the most significant stacks.
    """
    budget = max(0, max_frame_bytes - 512)
    body = "\n".join(lines)
    while lines and len(body.encode("utf-8")) > budget:
        lines = lines[: len(lines) // 2]
        body = "\n".join(lines)
    return body


def render_profile_reply(
    telemetry: Telemetry, max_frame_bytes: int, frame: ProfileRequest
) -> Frame:
    """The ``profile`` op, shared by every frontend (server or router)."""
    if not telemetry.enabled:
        return ErrorReply(
            id=frame.id,
            code="no_telemetry",
            message="telemetry is disabled on this server",
        )
    profiler = telemetry.profiler
    if frame.action == "start":
        if frame.interval_ms <= 0:
            return ErrorReply(
                id=frame.id,
                code="bad_field",
                message=(
                    "interval_ms must be positive, got "
                    f"{frame.interval_ms}"
                ),
            )
        try:
            telemetry.start_profiler(
                interval_s=frame.interval_ms / 1000.0
            )
        except RuntimeError as exc:
            return ErrorReply(
                id=frame.id,
                code="profiler_state",
                message=str(exc),
            )
        return ProfileReply(
            id=frame.id, state="running", samples=0, duration_s=0.0
        )
    if frame.action == "stop":
        if profiler is None or not profiler.running:
            return ErrorReply(
                id=frame.id,
                code="profiler_state",
                message="no profiler is running",
            )
        report = telemetry.stop_profiler()
        assert report is not None
        return ProfileReply(
            id=frame.id,
            state="stopped",
            samples=report.samples,
            duration_s=report.duration_s,
        )
    if frame.action == "status":
        if profiler is None:
            state, samples, duration_s = "idle", 0, 0.0
        else:
            state = "running" if profiler.running else "stopped"
            samples, duration_s = (
                profiler.sample_count, profiler.duration_s
            )
        return ProfileReply(
            id=frame.id,
            state=state,
            samples=samples,
            duration_s=duration_s,
        )
    if frame.action in ("collapsed", "stages"):
        if profiler is None:
            return ErrorReply(
                id=frame.id,
                code="profiler_state",
                message="no capture exists; start the profiler first",
            )
        report = profiler.report()
        state = "running" if profiler.running else "stopped"
        if frame.action == "collapsed":
            body = _fit_body(
                report.collapsed_lines(limit=max(0, frame.limit)),
                max_frame_bytes,
            )
        else:
            payload = report.to_dict()
            # The stages body carries the table, not the stacks —
            # fetch those via the ``collapsed`` action.
            del payload["stacks"]
            payload["traces"] = payload["traces"][
                : max(0, frame.limit)
            ]
            body = json.dumps(payload, separators=(",", ":"))
            if len(body.encode("utf-8")) > max_frame_bytes - 512:
                payload["traces"] = []
                body = json.dumps(payload, separators=(",", ":"))
        return ProfileReply(
            id=frame.id,
            state=state,
            samples=report.samples,
            duration_s=report.duration_s,
            body=body,
        )
    return ErrorReply(
        id=frame.id,
        code="bad_field",
        message=(
            f"unknown profile action {frame.action!r}; expected "
            "start|stop|status|collapsed|stages"
        ),
    )


class ClientSession:
    """Per-connection serving state (the pseudonymous client identity).

    The wire never authenticates users — like the paper's TS, the
    frontend is inside the trust boundary — but each connection gets an
    opaque ``session_id`` used in telemetry and limits, never the
    client-supplied name.
    """

    __slots__ = (
        "session_id", "client", "inflight", "accepted", "shed", "trace",
    )

    def __init__(self, session_id: str, client: str) -> None:
        self.session_id = session_id
        self.client = client
        #: Operations admitted but not yet answered.
        self.inflight = 0
        self.accepted = 0
        self.shed = 0
        #: Whether trace propagation was negotiated in hello/welcome.
        self.trace = False


def _with_trace(reply: Frame, wire: str) -> Frame:
    """Clone a frozen reply frame with its ``trace`` field set.

    Equivalent to ``dataclasses.replace(reply, trace=wire)`` but ~15x
    cheaper — this runs once per traced operation, and ``replace``
    re-drives the whole generated ``__init__``.
    """
    clone = object.__new__(type(reply))
    clone.__dict__.update(reply.__dict__)
    clone.__dict__["trace"] = wire
    return clone


class _Job:
    """One admitted operation waiting in the dispatch queue."""

    __slots__ = ("session", "frame", "future", "enqueued_at", "trace")

    def __init__(
        self,
        session: ClientSession,
        frame: Frame,
        future: "asyncio.Future[Frame]",
    ) -> None:
        self.session = session
        self.frame = frame
        self.future = future
        self.enqueued_at = time.perf_counter()
        #: Wire trace context of a traced request (else None); the
        #: dispatcher emits the queue-wait span from ``enqueued_at``.
        self.trace: TraceContext | None = None


class TrustedServer:
    """Serving frontend over one :class:`Engine` (see module doc)."""

    def __init__(
        self,
        engine: Engine,
        config: ServeConfig | None = None,
        slo_rules: "Iterable[SloRule | str] | None" = None,
        slo_window_s: float = 2 * 3600.0,
    ) -> None:
        self.engine = engine
        self.config = config or ServeConfig()
        self.telemetry = engine.telemetry
        self._queue: "asyncio.Queue[_Job]" = asyncio.Queue(
            maxsize=self.config.max_queue_depth
        )
        self._sessions: dict[str, ClientSession] = {}
        self._session_seq = 0
        self._dispatcher: "asyncio.Task[None] | None" = None
        self._draining = False
        self._closed = False
        #: EMA of recent service time, seeding the retry_after hint.
        self._ema_service_s = 0.001
        # Serving totals (mirrored as serve.* counters when telemetry
        # is enabled; kept as plain ints so stats work without it).
        self.accepted = 0
        self.served = 0
        self.shed_total = 0
        self.rejected = 0
        self.protocol_errors = 0
        #: Monotonic start time, for the ``health`` op's uptime.
        self.started_at = time.monotonic()
        #: Ring of recently completed traced requests (``traces`` op).
        self.recent_traces: deque[dict] = deque(maxlen=64)
        self.privacy_monitor: PrivacyMonitor | None = None
        if slo_rules is not None:
            if not self.telemetry.enabled:
                raise ValueError(
                    "slo_rules require enabled telemetry; build the "
                    "engine with telemetry=TelemetryConfig(enabled=True)"
                )
            self.privacy_monitor = PrivacyMonitor(
                store=engine.store,
                rules=slo_rules,
                window_s=slo_window_s,
            ).attach(self.telemetry)

    # -- lifecycle -----------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> "TrustedServer":
        """Spawn the dispatcher; idempotent."""
        if self._closed:
            raise RuntimeError("server is closed")
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(
                self._dispatch_loop(), name="repro-serve-dispatcher"
            )
        return self

    async def drain(self) -> DrainReply:
        """Stop admitting, flush the queue, emit the final audit."""
        first = not self._draining
        self._draining = True
        await self._queue.join()
        reply = DrainReply(
            id=0,
            served=self.served,
            shed=self.shed_total,
            rejected=self.rejected,
            pending=self._queue.qsize(),
        )
        if first:
            if self.privacy_monitor is not None:
                self.privacy_monitor.evaluate()
            telemetry = self.telemetry
            if telemetry.enabled:
                telemetry.gauge("serve.queue_depth", 0)
                telemetry.event(
                    "serve.drained",
                    served=self.served,
                    shed=self.shed_total,
                    rejected=self.rejected,
                    protocol_errors=self.protocol_errors,
                    decisions={
                        decision.value: count
                        for decision, count in (
                            self.engine.decision_counts().items()
                        )
                        if count
                    },
                )
        return reply

    async def close(self) -> None:
        """Drain, then stop the dispatcher.  Idempotent."""
        if self._closed:
            return
        await self.drain()
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None

    # -- sessions ------------------------------------------------------

    def open_session(self, client: str = "client") -> ClientSession:
        """Register one connection; returns its pseudonymous session."""
        self._session_seq += 1
        session = ClientSession(f"s{self._session_seq}", client)
        self._sessions[session.session_id] = session
        self.telemetry.gauge("serve.connections", len(self._sessions))
        return session

    def close_session(self, session: ClientSession) -> None:
        self._sessions.pop(session.session_id, None)
        self.telemetry.gauge("serve.connections", len(self._sessions))

    def welcome(self, session: ClientSession, hello: Hello) -> Frame:
        """Answer a Hello: version check, then the negotiated limits."""
        if hello.version != PROTOCOL_VERSION:
            return ErrorReply(
                id=None,
                code="bad_version",
                message=(
                    f"protocol version {hello.version} not supported; "
                    f"server speaks {PROTOCOL_VERSION}"
                ),
            )
        session.client = hello.client
        # Trace propagation is on only when both peers want it: the
        # client asked and this server's telemetry can record spans.
        session.trace = bool(hello.trace and self.telemetry.enabled)
        return Welcome(
            version=PROTOCOL_VERSION,
            server=self.config.server_name,
            session=session.session_id,
            max_inflight=self.config.max_inflight,
            max_queue_depth=self.config.max_queue_depth,
            trace=session.trace,
        )

    def note_protocol_error(self) -> None:
        """Transports report undecodable frames here."""
        self.protocol_errors += 1
        self.telemetry.count("serve.protocol_errors")

    # -- admission and dispatch ----------------------------------------

    async def submit(self, session: ClientSession, frame: Frame) -> Frame:
        """Admit one decoded frame; resolves to its reply frame.

        This is the single entry point shared by every transport: the
        loopback connection and the TCP handler both land here, so
        admission control and shedding behave identically with and
        without sockets.
        """
        if isinstance(frame, Hello):
            return self.welcome(session, frame)
        if isinstance(frame, StatsRequest):
            return self._stats_reply(frame.id)
        if isinstance(frame, MetricsRequest):
            return self._metrics_reply(frame)
        if isinstance(frame, HealthRequest):
            return self._health_reply(frame)
        if isinstance(frame, TracesRequest):
            return self._traces_reply(frame)
        if isinstance(frame, ProfileRequest):
            return self._profile_reply(frame)
        if isinstance(frame, DrainRequest):
            reply = await self.drain()
            return DrainReply(
                id=frame.id,
                served=reply.served,
                shed=reply.shed,
                rejected=reply.rejected,
                pending=reply.pending,
            )
        if not isinstance(frame, (LocationUpdate, ServiceRequest)):
            self.note_protocol_error()
            return ErrorReply(
                id=getattr(frame, "id", None),
                code="unknown_op",
                message=f"frame {frame.op!r} is not servable",
            )
        ctx: TraceContext | None = None
        if session.trace and frame.trace is not None:
            try:
                ctx = TraceContext.from_wire(frame.trace)
            except ValueError as exc:
                self.note_protocol_error()
                return ErrorReply(
                    id=frame.id, code="bad_field", message=str(exc)
                )
        # Admission spans only exist when a sink can receive them; the
        # trace identity itself (exemplars, introspection, the reply
        # echo) costs nothing extra here.
        record = ctx is not None and self.telemetry.tracer.sinks
        if record:
            admit_start = time.perf_counter()
        reply_or_job = self._admit(session, frame)
        if record:
            assert ctx is not None
            if isinstance(reply_or_job, ErrorReply):
                self.telemetry.emit_span(
                    "serve.admission",
                    admit_start,
                    time.perf_counter(),
                    ctx,
                    op=frame.op,
                    outcome=reply_or_job.code,
                )
            else:
                self.telemetry.emit_span(
                    "serve.admission",
                    admit_start,
                    time.perf_counter(),
                    ctx,
                    op=frame.op,
                    outcome="admitted",
                    queue_depth=self._queue.qsize(),
                )
        if isinstance(reply_or_job, ErrorReply):
            if ctx is not None:
                self.recent_traces.append(
                    {
                        "trace_id": ctx.trace_id,
                        "op": frame.op,
                        "decision": None,
                        "queue_ms": 0.0,
                        "total_ms": 0.0,
                        "shed": reply_or_job.is_shed,
                    }
                )
                return _with_trace(reply_or_job, ctx.to_wire())
            return reply_or_job
        job = reply_or_job
        if ctx is not None:
            # The queue-wait span is emitted by the dispatcher from
            # ``enqueued_at`` — no open Span object crosses the tasks.
            job.trace = ctx
        return await job.future

    def _admit(
        self,
        session: ClientSession,
        frame: "LocationUpdate | ServiceRequest",
    ) -> "_Job | ErrorReply":
        telemetry = self.telemetry
        if self._draining or self._closed:
            self.rejected += 1
            telemetry.count("serve.rejected", reason="draining")
            return ErrorReply(
                id=frame.id,
                code="draining",
                message="server is draining; no new work admitted",
            )
        if session.inflight >= self.config.max_inflight:
            return self._shed(session, frame, reason="inflight")
        future: "asyncio.Future[Frame]" = (
            asyncio.get_running_loop().create_future()
        )
        job = _Job(session, frame, future)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            return self._shed(session, frame, reason="queue")
        session.inflight += 1
        session.accepted += 1
        self.accepted += 1
        if telemetry.enabled:
            telemetry.gauge("serve.queue_depth", self._queue.qsize())
        return job

    def _shed(
        self,
        session: ClientSession,
        frame: "LocationUpdate | ServiceRequest",
        reason: str,
    ) -> ErrorReply:
        """Load-shed one operation: explicit backpressure, not failure."""
        session.shed += 1
        self.shed_total += 1
        self.telemetry.count("serve.shed", reason=reason)
        retry_after = max(
            self.config.retry_after_floor_s,
            self._queue.qsize() * self._ema_service_s,
        )
        return ErrorReply(
            id=frame.id,
            code="overloaded",
            message=f"shed ({reason}); retry after {retry_after:.3f}s",
            retry_after=retry_after,
        )

    def _stats_reply(self, reply_id: int) -> StatsReply:
        return StatsReply(
            id=reply_id,
            accepted=self.accepted,
            served=self.served,
            shed=self.shed_total,
            rejected=self.rejected,
            protocol_errors=self.protocol_errors,
            queue_depth=self._queue.qsize(),
            sessions=len(self._sessions),
        )

    # -- introspection ops ---------------------------------------------

    def _metrics_reply(self, frame: MetricsRequest) -> Frame:
        """Render the registry for the ``metrics`` op (scrape point)."""
        return render_metrics_reply(
            self.telemetry, self.config.max_frame_bytes, frame
        )

    def _health_reply(self, frame: HealthRequest) -> HealthReply:
        """One-frame liveness/readiness snapshot (``health`` op)."""
        slo_ok = True
        breaches = 0
        if self.privacy_monitor is not None:
            slo_ok = all(
                status.ok
                for status in self.privacy_monitor.status.values()
            )
            breaches = sum(
                1
                for alert in self.privacy_monitor.alerts
                if alert.state == "breach"
            )
        if self._draining or self._closed:
            status_text = "draining"
        elif not slo_ok:
            status_text = "degraded"
        else:
            status_text = "ok"
        return HealthReply(
            id=frame.id,
            status=status_text,
            uptime_s=time.monotonic() - self.started_at,
            queue_depth=self._queue.qsize(),
            sessions=len(self._sessions),
            served=self.served,
            shed=self.shed_total,
            slo_ok=slo_ok,
            breaches=breaches,
        )

    def _traces_reply(self, frame: TracesRequest) -> TracesReply:
        """Recently completed traces, most recent first."""
        limit = max(0, min(frame.limit, len(self.recent_traces)))
        entries = list(self.recent_traces)[-limit:][::-1] if limit else []
        return TracesReply(
            id=frame.id,
            body=json.dumps(entries, separators=(",", ":")),
        )

    def _profile_reply(self, frame: ProfileRequest) -> Frame:
        """Drive the sampling profiler (``profile`` op).

        The profiler targets this event-loop thread — the one the
        dispatcher (and therefore every engine call) runs on — so
        samples land on real request stacks.
        """
        return render_profile_reply(
            self.telemetry, self.config.max_frame_bytes, frame
        )

    async def _dispatch_loop(self) -> None:
        """The single sequencer draining the admission queue."""
        while True:
            job = await self._queue.get()
            try:
                reply = self._execute(job)
            except Exception as exc:  # engine bug: answer, keep serving
                reply = ErrorReply(
                    id=getattr(job.frame, "id", None),
                    code="internal",
                    message=f"{type(exc).__name__}: {exc}",
                )
            job.session.inflight -= 1
            if not job.future.done():
                job.future.set_result(reply)
            self._queue.task_done()
            if self.telemetry.enabled:
                self.telemetry.gauge(
                    "serve.queue_depth", self._queue.qsize()
                )

    def _execute(self, job: _Job) -> Frame:
        """Run one queued operation through the engine (synchronous)."""
        start = time.perf_counter()
        wait_ms = (start - job.enqueued_at) * 1000.0
        frame = job.frame
        reply: Frame
        if job.trace is not None:
            telemetry = self.telemetry
            if telemetry.tracer.sinks:
                telemetry.emit_span(
                    "serve.queue_wait",
                    job.enqueued_at,
                    start,
                    job.trace,
                    op=frame.op,
                    wait_ms=wait_ms,
                )
                # Activated (not detached) so the engine's ts.request /
                # stage spans parent under it via the contextvar chain.
                with telemetry.span(
                    "serve.dispatch", parent=job.trace, op=frame.op
                ) as dispatch:
                    reply = self._serve(frame)
                    decision = getattr(reply, "decision", None)
                    if decision is not None:
                        dispatch.annotate(decision=decision)
            else:
                # No sink: span records are undeliverable — activate
                # the identity only, so exemplars, ts.decision events,
                # and the introspection ring still see the trace.
                token = telemetry.tracer.activate(job.trace)
                try:
                    reply = self._serve(frame)
                finally:
                    telemetry.tracer.deactivate(token)
            reply = _with_trace(reply, job.trace.to_wire())
        else:
            reply = self._serve(frame)
        self.served += 1
        service_s = time.perf_counter() - start
        self._ema_service_s += 0.05 * (service_s - self._ema_service_s)
        trace_id = job.trace.trace_id if job.trace is not None else None
        telemetry = self.telemetry
        if telemetry.enabled:
            kind = "request" if isinstance(frame, ServiceRequest) else (
                "update"
            )
            telemetry.count("serve.served", kind=kind)
            telemetry.observe(
                "serve.queue_wait_ms", wait_ms, trace_id=trace_id
            )
            telemetry.observe(
                "serve.request_ms",
                wait_ms + service_s * 1000.0,
                trace_id=trace_id,
            )
        if trace_id is not None:
            self.recent_traces.append(
                {
                    "trace_id": trace_id,
                    "op": frame.op,
                    "decision": getattr(reply, "decision", None),
                    "queue_ms": wait_ms,
                    "total_ms": wait_ms + service_s * 1000.0,
                    "shed": False,
                }
            )
        return reply

    def _serve(self, frame: Frame) -> Frame:
        """The engine call behind one admitted frame."""
        return execute_op(self.engine, frame)


def execute_op(engine: Engine, frame: Frame) -> Frame:
    """Run one state-mutating frame through an engine; build its reply.

    The single reply-construction path shared by the single-sequencer
    server and every shard worker, so a decision crosses the wire
    identically no matter which frontend served it.
    """
    # Replies are built by installing a complete ``__dict__`` on a bare
    # instance — the frames are frozen dataclasses without slots or
    # ``__post_init__``, so this is field-for-field identical to the
    # generated ``__init__`` minus its per-field frozen-``__setattr__``
    # round trips (measurable on the serving hot path).
    if isinstance(frame, ServiceRequest):
        event = engine.process(
            frame.user_id,
            STPoint(frame.x, frame.y, frame.t),
            frame.service,
        )
        request = event.request
        context = request.context
        rect = context.rect
        interval = context.interval
        reply = object.__new__(DecisionReply)
        object.__setattr__(
            reply,
            "__dict__",
            {
                "id": frame.id,
                "msgid": request.msgid,
                "pseudonym": request.pseudonym,
                "decision": event.decision.value,
                "forwarded": event.forwarded,
                "context": (
                    rect.x_min,
                    rect.y_min,
                    rect.x_max,
                    rect.y_max,
                    interval.start,
                    interval.end,
                ),
                "lbqid": event.lbqid_name,
                "step": event.step,
                "required_k": event.required_k,
                "rotated": event.pseudonym_rotated,
                "trace": None,
            },
        )
        return reply
    assert isinstance(frame, LocationUpdate)
    engine.report_location(
        frame.user_id, STPoint(frame.x, frame.y, frame.t)
    )
    ack = object.__new__(UpdateAck)
    object.__setattr__(ack, "__dict__", {"id": frame.id, "trace": None})
    return ack
