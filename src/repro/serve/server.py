"""The online Trusted Server: admission control over the staged engine.

:class:`TrustedServer` turns the PR-3 :class:`~repro.engine.pipeline.
Engine` into a long-running concurrent service.  The concurrency model
is a *single sequencer*: every admitted operation (location update or
service request) is queued into one bounded FIFO and executed by one
dispatcher task, so the engine — which is deliberately synchronous and
per-user-ordered — never sees concurrent mutation and the served
decision stream stays equivalent to an offline
:meth:`~repro.engine.pipeline.Engine.process_batch` replay of the same
per-user-ordered workload (``tests/serve/test_determinism.py``).

Admission control happens *before* the queue:

* a session with ``max_inflight`` operations outstanding is shed
  (``overloaded`` / reason ``inflight``) — one client cannot occupy the
  whole queue;
* a full queue sheds with reason ``queue`` and a ``retry_after`` hint
  derived from the queue depth times an EMA of recent service time —
  overload degrades into explicit backpressure, never into unbounded
  memory or timeouts;
* a draining server rejects new work with ``draining`` (not a shed:
  the client should reconnect elsewhere, not retry here).

Graceful drain (:meth:`TrustedServer.drain`): stop admitting, let the
dispatcher flush every queued job, then emit the final
``serve.drained`` audit event carrying the serving totals and the
engine's decision tallies.

Observability rides the engine's own telemetry pipeline: queue-depth /
connection gauges, ``serve.request_ms`` / ``serve.queue_wait_ms``
histograms, ``serve.shed`` counters — and every decision still flows
through the ``ts.decision`` event channel, so a
:class:`~repro.obs.slo.PrivacyMonitor` attached via ``slo_rules``
audits the online server exactly as it audits offline replays.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Iterable

from repro.engine.pipeline import Engine
from repro.geometry.point import STPoint
from repro.obs.slo import PrivacyMonitor, SloRule
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    DecisionReply,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Frame,
    Hello,
    LocationUpdate,
    ServiceRequest,
    StatsReply,
    StatsRequest,
    UpdateAck,
    Welcome,
)


@dataclass(frozen=True)
class ServeConfig:
    """Admission-control and framing limits of one server."""

    #: Bound of the dispatch queue; beyond it requests are shed.
    max_queue_depth: int = 1024
    #: Per-session cap on queued-but-unanswered operations.
    max_inflight: int = 64
    #: Per-frame wire size limit (bytes, including the newline).
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Lower bound of the ``retry_after`` backoff hint (seconds).
    retry_after_floor_s: float = 0.01
    #: Advertised in the Welcome frame.
    server_name: str = "repro-ts"

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )


class ClientSession:
    """Per-connection serving state (the pseudonymous client identity).

    The wire never authenticates users — like the paper's TS, the
    frontend is inside the trust boundary — but each connection gets an
    opaque ``session_id`` used in telemetry and limits, never the
    client-supplied name.
    """

    __slots__ = ("session_id", "client", "inflight", "accepted", "shed")

    def __init__(self, session_id: str, client: str) -> None:
        self.session_id = session_id
        self.client = client
        #: Operations admitted but not yet answered.
        self.inflight = 0
        self.accepted = 0
        self.shed = 0


class _Job:
    """One admitted operation waiting in the dispatch queue."""

    __slots__ = ("session", "frame", "future", "enqueued_at")

    def __init__(
        self,
        session: ClientSession,
        frame: Frame,
        future: "asyncio.Future[Frame]",
    ) -> None:
        self.session = session
        self.frame = frame
        self.future = future
        self.enqueued_at = time.perf_counter()


class TrustedServer:
    """Serving frontend over one :class:`Engine` (see module doc)."""

    def __init__(
        self,
        engine: Engine,
        config: ServeConfig | None = None,
        slo_rules: "Iterable[SloRule | str] | None" = None,
        slo_window_s: float = 2 * 3600.0,
    ) -> None:
        self.engine = engine
        self.config = config or ServeConfig()
        self.telemetry = engine.telemetry
        self._queue: "asyncio.Queue[_Job]" = asyncio.Queue(
            maxsize=self.config.max_queue_depth
        )
        self._sessions: dict[str, ClientSession] = {}
        self._session_seq = 0
        self._dispatcher: "asyncio.Task[None] | None" = None
        self._draining = False
        self._closed = False
        #: EMA of recent service time, seeding the retry_after hint.
        self._ema_service_s = 0.001
        # Serving totals (mirrored as serve.* counters when telemetry
        # is enabled; kept as plain ints so stats work without it).
        self.accepted = 0
        self.served = 0
        self.shed_total = 0
        self.rejected = 0
        self.protocol_errors = 0
        self.privacy_monitor: PrivacyMonitor | None = None
        if slo_rules is not None:
            if not self.telemetry.enabled:
                raise ValueError(
                    "slo_rules require enabled telemetry; build the "
                    "engine with telemetry=TelemetryConfig(enabled=True)"
                )
            self.privacy_monitor = PrivacyMonitor(
                store=engine.store,
                rules=slo_rules,
                window_s=slo_window_s,
            ).attach(self.telemetry)

    # -- lifecycle -----------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> "TrustedServer":
        """Spawn the dispatcher; idempotent."""
        if self._closed:
            raise RuntimeError("server is closed")
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(
                self._dispatch_loop(), name="repro-serve-dispatcher"
            )
        return self

    async def drain(self) -> DrainReply:
        """Stop admitting, flush the queue, emit the final audit."""
        first = not self._draining
        self._draining = True
        await self._queue.join()
        reply = DrainReply(
            id=0,
            served=self.served,
            shed=self.shed_total,
            rejected=self.rejected,
            pending=self._queue.qsize(),
        )
        if first:
            if self.privacy_monitor is not None:
                self.privacy_monitor.evaluate()
            telemetry = self.telemetry
            if telemetry.enabled:
                telemetry.gauge("serve.queue_depth", 0)
                telemetry.event(
                    "serve.drained",
                    served=self.served,
                    shed=self.shed_total,
                    rejected=self.rejected,
                    protocol_errors=self.protocol_errors,
                    decisions={
                        decision.value: count
                        for decision, count in (
                            self.engine.decision_counts().items()
                        )
                        if count
                    },
                )
        return reply

    async def close(self) -> None:
        """Drain, then stop the dispatcher.  Idempotent."""
        if self._closed:
            return
        await self.drain()
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None

    # -- sessions ------------------------------------------------------

    def open_session(self, client: str = "client") -> ClientSession:
        """Register one connection; returns its pseudonymous session."""
        self._session_seq += 1
        session = ClientSession(f"s{self._session_seq}", client)
        self._sessions[session.session_id] = session
        self.telemetry.gauge("serve.connections", len(self._sessions))
        return session

    def close_session(self, session: ClientSession) -> None:
        self._sessions.pop(session.session_id, None)
        self.telemetry.gauge("serve.connections", len(self._sessions))

    def welcome(self, session: ClientSession, hello: Hello) -> Frame:
        """Answer a Hello: version check, then the negotiated limits."""
        if hello.version != PROTOCOL_VERSION:
            return ErrorReply(
                id=None,
                code="bad_version",
                message=(
                    f"protocol version {hello.version} not supported; "
                    f"server speaks {PROTOCOL_VERSION}"
                ),
            )
        session.client = hello.client
        return Welcome(
            version=PROTOCOL_VERSION,
            server=self.config.server_name,
            session=session.session_id,
            max_inflight=self.config.max_inflight,
            max_queue_depth=self.config.max_queue_depth,
        )

    def note_protocol_error(self) -> None:
        """Transports report undecodable frames here."""
        self.protocol_errors += 1
        self.telemetry.count("serve.protocol_errors")

    # -- admission and dispatch ----------------------------------------

    async def submit(self, session: ClientSession, frame: Frame) -> Frame:
        """Admit one decoded frame; resolves to its reply frame.

        This is the single entry point shared by every transport: the
        loopback connection and the TCP handler both land here, so
        admission control and shedding behave identically with and
        without sockets.
        """
        if isinstance(frame, Hello):
            return self.welcome(session, frame)
        if isinstance(frame, StatsRequest):
            return self._stats_reply(frame.id)
        if isinstance(frame, DrainRequest):
            reply = await self.drain()
            return DrainReply(
                id=frame.id,
                served=reply.served,
                shed=reply.shed,
                rejected=reply.rejected,
                pending=reply.pending,
            )
        if not isinstance(frame, (LocationUpdate, ServiceRequest)):
            self.note_protocol_error()
            return ErrorReply(
                id=getattr(frame, "id", None),
                code="unknown_op",
                message=f"frame {frame.op!r} is not servable",
            )
        reply_or_job = self._admit(session, frame)
        if isinstance(reply_or_job, ErrorReply):
            return reply_or_job
        return await reply_or_job.future

    def _admit(
        self,
        session: ClientSession,
        frame: "LocationUpdate | ServiceRequest",
    ) -> "_Job | ErrorReply":
        telemetry = self.telemetry
        if self._draining or self._closed:
            self.rejected += 1
            telemetry.count("serve.rejected", reason="draining")
            return ErrorReply(
                id=frame.id,
                code="draining",
                message="server is draining; no new work admitted",
            )
        if session.inflight >= self.config.max_inflight:
            return self._shed(session, frame, reason="inflight")
        future: "asyncio.Future[Frame]" = (
            asyncio.get_running_loop().create_future()
        )
        job = _Job(session, frame, future)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            return self._shed(session, frame, reason="queue")
        session.inflight += 1
        session.accepted += 1
        self.accepted += 1
        if telemetry.enabled:
            telemetry.gauge("serve.queue_depth", self._queue.qsize())
        return job

    def _shed(
        self,
        session: ClientSession,
        frame: "LocationUpdate | ServiceRequest",
        reason: str,
    ) -> ErrorReply:
        """Load-shed one operation: explicit backpressure, not failure."""
        session.shed += 1
        self.shed_total += 1
        self.telemetry.count("serve.shed", reason=reason)
        retry_after = max(
            self.config.retry_after_floor_s,
            self._queue.qsize() * self._ema_service_s,
        )
        return ErrorReply(
            id=frame.id,
            code="overloaded",
            message=f"shed ({reason}); retry after {retry_after:.3f}s",
            retry_after=retry_after,
        )

    def _stats_reply(self, reply_id: int) -> StatsReply:
        return StatsReply(
            id=reply_id,
            accepted=self.accepted,
            served=self.served,
            shed=self.shed_total,
            rejected=self.rejected,
            protocol_errors=self.protocol_errors,
            queue_depth=self._queue.qsize(),
            sessions=len(self._sessions),
        )

    async def _dispatch_loop(self) -> None:
        """The single sequencer draining the admission queue."""
        while True:
            job = await self._queue.get()
            try:
                reply = self._execute(job)
            except Exception as exc:  # engine bug: answer, keep serving
                reply = ErrorReply(
                    id=getattr(job.frame, "id", None),
                    code="internal",
                    message=f"{type(exc).__name__}: {exc}",
                )
            job.session.inflight -= 1
            if not job.future.done():
                job.future.set_result(reply)
            self._queue.task_done()
            if self.telemetry.enabled:
                self.telemetry.gauge(
                    "serve.queue_depth", self._queue.qsize()
                )

    def _execute(self, job: _Job) -> Frame:
        """Run one queued operation through the engine (synchronous)."""
        start = time.perf_counter()
        wait_ms = (start - job.enqueued_at) * 1000.0
        frame = job.frame
        reply: Frame
        if isinstance(frame, ServiceRequest):
            event = self.engine.process(
                frame.user_id,
                STPoint(frame.x, frame.y, frame.t),
                frame.service,
            )
            request = event.request
            context = request.context
            reply = DecisionReply(
                id=frame.id,
                msgid=request.msgid,
                pseudonym=request.pseudonym,
                decision=event.decision.value,
                forwarded=event.forwarded,
                context=(
                    context.rect.x_min,
                    context.rect.y_min,
                    context.rect.x_max,
                    context.rect.y_max,
                    context.interval.start,
                    context.interval.end,
                ),
                lbqid=event.lbqid_name,
                step=event.step,
                required_k=event.required_k,
                rotated=event.pseudonym_rotated,
            )
        else:
            assert isinstance(frame, LocationUpdate)
            self.engine.report_location(
                frame.user_id, STPoint(frame.x, frame.y, frame.t)
            )
            reply = UpdateAck(id=frame.id)
        self.served += 1
        service_s = time.perf_counter() - start
        self._ema_service_s += 0.05 * (service_s - self._ema_service_s)
        telemetry = self.telemetry
        if telemetry.enabled:
            kind = "request" if isinstance(frame, ServiceRequest) else (
                "update"
            )
            telemetry.count("serve.served", kind=kind)
            telemetry.observe("serve.queue_wait_ms", wait_ms)
            telemetry.observe(
                "serve.request_ms", wait_ms + service_s * 1000.0
            )
        return reply
