"""Transports binding :class:`TrustedServer` to actual connections.

Two implementations of the same connection contract:

* :class:`TcpTransport` — the production daemon: one asyncio TCP
  listener, one handler task per connection, per-message worker tasks
  so a single connection can pipeline many outstanding operations
  (responses correlate by ``id``, so ordering on the wire is free to
  differ from submission order — except that the server's FIFO queue
  preserves it for well-ordered clients);
* :class:`LoopbackTransport` — the same protocol with no sockets: every
  frame still round-trips through :func:`encode_frame` /
  :func:`decode_request` (and the reply through the reply codec), so
  tests exercise the exact wire bytes while staying in-process and
  deterministic.

Framing errors are answered, not fatal: an undecodable line produces an
:class:`ErrorReply` with ``id=None`` and the connection continues at
the next newline.  The exceptions that do close the connection are
oversized frames (the stream may be mid-garbage; there is no safe
resynchronization point within the truncated line), a failed version
handshake, and a gate rejection of the hello itself.

Hardening (both optional, off by default):

* ``ssl_context`` wraps the TCP listener in TLS
  (:func:`server_ssl_context` builds the server side from a cert/key
  pair, :func:`client_ssl_context` the CA-pinning client side) —
  plaintext stays available for loopback and tests;
* ``gate`` installs a :class:`~repro.serve.gate.ConnectionGate`:
  hellos are judged (token, connection cap) before the server's
  welcome, and every servable op is charged to the client's token
  bucket *before* :meth:`TrustedServer.submit` — a rejected op is
  answered right here and never touches a queue or an engine.
"""

from __future__ import annotations

import asyncio
import ssl
from typing import Set

from repro.serve.gate import ConnectionGate, GatePass
from repro.serve.protocol import (
    ErrorReply,
    Frame,
    Hello,
    LocationUpdate,
    ProtocolError,
    ServiceRequest,
    Welcome,
    decode_reply,
    decode_request,
    encode_frame,
)
from repro.serve.server import ClientSession, TrustedServer


def server_ssl_context(
    certfile: str, keyfile: str
) -> ssl.SSLContext:
    """The daemon's TLS context: one cert/key pair, TLS 1.2+."""
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.minimum_version = ssl.TLSVersion.TLSv1_2
    context.load_cert_chain(certfile, keyfile)
    return context


def client_ssl_context(cafile: str) -> ssl.SSLContext:
    """A CA-pinning client context: trust exactly ``cafile``.

    The pinned CA (for dev deployments, the server's own self-signed
    cert) is the trust anchor — certificate verification is required,
    while hostname checking is off because the pin already binds the
    client to one key holder and the daemons are addressed by IP.
    """
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
    context.minimum_version = ssl.TLSVersion.TLSv1_2
    context.check_hostname = False
    context.verify_mode = ssl.CERT_REQUIRED
    context.load_verify_locations(cafile)
    return context


class LoopbackConnection:
    """One in-process client connection (see :class:`LoopbackTransport`).

    With ``trace=True`` (and enabled server telemetry) the connection
    behaves like a traced :class:`~repro.serve.client.ServeClient`:
    each sampled update/request frame gets a ``client.request`` root
    span (recorded on the *server's* tracer — loopback is in-process)
    and carries its context on the wire, so loopback tests reconstruct
    the same causal trees the TCP daemon produces.
    """

    def __init__(
        self,
        server: TrustedServer,
        session: ClientSession,
        trace: bool = False,
        gate: "ConnectionGate | None" = None,
    ):
        self._server = server
        self.session = session
        self._closed = False
        self._gate = gate
        self._ticket: "GatePass | None" = None
        self.trace = bool(trace and server.telemetry.enabled)
        if self.trace:
            session.trace = True

    def _screen(self, frame: Frame) -> "Frame | None":
        """The gate verdict on one decoded frame (None = admitted).

        Mirrors the TCP handler: hellos are judged for token and
        connection cap, servable ops are charged to the bucket, and a
        gated connection that never greeted gets ``hello_required``.
        """
        gate = self._gate
        if gate is None:
            return None
        if isinstance(frame, Hello):
            verdict = gate.admit_connection(frame)
            if isinstance(verdict, ErrorReply):
                return verdict
            gate.release(self._ticket)  # a re-hello replaces the ticket
            self._ticket = verdict
            return None
        if not isinstance(frame, (LocationUpdate, ServiceRequest)):
            return None
        if self._ticket is None:
            return ErrorReply(
                id=frame.id,
                code="hello_required",
                message="gated connection: first frame must be 'hello'",
            )
        return gate.admit_op(self._ticket, frame.id)

    async def send(self, frame: Frame) -> Frame:
        """Submit one frame through the full codec path; await reply."""
        if self._closed:
            raise ConnectionError("loopback connection is closed")
        span = None
        if (
            self.trace
            and isinstance(frame, (LocationUpdate, ServiceRequest))
            and frame.trace is None
            and self._server.telemetry.tracer.sample()
        ):
            tracer = self._server.telemetry.tracer
            if tracer.sinks:
                span = self._server.telemetry.start_span(
                    "client.request", op=frame.op
                )
                wire = f"{span.trace_id}-{span.span_id}"
            else:
                # No sink: the root record is undeliverable — mint the
                # wire identity only (same fast path as ServeClient).
                wire = tracer.new_wire()
            clone = object.__new__(type(frame))
            clone.__dict__.update(frame.__dict__)
            clone.__dict__["trace"] = wire
            frame = clone
        max_bytes = self._server.config.max_frame_bytes
        try:
            decoded = decode_request(
                encode_frame(frame, max_bytes), max_bytes
            )
        except ProtocolError as exc:
            self._server.note_protocol_error()
            if span is not None:
                span.annotate(error=exc.code).end()
            return ErrorReply(id=None, code=exc.code, message=exc.message)
        rejection = self._screen(decoded)
        if rejection is not None:
            if span is not None:
                span.annotate(error=rejection.code).end()
            return decode_reply(
                encode_frame(rejection, max_bytes), max_bytes
            )
        reply = await self._server.submit(self.session, decoded)
        if span is not None:
            decision = getattr(reply, "decision", None)
            if decision is not None:
                span.annotate(decision=decision)
            elif isinstance(reply, ErrorReply):
                span.annotate(error=reply.code)
            span.end()
        return decode_reply(encode_frame(reply, max_bytes), max_bytes)

    def post(self, frame: Frame) -> "asyncio.Task[Frame]":
        """Fire-and-collect variant of :meth:`send` (open-loop sends).

        Scheduling is FIFO, so frames posted in order are admitted in
        order — the property the determinism test leans on.
        """
        return asyncio.get_running_loop().create_task(self.send(frame))

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self._gate is not None:
                self._gate.release(self._ticket)
            self._server.close_session(self.session)


class LoopbackTransport:
    """Socket-free transport: connections straight into the server."""

    def __init__(
        self,
        server: TrustedServer,
        gate: "ConnectionGate | None" = None,
    ) -> None:
        self.server = server
        self.gate = gate

    def connect(
        self, client: str = "loopback", trace: bool = False
    ) -> LoopbackConnection:
        return LoopbackConnection(
            self.server,
            self.server.open_session(client),
            trace=trace,
            gate=self.gate,
        )


class TcpTransport:
    """The TCP daemon frontend (``asyncio.start_server``).

    ``ssl_context`` (see :func:`server_ssl_context`) upgrades the
    listener to TLS; ``gate`` screens hellos and servable ops before
    they reach the server (see module doc).
    """

    def __init__(
        self,
        server: TrustedServer,
        host: str = "127.0.0.1",
        port: int = 0,
        ssl_context: "ssl.SSLContext | None" = None,
        gate: "ConnectionGate | None" = None,
    ) -> None:
        self.server = server
        self.host = host
        self.port = port
        self.ssl_context = ssl_context
        self.gate = gate
        self._listener: asyncio.AbstractServer | None = None
        self._handlers: Set["asyncio.Task[None]"] = set()

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        await self.server.start()
        self._listener = await asyncio.start_server(
            self._handle,
            self.host,
            self.port,
            limit=self.server.config.max_frame_bytes,
            ssl=self.ssl_context,
        )
        sockname = self._listener.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Stop listening and wait for open connections to finish."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        if self._handlers:
            await asyncio.gather(
                *tuple(self._handlers), return_exceptions=True
            )

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        peer = writer.get_extra_info("peername")
        session = self.server.open_session(client=f"tcp:{peer}")
        write_lock = asyncio.Lock()
        workers: Set["asyncio.Task[None]"] = set()
        max_bytes = self.server.config.max_frame_bytes
        greeted = False
        ticket: "GatePass | None" = None
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line exceeded the stream limit; the remainder
                    # of the stream is unframed garbage — report, close.
                    self.server.note_protocol_error()
                    await self._write(
                        writer,
                        write_lock,
                        ErrorReply(
                            id=None,
                            code="frame_too_large",
                            message=(
                                f"frame exceeds the {max_bytes}-byte "
                                "limit"
                            ),
                        ),
                    )
                    break
                if not line:
                    break
                try:
                    frame = decode_request(line, max_bytes)
                except ProtocolError as exc:
                    self.server.note_protocol_error()
                    await self._write(
                        writer,
                        write_lock,
                        ErrorReply(
                            id=None, code=exc.code, message=exc.message
                        ),
                    )
                    if exc.code == "frame_too_large":
                        break
                    continue
                if isinstance(frame, Hello):
                    if self.gate is not None:
                        verdict = self.gate.admit_connection(frame)
                        if isinstance(verdict, ErrorReply):
                            # Auth/cap refusal: answer and close before
                            # the server ever sees the hello.
                            await self._write(writer, write_lock, verdict)
                            break
                        self.gate.release(ticket)  # re-hello replaces
                        ticket = verdict
                    reply = self.server.welcome(session, frame)
                    await self._write(writer, write_lock, reply)
                    if not isinstance(reply, Welcome):
                        break
                    greeted = True
                    continue
                if not greeted:
                    self.server.note_protocol_error()
                    await self._write(
                        writer,
                        write_lock,
                        ErrorReply(
                            id=getattr(frame, "id", None),
                            code="hello_required",
                            message="first frame must be 'hello'",
                        ),
                    )
                    continue
                if (
                    self.gate is not None
                    and ticket is not None
                    and isinstance(frame, (LocationUpdate, ServiceRequest))
                ):
                    rejection = self.gate.admit_op(ticket, frame.id)
                    if rejection is not None:
                        await self._write(writer, write_lock, rejection)
                        continue
                worker = asyncio.create_task(
                    self._serve_one(session, frame, writer, write_lock)
                )
                workers.add(worker)
                worker.add_done_callback(workers.discard)
        finally:
            if workers:
                await asyncio.gather(
                    *tuple(workers), return_exceptions=True
                )
            if self.gate is not None:
                self.gate.release(ticket)
            self.server.close_session(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(
        self,
        session: ClientSession,
        frame: Frame,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        reply = await self.server.submit(session, frame)
        await self._write(writer, write_lock, reply)

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        reply: Frame,
    ) -> None:
        data = encode_frame(reply, self.server.config.max_frame_bytes)
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
