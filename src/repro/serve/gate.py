"""The admission gate ahead of every sequencer: auth + rate limits.

The paper's guarantee hangs on the user ↔ Trusted Server channel being
trusted, so the serving frontend must decide *who may speak at all*
before any frame can reach an engine.  :class:`ConnectionGate` is that
decision, factored out of the transports so TCP, TLS, and HTTP all
enforce the identical policy:

* **bearer-token auth** — the ``hello`` frame carries ``token``; a
  missing or unknown token earns a typed ``bad_token``
  :class:`~repro.serve.protocol.ErrorReply` and the connection never
  produces a session the sequencer could see.  Comparison is
  constant-time (:func:`hmac.compare_digest`) per configured token;
* **connection cap** — at most ``max_connections`` gated connections
  concurrently (``connection_limit``), bounding the per-socket state a
  client fleet can pin;
* **per-client token-bucket rate limits** — each principal (the
  presented token, falling back to the client name when auth is off)
  owns one :class:`TokenBucket`; an over-rate operation earns
  ``rate_limited`` with a ``retry_after`` hint sufficient by
  construction (it is exactly the time until the bucket holds one
  token again).

Every verdict is counted in the ``gate.*`` metrics family —
``gate.rejected{reason=...}``, ``gate.admitted``, ``gate.connections``
— and mirrored in plain ints so the counters work with telemetry off.
Rejections are answered at the transport, *before*
:meth:`TrustedServer.submit`, so an unauthenticated or over-rate client
never touches an engine, a queue slot, or a session budget.

The gate is deliberately transport-fact-free: it sees decoded
:class:`~repro.serve.protocol.Hello` frames and opaque principals, so
the same instance can sit in front of a :class:`TrustedServer`, a
:class:`~repro.serve.shard.ShardRouter`, or a
:class:`~repro.serve.supervisor.WorkerSupervisor`, over any transport.
"""

from __future__ import annotations

import hmac
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.obs.config import Telemetry
from repro.serve.protocol import ErrorReply, Hello


@dataclass(frozen=True)
class GateConfig:
    """Admission policy of one :class:`ConnectionGate`.

    Every knob defaults to "off" so a gate-less deployment (loopback,
    tests, trusted lab networks) stays byte-identical to the ungated
    seed behavior.
    """

    #: Accepted bearer tokens; ``None`` disables authentication
    #: entirely (an empty tuple rejects every connection).
    tokens: "tuple[str, ...] | None" = None
    #: Sustained operations/second allowed per principal; ``None``
    #: disables rate limiting.
    rate_limit: "float | None" = None
    #: Bucket capacity (burst allowance); defaults to one second of
    #: ``rate_limit`` and never sits below 1 op.
    burst: "float | None" = None
    #: Concurrent gated connections allowed; ``None`` = unlimited.
    max_connections: "int | None" = None
    #: Bound of the principal → bucket table (drop-oldest beyond it).
    max_principals: int = 4096

    def __post_init__(self) -> None:
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError(
                f"rate_limit must be positive, got {self.rate_limit}"
            )
        if self.burst is not None and self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_connections is not None and self.max_connections < 1:
            raise ValueError(
                "max_connections must be >= 1, got "
                f"{self.max_connections}"
            )
        if self.max_principals < 1:
            raise ValueError(
                f"max_principals must be >= 1, got {self.max_principals}"
            )

    @property
    def effective_burst(self) -> float:
        assert self.rate_limit is not None
        if self.burst is not None:
            return self.burst
        return max(1.0, self.rate_limit)


class TokenBucket:
    """A deterministic token bucket (no internal clock).

    Callers pass ``now`` (seconds, any monotonic origin) into
    :meth:`acquire`; the bucket refills lazily at ``rate`` tokens per
    second up to ``capacity``.  An admitted acquire consumes one token
    and returns ``0.0``; a rejected one consumes nothing and returns
    the seconds until the bucket will hold one token — the
    ``retry_after`` hint, sufficient by construction (waiting exactly
    that long always readmits, see the property tests).
    """

    __slots__ = ("rate", "capacity", "tokens", "updated_at")

    def __init__(self, rate: float, capacity: float, now: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity
        self.updated_at = now

    def refill(self, now: float) -> float:
        """Advance the bucket to ``now``; returns the token level.

        Time never runs backwards here: a ``now`` before the last
        update leaves the level unchanged (monotonic refill), so
        out-of-order callers cannot drain a bucket by clock skew.
        """
        elapsed = now - self.updated_at
        if elapsed > 0:
            self.tokens = min(
                self.capacity, self.tokens + elapsed * self.rate
            )
            self.updated_at = now
        return self.tokens

    def acquire(self, now: float) -> float:
        """Try to take one token at ``now``; 0.0 or a retry-after.

        The admit threshold carries a one-billionth-token epsilon:
        ``retry_after`` is computed in floats, so a caller returning
        after *exactly* the hint can land an ulp short of 1.0 — the
        tolerance keeps the hint sufficient (the property tests pin
        this) at a rate-accounting error far below measurement noise.
        """
        if self.refill(now) >= 1.0 - 1e-9:
            self.tokens = max(0.0, self.tokens - 1.0)
            return 0.0
        return (1.0 - self.tokens) / self.rate


class GatePass:
    """One admitted connection's ticket through the gate.

    Holds the resolved principal and its bucket, so the per-operation
    check is one attribute hop plus the bucket arithmetic — no dict
    lookups on the hot path.
    """

    __slots__ = ("principal", "bucket", "released")

    def __init__(
        self, principal: str, bucket: "TokenBucket | None"
    ) -> None:
        self.principal = principal
        self.bucket = bucket
        self.released = False


def _reject_constant_time(
    token: "str | None", accepted: "tuple[str, ...]"
) -> bool:
    """True when ``token`` matches none of ``accepted``.

    Every configured token is compared (no early exit) and each
    comparison is :func:`hmac.compare_digest`, so the scan leaks
    neither which token prefix-matched nor how many exist.
    """
    presented = (token or "").encode("utf-8")
    matched = False
    for candidate in accepted:
        matched |= hmac.compare_digest(
            candidate.encode("utf-8"), presented
        )
    return not matched


class ConnectionGate:
    """Admission policy shared by every transport (see module doc)."""

    def __init__(
        self,
        config: GateConfig,
        telemetry: "Telemetry | None" = None,
        clock: "Callable[[], float]" = time.monotonic,
    ) -> None:
        self.config = config
        self.telemetry = telemetry
        self.clock = clock
        self.connections = 0
        #: Plain-int mirrors of the ``gate.*`` counters (telemetry may
        #: be off; the benchmarks and CI probes assert on these too).
        self.admitted_connections = 0
        self.admitted_ops = 0
        self.rejected: dict[str, int] = {}
        #: principal -> bucket, insertion-ordered for drop-oldest.
        self._buckets: dict[str, TokenBucket] = {}

    # -- connection admission -----------------------------------------

    def admit_connection(self, hello: Hello) -> "GatePass | ErrorReply":
        """Judge one ``hello``; a ticket in, a typed rejection out.

        Order matters: a bad token is refused before the connection
        cap is consulted, so an attacker cannot learn fleet occupancy
        without a credential.
        """
        config = self.config
        if config.tokens is not None and _reject_constant_time(
            hello.token, config.tokens
        ):
            return self._reject(
                "bad_token",
                "missing or unknown bearer token",
                reply_id=None,
            )
        if (
            config.max_connections is not None
            and self.connections >= config.max_connections
        ):
            return self._reject(
                "connection_limit",
                f"connection cap of {config.max_connections} reached",
                reply_id=None,
                retry_after=1.0,
            )
        principal = (
            hello.token
            if config.tokens is not None and hello.token is not None
            else hello.client
        )
        self.connections += 1
        self.admitted_connections += 1
        if self.telemetry is not None:
            self.telemetry.count("gate.admitted", kind="connection")
            self.telemetry.gauge("gate.connections", self.connections)
        return GatePass(principal, self._bucket(principal))

    def release(self, ticket: "GatePass | None") -> None:
        """Return one connection slot (idempotent per ticket)."""
        if ticket is None or ticket.released:
            return
        ticket.released = True
        self.connections -= 1
        if self.telemetry is not None:
            self.telemetry.gauge("gate.connections", self.connections)

    # -- per-operation admission --------------------------------------

    def admit_op(
        self, ticket: GatePass, reply_id: "int | None"
    ) -> "ErrorReply | None":
        """Charge one operation to the ticket's bucket.

        ``None`` admits; otherwise the typed ``rate_limited`` reply
        whose ``retry_after`` is exactly the bucket's time-to-one-token.
        """
        bucket = ticket.bucket
        if bucket is None:
            self.admitted_ops += 1
            return None
        retry_after = bucket.acquire(self.clock())
        if retry_after == 0.0:
            self.admitted_ops += 1
            if self.telemetry is not None:
                self.telemetry.count("gate.admitted", kind="op")
            return None
        return self._reject(
            "rate_limited",
            (
                f"rate limit of {bucket.rate:g} ops/s exceeded; "
                f"retry after {retry_after:.3f}s"
            ),
            reply_id=reply_id,
            retry_after=retry_after,
        )

    # -- internals ----------------------------------------------------

    def _bucket(self, principal: str) -> "TokenBucket | None":
        if self.config.rate_limit is None:
            return None
        bucket = self._buckets.get(principal)
        if bucket is None:
            while len(self._buckets) >= self.config.max_principals:
                self._buckets.pop(next(iter(self._buckets)))
            bucket = TokenBucket(
                self.config.rate_limit,
                self.config.effective_burst,
                self.clock(),
            )
            self._buckets[principal] = bucket
            if self.telemetry is not None:
                self.telemetry.gauge(
                    "gate.principals", len(self._buckets)
                )
        return bucket

    def _reject(
        self,
        code: str,
        message: str,
        reply_id: "int | None",
        retry_after: "float | None" = None,
    ) -> ErrorReply:
        self.rejected[code] = self.rejected.get(code, 0) + 1
        if self.telemetry is not None:
            self.telemetry.count("gate.rejected", reason=code)
        return ErrorReply(
            id=reply_id,
            code=code,
            message=message,
            retry_after=retry_after,
        )


def load_tokens(
    tokens: "Iterable[str] | None" = None,
    token_file: "str | None" = None,
) -> "tuple[str, ...] | None":
    """Collect bearer tokens from CLI flags and/or a token file.

    The file holds one token per line; blank lines and ``#`` comments
    are skipped.  Returns ``None`` (auth off) when neither source
    yields a token.
    """
    collected = [token for token in (tokens or []) if token]
    if token_file is not None:
        with open(token_file, "r", encoding="utf-8") as handle:
            for line in handle:
                candidate = line.strip()
                if candidate and not candidate.startswith("#"):
                    collected.append(candidate)
    return tuple(collected) if collected else None
