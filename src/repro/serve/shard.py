"""Sharded serving: a user-id-hashing router over N shard sequencers.

This is the serving side of :class:`~repro.engine.session.
ShardedSessionStore`'s partitioning argument: users are assigned to
shards by ``user_id % n_shards``, every shard owns a **shared-nothing**
engine (its own :class:`~repro.engine.session.InMemorySessionStore`
with the ``p<i>.`` pseudonym prefix, its own
:class:`~repro.mod.store.TrajectoryStore`), and a
:class:`ShardRouter` forwards each frame to the owning shard's
sequencer.  Three pieces:

* :class:`ShardRuntime` — constructs one shard's engine and owns its
  durability (a :class:`~repro.serve.wal.ShardWal` command log,
  written *before* each op executes, plus an LRU reply cache keyed by
  the router-assigned ``seq`` so re-sent operations after a crash are
  answered without re-executing);
* :class:`ShardSequencer` — the per-shard bounded queue and dispatcher
  task (the moral equivalent of :class:`TrustedServer`'s single
  sequencer, one per shard), draining admitted jobs in batches;
* :class:`ShardRouter` — duck-types the :class:`TrustedServer`
  transport surface (``open_session``/``welcome``/``submit``/``drain``
  …), so :class:`~repro.serve.transports.TcpTransport`,
  :class:`~repro.serve.transports.LoopbackTransport`, and
  ``run_loadgen(server=...)`` work unchanged on top of it.

**Decision equivalence.**  Every shard's trajectory store is warmed
with the *full* city history (the same warm-store construction as
:func:`repro.serve.loadgen.build_engine`), while sessions and LBQID
monitors exist only for owned users.  Algorithm 1's anonymity-set
selection reads the store (identical everywhere) and the requester's
own session (owned by exactly one shard), so per-user decision streams
are identical to the single-engine offline replay — ``loadgen
--verify`` passes against a sharded frontend with zero changes, and
the per-shard determinism test pins it.

**Durability.**  The WAL records op *commands* in dispatch order;
recovery rebuilds the warm engine from the seeded workload config and
replays the log, reconstructing sessions, pseudonyms, and trajectory
columns byte-equivalently (:meth:`ShardRuntime.fingerprint`).  The
router stamps each forwarded frame with a per-shard monotonic ``seq``;
a worker restored mid-stream answers already-applied seqs from its
reply cache, so a supervisor can re-send everything unacknowledged
after a SIGKILL without double-applying.

The hot router→shard hop uses the fast frame codec
(:func:`~repro.serve.protocol.encode_frame_fast`); the public client
boundary keeps the strict one.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from collections import OrderedDict, deque
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.unlinking import AlwaysUnlink
from repro.engine.pipeline import Engine
from repro.engine.session import InMemorySessionStore
from repro.experiments.workloads import make_policy
from repro.mod.store import TrajectoryStore
from repro.obs.config import Telemetry, TelemetryConfig, resolve_telemetry
from repro.serve.loadgen import ServingWorkload, WorkloadConfig
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Frame,
    HealthReply,
    HealthRequest,
    Hello,
    LocationUpdate,
    MetricsRequest,
    ProfileRequest,
    ProtocolError,
    ServiceRequest,
    StatsReply,
    StatsRequest,
    TracesReply,
    TracesRequest,
    UpdateAck,
    Welcome,
    decode_request_fast,
    encode_frame_fast,
)
from repro.serve.server import (
    ClientSession,
    ServeConfig,
    execute_op,
    render_metrics_reply,
    render_profile_reply,
)
from repro.serve.wal import (
    ShardWal,
    WalConfig,
    frame_of_record,
    op_record,
)


#: The state-mutating frame types the data plane serves.
_SERVABLE = (LocationUpdate, ServiceRequest)


def shard_of(user_id: int, n_shards: int) -> int:
    """The shard owning a user — the ShardedSessionStore assignment."""
    return user_id % n_shards


def _clone_with(frame: Frame, **fields: object) -> Frame:
    """Cheap field-override clone of a frozen frame (no __init__)."""
    clone = object.__new__(type(frame))
    clone.__dict__.update(frame.__dict__)
    clone.__dict__.update(fields)
    return clone


class ShardRuntime:
    """One shard's engine, durability, and replay logic (module doc)."""

    def __init__(
        self,
        workload: ServingWorkload,
        config: WorkloadConfig,
        shard_id: int,
        n_shards: int,
        telemetry: "Telemetry | TelemetryConfig | None" = None,
        wal_dir: "str | Path | None" = None,
        wal_config: WalConfig | None = None,
        audit: str = "full",
        reply_cache_size: int = 1024,
    ) -> None:
        if not 0 <= shard_id < n_shards:
            raise ValueError(
                f"shard_id {shard_id} out of range for "
                f"{n_shards} shards"
            )
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.workload_config = config
        self.owned_users = [
            user_id
            for user_id in workload.user_ids
            if shard_of(user_id, n_shards) == shard_id
        ]
        self.engine = self._build_engine(
            workload, config, telemetry, audit
        )
        #: Highest seq applied to the engine; -1 before any op.
        self.applied_seq = -1
        #: LRU of ``seq -> reply`` for crash-resend deduplication.
        self.replies: "OrderedDict[int, Frame]" = OrderedDict()
        self.reply_cache_size = reply_cache_size
        self.replayed = 0
        self.wal: ShardWal | None = None
        if wal_dir is not None:
            wal_dir = Path(wal_dir)
            # Replay precedes the writer: ShardWal seals the previous
            # incarnation's live segment on open, and recovery must
            # read that data as it was left.
            for record in ShardWal.recover(wal_dir):
                self._replay(record)
            self.wal = ShardWal(wal_dir, wal_config)

    def _build_engine(
        self,
        workload: ServingWorkload,
        config: WorkloadConfig,
        telemetry: "Telemetry | TelemetryConfig | None",
        audit: str,
    ) -> Engine:
        """The shard engine: full warm store, owned-user sessions.

        Mirrors :func:`repro.serve.loadgen.build_engine` except that
        sessions/LBQIDs/pseudonyms are created only for owned users
        (in sorted order, so per-user initial pseudonym issue is
        arrival-independent) and the pseudonym prefix is ``p<i>.``.
        """
        owned = set(self.owned_users)
        engine = Engine(
            TrajectoryStore(
                index_cell_size=config.index_cell_size,
                telemetry=telemetry,
                backend=config.backend,
            ),
            policy=make_policy(
                config.k,
                tolerance=config.tolerance(),
                service="poi",
            ),
            unlinker=AlwaysUnlink(),
            quiet_period=config.quiet_period,
            telemetry=telemetry,
            sessions=InMemorySessionStore(
                pseudonym_prefix=f"p{self.shard_id}."
            ),
            audit=audit,
        )
        for commuter in sorted(
            workload.city.commuters, key=lambda c: c.user_id
        ):
            if commuter.user_id in owned:
                engine.register_lbqid(
                    commuter.user_id, commuter.lbqid()
                )
        for user_id in self.owned_users:
            engine.session(user_id)
            engine.sessions.pseudonym(user_id)
        # The warm store holds EVERY user's history — anonymity sets
        # are store-wide, and this is what keeps per-shard decisions
        # equal to the global offline replay.
        for user_id in workload.user_ids:
            engine.store.add_points(
                user_id, workload.city.store.history(user_id)
            )
        return engine

    # -- op execution --------------------------------------------------

    def execute(self, frame: Frame, seq: int | None = None) -> Frame:
        """Apply one state-mutating frame, WAL-first, seq-deduplicated.

        ``seq`` (or ``frame.seq``) must be the router-assigned shard
        sequence number; a frame without one gets the next local seq
        (direct single-process use).  Re-sent seqs at or below
        ``applied_seq`` answer from the reply cache — the
        crash-recovery idempotence contract.  Passing ``seq``
        explicitly spares the firehose path a frame clone per op
        (:func:`~repro.serve.wal.op_record` stamps the WAL record from
        the argument, never from the frame).
        """
        if seq is None:
            seq = frame.seq
        if seq is None:
            seq = self.applied_seq + 1
        elif seq <= self.applied_seq:
            # An update's reply carries no state (it is always
            # ``UpdateAck(id)``), so duplicates are re-acked without a
            # cache lookup — the cache holds only decision replies.
            if type(frame) is LocationUpdate:
                return UpdateAck(id=frame.id)
            cached = self.replies.get(seq)
            if cached is not None:
                return _clone_with(cached, id=frame.id)
            return ErrorReply(
                id=frame.id,
                code="stale_seq",
                message=(
                    f"seq {seq} was applied but its reply has aged "
                    "out of the cache"
                ),
            )
        if self.wal is not None:
            self.wal.append(op_record(frame, seq))
        reply = execute_op(self.engine, frame)
        self.applied_seq = seq
        self._cache_reply(seq, reply)
        return reply

    def _replay(self, record: dict) -> None:
        """Re-apply one recovered WAL record (no logging, no router)."""
        frame = frame_of_record(record)
        reply = execute_op(self.engine, frame)
        self.applied_seq = record["s"]
        self._cache_reply(record["s"], reply)
        self.replayed += 1

    def _cache_reply(self, seq: int, reply: Frame) -> None:
        if type(reply) is UpdateAck:  # re-synthesized on duplicates
            return
        self.replies[seq] = reply
        if len(self.replies) > self.reply_cache_size:
            self.replies.popitem(last=False)

    def sync(self) -> None:
        """Force the WAL to disk (drain/shutdown path)."""
        if self.wal is not None:
            self.wal.sync()

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()

    # -- byte-equivalence ----------------------------------------------

    def fingerprint(self) -> str:
        """Deterministic digest of all mutable shard state.

        Covers sessions (quiet deadlines, per-LBQID monitor partials /
        observations / anonymity-set caches / step counts), the full
        pseudonym issue history, every trajectory column, and
        ``applied_seq``.  Two runtimes that applied the same op
        sequence — live, or via WAL replay — hash identically; that is
        the "reconstructs state byte-equivalently" acceptance bar.
        """
        digest = hashlib.sha256()

        def feed(obj: object) -> None:
            digest.update(
                json.dumps(
                    obj, separators=(",", ":"), default=repr
                ).encode("utf-8")
            )

        feed(["applied_seq", self.applied_seq])
        sessions = self.engine.sessions
        for user_id in self.owned_users:
            session = sessions.get(user_id)
            if session is None:
                continue
            feed([user_id, session.quiet_until])
            for state in session.lbqids:
                monitor = state.monitor
                feed(
                    [
                        state.steps,
                        state.anonymity_ids,
                        monitor.matched,
                        monitor.observations,
                        [
                            [
                                p.next_index,
                                p.timestamps,
                                p.granule,
                                p.dead,
                                sorted(p.payload.items()),
                            ]
                            for p in monitor.partials
                        ],
                    ]
                )
            feed(sessions.pseudonyms_of(user_id))
        for user_id in sorted(self.engine.store.user_ids()):
            feed(
                [
                    user_id,
                    [
                        (p.x, p.y, p.t)
                        for p in self.engine.store.history(user_id)
                    ],
                ]
            )
        return digest.hexdigest()


class _ShardJob:
    """One admitted operation queued for a shard sequencer."""

    __slots__ = ("session", "frame", "future", "enqueued_at")

    def __init__(
        self,
        session: "ClientSession | None",
        frame: Frame,
        future: "asyncio.Future[Frame] | None",
    ) -> None:
        self.session = session
        self.frame = frame
        self.future = future
        self.enqueued_at = time.perf_counter()


class ShardSequencer:
    """Bounded queue + dispatcher of one shard (one per shard)."""

    #: Jobs executed per dispatcher wakeup before yielding the loop —
    #: batch draining amortizes task wakeups across queued ops.
    BATCH = 64

    def __init__(
        self,
        runtime: ShardRuntime,
        config: ServeConfig,
        telemetry: Telemetry,
    ) -> None:
        self.runtime = runtime
        self.shard_id = runtime.shard_id
        self.config = config
        self.telemetry = telemetry
        self.jobs: "deque[_ShardJob]" = deque()
        self._wake = asyncio.Event()
        self._task: "asyncio.Task[None] | None" = None
        #: Next router-assigned sequence number for this shard.
        self.next_seq = runtime.applied_seq + 1
        self._ema_service_s = 0.001
        self.accepted = 0
        self.served = 0
        self.shed = 0
        self.rejected = 0

    # -- seq allocation ------------------------------------------------

    def allocate_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    @property
    def queue_depth(self) -> int:
        return len(self.jobs)

    @property
    def retry_after_s(self) -> float:
        return max(
            self.config.retry_after_floor_s,
            len(self.jobs) * self._ema_service_s,
        )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.create_task(
                self._dispatch_loop(),
                name=f"repro-shard-{self.shard_id}",
            )

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def drain(self) -> None:
        """Wait until every queued job has been executed."""
        while self.jobs:
            self._wake.set()
            await asyncio.sleep(0)
        self.runtime.sync()

    # -- dispatch ------------------------------------------------------

    def push(self, job: _ShardJob) -> None:
        self.jobs.append(job)
        self.accepted += 1
        self._wake.set()

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self.jobs:
                for _ in range(min(self.BATCH, len(self.jobs))):
                    job = self.jobs.popleft()
                    reply = self._execute_job(job)
                    if job.session is not None:
                        job.session.inflight -= 1
                    if job.future is not None and not job.future.done():
                        job.future.set_result(reply)
                # One batch per loop-slice: other shards' dispatchers
                # and the transports get the loop between batches.
                await asyncio.sleep(0)

    def _execute_job(self, job: _ShardJob) -> Frame:
        start = time.perf_counter()
        try:
            reply = self.runtime.execute(job.frame)
        except Exception as exc:  # engine bug: answer, keep serving
            return ErrorReply(
                id=getattr(job.frame, "id", None),
                code="internal",
                message=f"{type(exc).__name__}: {exc}",
            )
        self.served += 1
        service_s = time.perf_counter() - start
        self._ema_service_s += 0.05 * (service_s - self._ema_service_s)
        telemetry = self.telemetry
        if telemetry.enabled:
            kind = (
                "request"
                if isinstance(job.frame, ServiceRequest)
                else "update"
            )
            telemetry.count(
                "serve.served", kind=kind, shard=self.shard_id
            )
            telemetry.observe(
                "serve.request_ms",
                (time.perf_counter() - job.enqueued_at) * 1000.0,
                shard=self.shard_id,
            )
        return reply

    def execute_now(self, frame: Frame) -> Frame:
        """Synchronous execute for the firehose path (queue is idle)."""
        self.accepted += 1
        return self._execute_job(_ShardJob(None, frame, None))

    def serve_direct(self, frame: Frame, seq: int) -> Frame:
        """The firehose inner loop: no job, no clone, no clocks.

        With telemetry off this is two attribute bumps around the
        runtime call; with it on, the full instrumented job path runs
        so the ``shard``-labelled series stay complete.
        """
        if self.telemetry.enabled:
            if frame.seq is None:
                frame = _clone_with(frame, seq=seq)
            self.accepted += 1
            return self._execute_job(_ShardJob(None, frame, None))
        self.accepted += 1
        try:
            reply = self.runtime.execute(frame, seq)
        except Exception as exc:  # engine bug: answer, keep serving
            return ErrorReply(
                id=getattr(frame, "id", None),
                code="internal",
                message=f"{type(exc).__name__}: {exc}",
            )
        self.served += 1
        return reply


class ShardRouter:
    """User-id-hashing frontend over N shard sequencers (module doc).

    Duck-types the :class:`TrustedServer` transport surface; pass one
    to :class:`~repro.serve.transports.TcpTransport`,
    :class:`~repro.serve.transports.LoopbackTransport`, or
    ``run_loadgen(server=...)``.

    ``shard_ids`` restricts this router to a subset of the global
    shard space (a *worker* in the multi-process deployment: ``M``
    shards spread over ``W`` workers, worker ``w`` serving the shards
    ``{i : i mod W == w}``).  Frames for unowned shards are answered
    with ``wrong_shard``.
    """

    def __init__(
        self,
        workload: ServingWorkload,
        workload_config: WorkloadConfig,
        n_shards: int = 4,
        config: ServeConfig | None = None,
        telemetry: "Telemetry | TelemetryConfig | None" = None,
        data_dir: "str | Path | None" = None,
        wal_config: WalConfig | None = None,
        shard_ids: "Sequence[int] | None" = None,
        audit: str = "full",
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.config = config or ServeConfig()
        self.telemetry = resolve_telemetry(telemetry)
        self.workload = workload
        self.workload_config = workload_config
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.wal_config = wal_config
        self._audit = audit
        self.shard_ids = (
            list(shard_ids)
            if shard_ids is not None
            else list(range(n_shards))
        )
        self.sequencers: dict[int, ShardSequencer] = {}
        for shard_id in self.shard_ids:
            self.sequencers[shard_id] = self._build_sequencer(shard_id)
        self._sessions: dict[str, ClientSession] = {}
        self._session_seq = 0
        self._draining = False
        self._closed = False
        self._started = False
        self.protocol_errors = 0
        self.started_at = time.monotonic()

    def _build_sequencer(self, shard_id: int) -> ShardSequencer:
        runtime = ShardRuntime(
            self.workload,
            self.workload_config,
            shard_id,
            self.n_shards,
            telemetry=self.telemetry,
            wal_dir=(
                self.data_dir / f"shard-{shard_id:03d}"
                if self.data_dir is not None
                else None
            ),
            wal_config=self.wal_config,
            audit=self._audit,
        )
        return ShardSequencer(runtime, self.config, self.telemetry)

    # -- aggregate counters --------------------------------------------

    @property
    def accepted(self) -> int:
        return sum(s.accepted for s in self.sequencers.values())

    @property
    def served(self) -> int:
        return sum(s.served for s in self.sequencers.values())

    @property
    def shed_total(self) -> int:
        return sum(s.shed for s in self.sequencers.values())

    @property
    def rejected(self) -> int:
        return sum(s.rejected for s in self.sequencers.values())

    @property
    def queue_depth(self) -> int:
        return sum(s.queue_depth for s in self.sequencers.values())

    @property
    def draining(self) -> bool:
        return self._draining

    def applied_seqs(self) -> dict[int, int]:
        """Per-shard highest applied seq (supervisor handshake)."""
        return {
            shard_id: sequencer.runtime.applied_seq
            for shard_id, sequencer in self.sequencers.items()
        }

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "ShardRouter":
        if self._closed:
            raise RuntimeError("router is closed")
        for sequencer in self.sequencers.values():
            sequencer.start()
        self._started = True
        return self

    async def drain(self) -> DrainReply:
        first = not self._draining
        self._draining = True
        for sequencer in self.sequencers.values():
            await sequencer.drain()
        reply = DrainReply(
            id=0,
            served=self.served,
            shed=self.shed_total,
            rejected=self.rejected,
            pending=self.queue_depth,
        )
        if first and self.telemetry.enabled:
            self.telemetry.event(
                "serve.drained",
                served=self.served,
                shed=self.shed_total,
                rejected=self.rejected,
                protocol_errors=self.protocol_errors,
                shards={
                    str(shard_id): sequencer.served
                    for shard_id, sequencer in self.sequencers.items()
                },
            )
        return reply

    async def close(self) -> None:
        if self._closed:
            return
        await self.drain()
        self._closed = True
        for sequencer in self.sequencers.values():
            await sequencer.stop()
            sequencer.runtime.close()

    # -- crash simulation / restore ------------------------------------

    def kill_shard(self, shard_id: int) -> "list[_ShardJob]":
        """Abruptly drop one shard, as a SIGKILL would (tests).

        The runtime and its in-memory state are discarded without any
        flush beyond what the WAL's fsync policy already guaranteed;
        queued jobs are returned so :meth:`restore_shard` can re-send
        them the way the multi-process supervisor re-sends
        unacknowledged operations.
        """
        sequencer = self.sequencers.pop(shard_id)
        if sequencer._task is not None:
            sequencer._task.cancel()
        pending = list(sequencer.jobs)
        sequencer.jobs.clear()
        # Drop the file handle without syncing — exactly what the OS
        # does to a SIGKILLed process's open descriptors.
        runtime = sequencer.runtime
        if runtime.wal is not None:
            runtime.wal.close()
        self._killed_next_seq = getattr(self, "_killed_next_seq", {})
        self._killed_next_seq[shard_id] = sequencer.next_seq
        return pending

    def restore_shard(
        self, shard_id: int, pending: "Iterable[_ShardJob]" = ()
    ) -> ShardSequencer:
        """Rebuild a killed shard from its WAL and re-send pending ops.

        Re-sent frames keep their original seqs: ops the WAL caught
        before the kill are answered from the replayed reply cache,
        the rest execute for the first time — no decision is lost or
        double-applied.
        """
        sequencer = self._build_sequencer(shard_id)
        killed = getattr(self, "_killed_next_seq", {}).pop(shard_id, None)
        if killed is not None:
            sequencer.next_seq = max(sequencer.next_seq, killed)
        self.sequencers[shard_id] = sequencer
        if self._started:
            sequencer.start()

        def _job_seq(job: "_ShardJob") -> int:
            seq = getattr(job.frame, "seq", None)
            return seq if seq is not None else 0

        for job in sorted(pending, key=_job_seq):
            sequencer.push(job)
        return sequencer

    # -- session surface (transports) ----------------------------------

    def open_session(self, client: str = "client") -> ClientSession:
        self._session_seq += 1
        session = ClientSession(f"s{self._session_seq}", client)
        self._sessions[session.session_id] = session
        self.telemetry.gauge("serve.connections", len(self._sessions))
        return session

    def close_session(self, session: ClientSession) -> None:
        self._sessions.pop(session.session_id, None)
        self.telemetry.gauge("serve.connections", len(self._sessions))

    def welcome(self, session: ClientSession, hello: Hello) -> Frame:
        if hello.version != PROTOCOL_VERSION:
            return ErrorReply(
                id=None,
                code="bad_version",
                message=(
                    f"protocol version {hello.version} not supported; "
                    f"server speaks {PROTOCOL_VERSION}"
                ),
            )
        session.client = hello.client
        session.trace = bool(hello.trace and self.telemetry.enabled)
        return Welcome(
            version=PROTOCOL_VERSION,
            server=f"{self.config.server_name}-router",
            session=session.session_id,
            max_inflight=self.config.max_inflight,
            max_queue_depth=self.config.max_queue_depth,
            trace=session.trace,
        )

    def note_protocol_error(self) -> None:
        self.protocol_errors += 1
        self.telemetry.count("serve.protocol_errors")

    # -- the op surface ------------------------------------------------

    async def submit(self, session: ClientSession, frame: Frame) -> Frame:
        """Admit one decoded frame; resolves to its reply frame."""
        if isinstance(frame, Hello):
            return self.welcome(session, frame)
        if isinstance(frame, StatsRequest):
            return StatsReply(
                id=frame.id,
                accepted=self.accepted,
                served=self.served,
                shed=self.shed_total,
                rejected=self.rejected,
                protocol_errors=self.protocol_errors,
                queue_depth=self.queue_depth,
                sessions=len(self._sessions),
            )
        if isinstance(frame, MetricsRequest):
            return render_metrics_reply(
                self.telemetry, self.config.max_frame_bytes, frame
            )
        if isinstance(frame, HealthRequest):
            return HealthReply(
                id=frame.id,
                status=(
                    "draining"
                    if self._draining or self._closed
                    else "ok"
                ),
                uptime_s=time.monotonic() - self.started_at,
                queue_depth=self.queue_depth,
                sessions=len(self._sessions),
                served=self.served,
                shed=self.shed_total,
                slo_ok=True,
                breaches=0,
            )
        if isinstance(frame, TracesRequest):
            return TracesReply(id=frame.id, body="[]")
        if isinstance(frame, ProfileRequest):
            return render_profile_reply(
                self.telemetry, self.config.max_frame_bytes, frame
            )
        if isinstance(frame, DrainRequest):
            reply = await self.drain()
            return DrainReply(
                id=frame.id,
                served=reply.served,
                shed=reply.shed,
                rejected=reply.rejected,
                pending=reply.pending,
            )
        if not isinstance(frame, (LocationUpdate, ServiceRequest)):
            self.note_protocol_error()
            return ErrorReply(
                id=getattr(frame, "id", None),
                code="unknown_op",
                message=f"frame {frame.op!r} is not servable",
            )
        sequencer = self.sequencers.get(
            shard_of(frame.user_id, self.n_shards)
        )
        if sequencer is None:
            return ErrorReply(
                id=frame.id,
                code="wrong_shard",
                message=(
                    f"user {frame.user_id} does not hash to a shard "
                    "served by this worker"
                ),
            )
        if self._draining or self._closed:
            sequencer.rejected += 1
            self.telemetry.count(
                "serve.rejected",
                reason="draining",
                shard=sequencer.shard_id,
            )
            return ErrorReply(
                id=frame.id,
                code="draining",
                message="server is draining; no new work admitted",
            )
        if session.inflight >= self.config.max_inflight:
            return self._shed(session, sequencer, frame, "inflight")
        if sequencer.queue_depth >= self.config.max_queue_depth:
            return self._shed(session, sequencer, frame, "queue")
        if frame.seq is None:
            frame = _clone_with(frame, seq=sequencer.allocate_seq())
        future: "asyncio.Future[Frame]" = (
            asyncio.get_running_loop().create_future()
        )
        session.inflight += 1
        session.accepted += 1
        sequencer.push(_ShardJob(session, frame, future))
        return await future

    def _shed(
        self,
        session: ClientSession,
        sequencer: ShardSequencer,
        frame: "LocationUpdate | ServiceRequest",
        reason: str,
    ) -> ErrorReply:
        session.shed += 1
        sequencer.shed += 1
        self.telemetry.count(
            "serve.shed", reason=reason, shard=sequencer.shard_id
        )
        retry_after = sequencer.retry_after_s
        return ErrorReply(
            id=frame.id,
            code="overloaded",
            message=f"shed ({reason}); retry after {retry_after:.3f}s",
            retry_after=retry_after,
        )

    # -- firehose path -------------------------------------------------

    def serve_line(self, line: bytes) -> bytes:
        """Route one NDJSON op line synchronously; returns the reply line.

        The wire-inclusive fast path: decode with the fast codec
        (falling back to the strict one for proper error codes), route
        and execute via :meth:`serve_frame`, encode the reply.  The
        capacity benchmark's sharded arm drives this, so its per-op
        cost includes codec work at both boundaries — same as the
        single-sequencer arm's loopback.
        """
        try:
            frame = decode_request_fast(line, self.config.max_frame_bytes)
        except ProtocolError as exc:
            self.note_protocol_error()
            return encode_frame_fast(
                ErrorReply(id=None, code=exc.code, message=str(exc)),
                self.config.max_frame_bytes,
            )
        reply = self.serve_frame(frame)
        return encode_frame_fast(reply, self.config.max_frame_bytes)

    def serve_lines(self, lines: Iterable[bytes]) -> list[bytes]:
        """Route a batch of NDJSON op lines; one reply line per input.

        Per-element semantics are identical to :meth:`serve_line`; the
        batch form hoists the loop invariants (codec functions, frame
        limit, shard table) and inlines the telemetry-off
        :meth:`ShardSequencer.serve_direct` body, which the per-call
        form pays for on every op.  Anything off the hot path — strict
        decode errors, telemetry on, non-servable frames, unknown
        shards — falls back to the per-call methods so the error codes
        and instrumented series stay byte-identical.
        """
        decode = decode_request_fast
        encode = encode_frame_fast
        limit = self.config.max_frame_bytes
        sequencers = self.sequencers
        n_shards = self.n_shards
        servable = _SERVABLE
        instrumented = any(
            sequencer.telemetry.enabled
            for sequencer in sequencers.values()
        )
        replies: list[bytes] = []
        append = replies.append
        for line in lines:
            try:
                frame = decode(line, limit)
            except ProtocolError:
                append(self.serve_line(line))
                continue
            if instrumented or type(frame) not in servable:
                append(encode(self.serve_frame(frame), limit))
                continue
            sequencer = sequencers.get(frame.user_id % n_shards)
            if sequencer is None:
                append(encode(self.serve_frame(frame), limit))
                continue
            seq = frame.seq
            if seq is None:
                seq = sequencer.next_seq
                sequencer.next_seq = seq + 1
            sequencer.accepted += 1
            try:
                reply = sequencer.runtime.execute(frame, seq)
            except Exception as exc:  # engine bug: answer, keep going
                append(
                    encode(
                        ErrorReply(
                            id=getattr(frame, "id", None),
                            code="internal",
                            message=f"{type(exc).__name__}: {exc}",
                        ),
                        limit,
                    )
                )
                continue
            sequencer.served += 1
            append(encode(reply, limit))
        return replies

    def serve_frame(self, frame: Frame) -> Frame:
        """Route and execute one state-mutating frame synchronously.

        The zero-queue fast path of the capacity benchmark and the
        WAL-replay driver: same routing, seq stamping, WAL append, and
        engine call as :meth:`submit`, without the event-loop future
        machinery (the caller *is* the sequencer).
        """
        if type(frame) not in _SERVABLE:
            return ErrorReply(
                id=getattr(frame, "id", None),
                code="unknown_op",
                message=f"frame {frame.op!r} is not servable",
            )
        sequencer = self.sequencers.get(
            frame.user_id % self.n_shards
        )
        if sequencer is None:
            return ErrorReply(
                id=frame.id,
                code="wrong_shard",
                message=(
                    f"user {frame.user_id} does not hash to a shard "
                    "served by this worker"
                ),
            )
        seq = frame.seq
        if seq is None:
            seq = sequencer.allocate_seq()
        return sequencer.serve_direct(frame, seq)
