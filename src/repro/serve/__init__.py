"""repro.serve — the asyncio serving frontend of the Trusted Server.

Layers (bottom-up):

* :mod:`repro.serve.protocol` — the NDJSON wire frames and strict codec;
* :mod:`repro.serve.server` — :class:`TrustedServer`: admission control,
  the bounded single-sequencer dispatch queue, drain/shutdown;
* :mod:`repro.serve.transports` — TCP daemon and in-process loopback;
* :mod:`repro.serve.client` — pipelined async client;
* :mod:`repro.serve.loadgen` — open-loop load generation and
  serving-vs-offline equivalence verification;
* :mod:`repro.serve.fleet` — wire-level scraping behind the
  :mod:`repro.obs.aggregate` fleet view;
* :mod:`repro.serve.shard` — :class:`ShardRouter`: user-id hashing
  over N shared-nothing shard sequencers, decision-equivalent to the
  single engine;
* :mod:`repro.serve.wal` — per-shard JSONL write-ahead log and
  snapshots with deterministic replay;
* :mod:`repro.serve.supervisor` — :class:`WorkerSupervisor`: shard
  worker subprocesses, WAL-backed respawn, pending-op re-send.
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.fleet import collect_fleet, parse_target, scrape_worker
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadReport,
    WorkloadConfig,
    build_engine,
    build_workload,
    decision_key,
    offline_replay,
    run_loadgen,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    DecisionReply,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Frame,
    HealthReply,
    HealthRequest,
    Hello,
    LocationUpdate,
    MetricsReply,
    MetricsRequest,
    ProfileReply,
    ProfileRequest,
    ProtocolError,
    ServiceRequest,
    StatsReply,
    StatsRequest,
    TracesReply,
    TracesRequest,
    UpdateAck,
    Welcome,
    decode_reply,
    decode_request,
    encode_frame,
)
from repro.serve.server import ClientSession, ServeConfig, TrustedServer
from repro.serve.shard import (
    ShardRouter,
    ShardRuntime,
    ShardSequencer,
    shard_of,
)
from repro.serve.supervisor import WorkerSupervisor, worker_shards
from repro.serve.transports import (
    LoopbackConnection,
    LoopbackTransport,
    TcpTransport,
)
from repro.serve.wal import (
    ShardWal,
    WalConfig,
    WalCorruptionError,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ClientSession",
    "DecisionReply",
    "DrainReply",
    "DrainRequest",
    "ErrorReply",
    "Frame",
    "HealthReply",
    "HealthRequest",
    "Hello",
    "LoadReport",
    "MetricsReply",
    "MetricsRequest",
    "ProfileReply",
    "ProfileRequest",
    "TracesReply",
    "TracesRequest",
    "LoadgenConfig",
    "LocationUpdate",
    "LoopbackConnection",
    "LoopbackTransport",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServiceRequest",
    "ShardRouter",
    "ShardRuntime",
    "ShardSequencer",
    "ShardWal",
    "StatsReply",
    "StatsRequest",
    "TcpTransport",
    "TrustedServer",
    "UpdateAck",
    "WalConfig",
    "WalCorruptionError",
    "Welcome",
    "WorkerSupervisor",
    "WorkloadConfig",
    "build_engine",
    "build_workload",
    "collect_fleet",
    "decision_key",
    "decode_reply",
    "decode_request",
    "encode_frame",
    "offline_replay",
    "parse_target",
    "run_loadgen",
    "scrape_worker",
    "shard_of",
    "worker_shards",
]
