"""repro.serve — the asyncio serving frontend of the Trusted Server.

Layers (bottom-up):

* :mod:`repro.serve.protocol` — the NDJSON wire frames and strict codec;
* :mod:`repro.serve.server` — :class:`TrustedServer`: admission control,
  the bounded single-sequencer dispatch queue, drain/shutdown;
* :mod:`repro.serve.gate` — :class:`ConnectionGate`: bearer-token
  auth, connection caps, and per-client token-bucket rate limits ahead
  of every sequencer;
* :mod:`repro.serve.transports` — TCP daemon (plaintext or TLS) and
  in-process loopback;
* :mod:`repro.serve.http` — the HTTP/1.1 binding of the same codec
  (``POST /v1/frame``) plus its client;
* :mod:`repro.serve.client` — pipelined async client with token/TLS
  dialing and bounded-backoff reconnect;
* :mod:`repro.serve.loadgen` — open-loop load generation and
  serving-vs-offline equivalence verification;
* :mod:`repro.serve.fleet` — wire-level scraping behind the
  :mod:`repro.obs.aggregate` fleet view;
* :mod:`repro.serve.shard` — :class:`ShardRouter`: user-id hashing
  over N shared-nothing shard sequencers, decision-equivalent to the
  single engine;
* :mod:`repro.serve.wal` — per-shard JSONL write-ahead log and
  snapshots with deterministic replay;
* :mod:`repro.serve.supervisor` — :class:`WorkerSupervisor`: shard
  worker subprocesses, WAL-backed respawn, pending-op re-send.
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.fleet import collect_fleet, parse_target, scrape_worker
from repro.serve.gate import (
    ConnectionGate,
    GateConfig,
    GatePass,
    TokenBucket,
    load_tokens,
)
from repro.serve.http import HttpServeClient, HttpTransport
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadReport,
    WorkloadConfig,
    build_engine,
    build_workload,
    decision_key,
    offline_replay,
    run_loadgen,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    DecisionReply,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Frame,
    HealthReply,
    HealthRequest,
    Hello,
    LocationUpdate,
    MetricsReply,
    MetricsRequest,
    ProfileReply,
    ProfileRequest,
    ProtocolError,
    ServiceRequest,
    StatsReply,
    StatsRequest,
    TracesReply,
    TracesRequest,
    UpdateAck,
    Welcome,
    decode_reply,
    decode_request,
    encode_frame,
)
from repro.serve.server import ClientSession, ServeConfig, TrustedServer
from repro.serve.shard import (
    ShardRouter,
    ShardRuntime,
    ShardSequencer,
    shard_of,
)
from repro.serve.supervisor import WorkerSupervisor, worker_shards
from repro.serve.transports import (
    LoopbackConnection,
    LoopbackTransport,
    TcpTransport,
    client_ssl_context,
    server_ssl_context,
)
from repro.serve.wal import (
    ShardWal,
    WalConfig,
    WalCorruptionError,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ClientSession",
    "ConnectionGate",
    "DecisionReply",
    "DrainReply",
    "DrainRequest",
    "ErrorReply",
    "Frame",
    "GateConfig",
    "GatePass",
    "HealthReply",
    "HealthRequest",
    "Hello",
    "HttpServeClient",
    "HttpTransport",
    "LoadReport",
    "MetricsReply",
    "MetricsRequest",
    "ProfileReply",
    "ProfileRequest",
    "TracesReply",
    "TracesRequest",
    "LoadgenConfig",
    "LocationUpdate",
    "LoopbackConnection",
    "LoopbackTransport",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServiceRequest",
    "ShardRouter",
    "ShardRuntime",
    "ShardSequencer",
    "ShardWal",
    "StatsReply",
    "StatsRequest",
    "TcpTransport",
    "TokenBucket",
    "TrustedServer",
    "UpdateAck",
    "WalConfig",
    "WalCorruptionError",
    "Welcome",
    "WorkerSupervisor",
    "WorkloadConfig",
    "build_engine",
    "build_workload",
    "client_ssl_context",
    "collect_fleet",
    "decision_key",
    "decode_reply",
    "decode_request",
    "encode_frame",
    "load_tokens",
    "offline_replay",
    "server_ssl_context",
    "parse_target",
    "run_loadgen",
    "scrape_worker",
    "shard_of",
    "worker_shards",
]
